"""Legacy setup shim.

``pyproject.toml`` is the authoritative metadata; this file exists so that
``pip install -e .`` works on environments whose setuptools lacks wheel
support for PEP-660 editable installs (it enables the legacy
``setup.py develop`` path).
"""

from setuptools import setup

setup()
