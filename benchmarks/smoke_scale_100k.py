"""CI smoke for the 100k-scale sharded path, at the quick shape.

Runs the same workload shape as ``repro bench``'s
``large_scale_sharded_100k`` quick mode (2000 clients, shard size 128,
``record_events=False``) once per requested worker count and asserts the
two guarantees the full-scale run depends on:

- **Worker-count invariance**: every run exports byte-identical
  telemetry JSON (the sharded snapshot is a pure function of
  ``(dataset, settings, shard_size)``).
- **Bounded peak memory**: each run's peak RSS — measured in a forked
  child so the figure is the run's own high-water mark, covering the
  parent-side streaming merge and the largest shard worker — stays
  under ``--rss-ceiling-mb``.

The runs share a ``--model-cache`` directory, so the first one trains
and stores the predictor/estimator blob and the later ones load it —
the byte comparison therefore also smokes cache-hit byte-safety.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/smoke_scale_100k.py \
        --workers 1 2 --rss-ceiling-mb 1024 --out-dir smoke-100k
"""

import argparse
import os
import sys

import numpy as np

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
sys.path.insert(0, REPO_SRC)

from repro.bench import _build_partitioner, _measure_in_child  # noqa: E402
from repro.core.config import PerDNNConfig  # noqa: E402
from repro.core.master import MigrationPolicy  # noqa: E402
from repro.simulation.large_scale import SimulationSettings  # noqa: E402
from repro.simulation.sharding import run_large_scale_sharded  # noqa: E402
from repro.trajectories.synthetic import kaist_like  # noqa: E402

USERS, DATASET_STEPS, MAX_STEPS, SHARD_SIZE = 2000, 12, 3, 128


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2],
        help="worker counts to run and compare (default: 1 2)",
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=float, default=1024.0,
        help="fail if any run's peak RSS exceeds this (default: 1024)",
    )
    parser.add_argument(
        "--out-dir", default="smoke-100k",
        help="directory for telemetry snapshots and the model cache",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    cache_dir = os.path.join(args.out_dir, "model-cache")

    rng = np.random.default_rng(args.seed)
    dataset = kaist_like(rng, num_users=USERS, duration_steps=DATASET_STEPS)
    config = PerDNNConfig(migration_radius_m=100.0)
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=MAX_STEPS, seed=args.seed
    )

    snapshots: dict[int, str] = {}
    failures: list[str] = []
    for workers in args.workers:

        def run(workers: int = workers) -> dict:
            result = run_large_scale_sharded(
                dataset,
                _build_partitioner("mobilenet"),
                settings,
                config=config,
                shard_size=SHARD_SIZE,
                workers=workers,
                record_events=False,
                model_cache_dir=cache_dir,
            )
            return {
                "telemetry": result.telemetry.dumps(),
                "shards": result.extras["sharding"]["shards"],
                "clients": result.num_clients,
            }

        measured = _measure_in_child(run)
        payload = measured["payload"]
        snapshots[workers] = payload["telemetry"]
        path = os.path.join(args.out_dir, f"smoke-w{workers}.telemetry.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload["telemetry"])
        print(
            f"workers={workers}: {payload['clients']} clients / "
            f"{payload['shards']} shards in {measured['seconds']:.1f}s, "
            f"peak RSS {measured['peak_rss_mb']:.0f} MB "
            f"(ceiling {args.rss_ceiling_mb:.0f} MB)"
        )
        if measured["peak_rss_mb"] > args.rss_ceiling_mb:
            failures.append(
                f"workers={workers} peak RSS {measured['peak_rss_mb']:.0f} MB "
                f"exceeds ceiling {args.rss_ceiling_mb:.0f} MB"
            )

    baseline_workers = args.workers[0]
    baseline = snapshots[baseline_workers]
    for workers, snapshot in snapshots.items():
        if snapshot != baseline:
            failures.append(
                f"telemetry for workers={workers} differs from "
                f"workers={baseline_workers} (must be byte-identical)"
            )
    if any(
        name.startswith("models-") for name in os.listdir(cache_dir)
    ) is False:
        failures.append("model cache directory has no stored blob")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(snapshots)} worker counts byte-identical, "
        "peak RSS under ceiling, model cache populated"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
