"""CI smoke for the 100k-scale sharded path, at the quick shape.

Runs the same workload shape as ``repro bench``'s
``large_scale_sharded_100k`` quick mode (2000 clients, shard size 128,
``record_events=False``) once per requested worker count and asserts the
two guarantees the full-scale run depends on:

- **Worker-count invariance**: every run exports byte-identical
  telemetry JSON (the sharded snapshot is a pure function of
  ``(dataset, settings, shard_size)``).
- **Bounded peak memory**: each run's peak RSS — measured in a forked
  child so the figure is the run's own high-water mark, covering the
  parent-side streaming merge and the largest shard worker — stays
  under ``--rss-ceiling-mb``.
- **Dataset spill controls the driver's memory**: the driver process's
  own population-attributable RSS growth (``RUSAGE_SELF``, workers in
  separate processes, measured over the quick-shape 2000-client run as
  each mode's population-independent baseline) under
  ``spill_datasets=True`` is at least 40% below the non-spill path,
  and growing the population grows the spill driver's RSS at most half
  as fast as the non-spill driver's.

The runs share a ``--model-cache`` directory, so the first one trains
and stores the predictor/estimator blob and the later ones load it —
the byte comparison therefore also smokes cache-hit byte-safety.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/smoke_scale_100k.py \
        --workers 1 2 --rss-ceiling-mb 1024 --out-dir smoke-100k
"""

import argparse
import os
import sys

import numpy as np

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
sys.path.insert(0, REPO_SRC)

from repro.bench import _build_partitioner, _measure_in_child  # noqa: E402
from repro.core.config import PerDNNConfig  # noqa: E402
from repro.core.master import MigrationPolicy  # noqa: E402
from repro.simulation.large_scale import SimulationSettings  # noqa: E402
from repro.simulation.sharding import run_large_scale_sharded  # noqa: E402
from repro.trajectories.synthetic import kaist_like  # noqa: E402

USERS, DATASET_STEPS, MAX_STEPS, SHARD_SIZE = 2000, 12, 3, 128

#: Populations for the spill-vs-in-memory driver-RSS comparison.  The
#: first (the quick-shape population) estimates each mode's
#: population-independent baseline — pickled model blobs, supervision
#: machinery — and the larger two carry the assertion: there per-shard
#: records dominate the driver's allocations, because the in-memory
#: path accumulates every shard's result (events and all) before
#: merging, while the spill path streams each completed shard through
#: the scratch store and holds at most one in flight.
SPILL_USERS = (2_000, 15_000, 30_000)
SPILL_SHARD_SIZE = 2048
SPILL_MAX_STEPS = 2


def _measure_driver_rss_mb(run) -> float | None:
    """``run()``'s RSS growth in the driver process alone, in MB.

    Forks a child, snapshots its ``RUSAGE_SELF`` high-water mark before
    and after the run, and reports the delta — shard workers are
    separate processes and deliberately excluded, so the figure is what
    the *driver* (plan, dispatch, spill, streaming merge) needed.
    Returns None where fork is unavailable.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    context = multiprocessing.get_context("fork")
    receiver, sender = context.Pipe(duplex=False)

    def child(conn) -> None:
        import resource

        base_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        run()
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        conn.send(max(0, peak_kb - base_kb) / 1024.0)
        conn.close()

    process = context.Process(target=child, args=(sender,))
    process.start()
    sender.close()
    try:
        grown = receiver.recv()
    finally:
        process.join()
        receiver.close()
    return grown


def check_spill_rss(seed: int, failures: list[str]) -> None:
    """Assert dataset spill keeps the driver's RSS flat-ish and small."""
    from repro.mobility.trajectory import TrajectoryDataset
    from repro.simulation.large_scale import (
        train_default_estimator,
        train_default_predictor,
    )

    config = PerDNNConfig(migration_radius_m=100.0)
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=SPILL_MAX_STEPS, seed=seed
    )
    partitioner = _build_partitioner("mobilenet")
    growth: dict[tuple[int, bool], float] = {}
    for users in SPILL_USERS:
        rng = np.random.default_rng(seed)
        dataset = kaist_like(
            rng, num_users=users, duration_steps=DATASET_STEPS
        )
        train, _ = dataset.split_time(settings.replay_fraction)
        train_sub = TrajectoryDataset(
            name=train.name,
            interval_seconds=train.interval_seconds,
            bbox=train.bbox,
            trajectories=train.trajectories[:4000],
        )
        aux_rng = np.random.default_rng(seed)
        predictor = train_default_predictor(
            train_sub, config.prediction_history, aux_rng
        )
        estimator = train_default_estimator(partitioner, aux_rng)
        del train, train_sub
        for spill in (False, True):

            def run(spill: bool = spill) -> None:
                run_large_scale_sharded(
                    dataset,
                    partitioner,
                    settings,
                    config=config,
                    shard_size=SPILL_SHARD_SIZE,
                    workers=2,
                    predictor=predictor,
                    contention_estimator=estimator,
                    spill_datasets=spill,
                )

            grown = _measure_driver_rss_mb(run)
            if grown is None:
                print("driver-RSS check skipped: no fork start method")
                return
            growth[(users, spill)] = grown
            label = "spill" if spill else "in-memory"
            print(
                f"driver RSS growth, {users} clients, {label}: "
                f"{grown:.1f} MB"
            )
    base, mid, big = SPILL_USERS
    # Each mode's quick-shape run is its population-independent floor;
    # what's left above it is the memory the population itself costs.
    in_memory = growth[(big, False)] - growth[(base, False)]
    spilled = growth[(big, True)] - growth[(base, True)]
    print(
        f"population-attributable driver RSS at {big} clients: "
        f"{in_memory:.1f} MB in-memory vs {spilled:.1f} MB spill"
    )
    if spilled > 0.6 * in_memory:
        failures.append(
            f"spill driver RSS at {big} clients grows {spilled:.1f} MB "
            f"above the {base}-client floor, needs >= 40% below "
            f"in-memory ({in_memory:.1f} MB)"
        )
    in_memory_delta = growth[(big, False)] - growth[(mid, False)]
    spill_delta = growth[(big, True)] - growth[(mid, True)]
    if spill_delta > 0.5 * in_memory_delta + 4.0:
        failures.append(
            f"spill driver RSS still scales with clients: "
            f"+{spill_delta:.1f} MB from {mid} to {big} clients vs "
            f"+{in_memory_delta:.1f} MB in-memory (must be <= half, "
            "+4 MB noise margin)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2],
        help="worker counts to run and compare (default: 1 2)",
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=float, default=1024.0,
        help="fail if any run's peak RSS exceeds this (default: 1024)",
    )
    parser.add_argument(
        "--out-dir", default="smoke-100k",
        help="directory for telemetry snapshots and the model cache",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check-spill-rss", action="store_true",
        help="also compare driver RSS growth with and without dataset "
        "spill at 25k/50k clients (adds a few minutes)",
    )
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    cache_dir = os.path.join(args.out_dir, "model-cache")

    rng = np.random.default_rng(args.seed)
    dataset = kaist_like(rng, num_users=USERS, duration_steps=DATASET_STEPS)
    config = PerDNNConfig(migration_radius_m=100.0)
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=MAX_STEPS, seed=args.seed
    )

    snapshots: dict[int, str] = {}
    failures: list[str] = []
    for workers in args.workers:

        def run(workers: int = workers) -> dict:
            result = run_large_scale_sharded(
                dataset,
                _build_partitioner("mobilenet"),
                settings,
                config=config,
                shard_size=SHARD_SIZE,
                workers=workers,
                record_events=False,
                model_cache_dir=cache_dir,
            )
            return {
                "telemetry": result.telemetry.dumps(),
                "shards": result.extras["sharding"]["shards"],
                "clients": result.num_clients,
            }

        measured = _measure_in_child(run)
        payload = measured["payload"]
        snapshots[workers] = payload["telemetry"]
        path = os.path.join(args.out_dir, f"smoke-w{workers}.telemetry.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload["telemetry"])
        print(
            f"workers={workers}: {payload['clients']} clients / "
            f"{payload['shards']} shards in {measured['seconds']:.1f}s, "
            f"peak RSS {measured['peak_rss_mb']:.0f} MB "
            f"(ceiling {args.rss_ceiling_mb:.0f} MB)"
        )
        if measured["peak_rss_mb"] > args.rss_ceiling_mb:
            failures.append(
                f"workers={workers} peak RSS {measured['peak_rss_mb']:.0f} MB "
                f"exceeds ceiling {args.rss_ceiling_mb:.0f} MB"
            )

    baseline_workers = args.workers[0]
    baseline = snapshots[baseline_workers]
    for workers, snapshot in snapshots.items():
        if snapshot != baseline:
            failures.append(
                f"telemetry for workers={workers} differs from "
                f"workers={baseline_workers} (must be byte-identical)"
            )
    if any(
        name.startswith("models-") for name in os.listdir(cache_dir)
    ) is False:
        failures.append("model cache directory has no stored blob")

    if args.check_spill_rss:
        check_spill_rss(args.seed, failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(snapshots)} worker counts byte-identical, "
        "peak RSS under ceiling, model cache populated"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
