"""Fig 4: MAE of layer execution-time estimation under GPU contention.

Left panel: MAE of conv-layer time estimates versus the number of
concurrent clients, for the NeuroSurgeon baseline (LL), LL with GPU
workload features, and PerDNN's random forest with workload features.
Right panel: feature importances of the random forest.

Paper findings: LL's error surges with client count; adding GPU statistics
helps; the random forest is best; workload features dominate importances.
"""

import numpy as np

from repro.dnn.models import build_model
from repro.estimation.evaluation import compare_estimators
from repro.profiling.hardware import titan_xp_server
from repro.profiling.profiler import generate_contention_dataset

from conftest import FULL_SCALE, format_table

CLIENT_COUNTS = (1, 2, 4, 6, 8, 10, 12, 14, 16)


def run_comparison():
    rng = np.random.default_rng(17)
    graph = build_model("resnet")
    server = titan_xp_server()
    rounds = 30 if FULL_SCALE else 14
    train = generate_contention_dataset(
        graph, server, rng, client_counts=CLIENT_COUNTS, rounds_per_count=rounds
    )
    test = generate_contention_dataset(
        graph, server, rng, client_counts=CLIENT_COUNTS, rounds_per_count=5
    )
    return compare_estimators(train, test, rng)


def test_fig4_estimation_mae(benchmark, report):
    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [("clients", "LL (us)", "LL w/ load (us)", "RF w/ load (us)")]
    ll = comparison.mae_by_estimator["LL"]
    ll_load = comparison.mae_by_estimator["LL w/ server load info"]
    rf = comparison.mae_by_estimator["RF w/ server load info"]
    for count in comparison.client_counts:
        rows.append(
            (
                count,
                f"{ll[count] * 1e6:8.1f}",
                f"{ll_load[count] * 1e6:8.1f}",
                f"{rf[count] * 1e6:8.1f}",
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append("feature importances (RF, conv layers):")
    for name, value in sorted(
        comparison.feature_importances.items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"  {name:<22s} {value:.3f}")
    lines.append("")
    lines.append(
        "paper: LL MAE surges with client count (up to ~800 us); "
        "RF w/ load info lowest; workload features most important"
    )
    report("Fig 4: execution-time estimation MAE (conv layers)", lines)

    heavy = comparison.client_counts[-1]
    light = comparison.client_counts[0]
    # LL degrades with load; RF stays much better at heavy load.
    assert ll[heavy] > 3.0 * ll[light]
    assert rf[heavy] < ll[heavy]
    # Aggregate MAE over heavy loads: RF must be the best family.
    heavy_counts = [c for c in comparison.client_counts if c >= 10]
    assert sum(rf[c] for c in heavy_counts) < sum(ll[c] for c in heavy_counts)
    workload = sum(
        value
        for name, value in comparison.feature_importances.items()
        if name
        in ("num_clients", "kernel_utilization", "memory_utilization", "temperature")
    )
    assert workload > 0.5
