"""Ablation: handover hysteresis vs cold starts.

The paper's simulator re-associates the moment a client crosses a cell
boundary; real Wi-Fi clients apply hysteresis.  Sticky handovers suppress
boundary ping-pong — each suppressed handover is a cold start that never
happens — at the cost of sometimes serving the client from a slightly
farther cell.  This ablation sweeps the hysteresis margin under the IONN
baseline (where every handover is a full cold start, so the effect is
largest) and under PerDNN.
"""

import numpy as np

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like

from conftest import FULL_SCALE, format_table

MARGINS = (0.0, 15.0, 30.0, 60.0)


def run_sweep(partitioner, dataset, max_steps):
    out = {}
    for policy in (MigrationPolicy.NONE, MigrationPolicy.PERDNN):
        for margin in MARGINS:
            settings = SimulationSettings(
                policy=policy, migration_radius_m=100.0,
                max_steps=max_steps, seed=19,
            )
            config = PerDNNConfig(
                handover_hysteresis_m=margin, migration_radius_m=100.0
            )
            out[(policy.value, margin)] = run_large_scale(
                dataset, partitioner, settings, config=config
            )
    return out


def test_ablation_hysteresis(benchmark, partitioners, report):
    rng = np.random.default_rng(71)
    if FULL_SCALE:
        dataset, max_steps = kaist_like(rng), None
    else:
        dataset = kaist_like(rng, num_users=25, duration_steps=300)
        max_steps = 70
    results = benchmark.pedantic(
        run_sweep, args=(partitioners["inception"], dataset, max_steps),
        rounds=1, iterations=1,
    )
    rows = [
        ("policy", "hysteresis (m)", "server changes", "misses",
         "total queries")
    ]
    for (policy, margin), result in results.items():
        rows.append(
            (
                policy,
                int(margin),
                result.server_changes,
                result.misses,
                result.total_queries,
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "expected: hysteresis monotonically suppresses handovers (and with "
        "them IONN's cold starts); PerDNN is less sensitive because its "
        "hand-offs are warm anyway"
    )
    report("Ablation: handover hysteresis", lines)

    for policy in ("none", "perdnn"):
        changes = [results[(policy, m)].server_changes for m in MARGINS]
        assert all(a >= b for a, b in zip(changes, changes[1:]))
    # The baseline's miss count tracks its handovers one for one.
    for margin in MARGINS:
        baseline = results[("none", margin)]
        assert baseline.misses == (
            baseline.server_changes + baseline.num_clients
        )
