"""Table III: accuracy of the edge-server prediction algorithms.

Markov / SVR / RNN top-1 and top-2 accuracy (%) plus coordinate MAE (m) on
both datasets, counting non-futile predictions only.  Paper values:

              Markov          SVR              RNN
  KAIST   4.6 / 44.4    8.1 / 54.1 (12.9)   9.2 / 54.6 (12.4)
  Geolife 15.0 / 32.0  38.1 / 59.6 (31.4)  36.9 / 58.1 (32.1)

Expected shape: Markov clearly below SVR and RNN (it loses exact positions
to cell discretization); SVR and RNN comparable, which is why the paper
deploys the cheaper linear SVR.
"""

import numpy as np

from repro.geo.hexgrid import HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.mobility.evaluation import evaluate_predictor
from repro.mobility.lstm import LSTMPredictor
from repro.mobility.markov import MarkovPredictor
from repro.mobility.svr import SVRPredictor
from repro.trajectories.synthetic import geolife_like, kaist_like

from conftest import FULL_SCALE, format_table

PAPER = {
    "kaist-like": {
        "Markov": (4.6, 44.4, None),
        "SVR": (8.1, 54.1, 12.9),
        "RNN": (9.2, 54.6, 12.4),
    },
    "geolife-like-x4": {
        "Markov": (15.0, 32.0, None),
        "SVR": (38.1, 59.6, 31.4),
        "RNN": (36.9, 58.1, 32.1),
    },
}


def run_evaluation():
    rng = np.random.default_rng(47)
    grid = HexGrid(50.0)
    if FULL_SCALE:
        kaist = kaist_like(rng)
        geolife = geolife_like(rng).subsample(4)
    else:
        kaist = kaist_like(rng, num_users=20, duration_steps=400)
        geolife = geolife_like(rng, num_users=50, duration_steps=600).subsample(4)
    results = {}
    for dataset, lstm_hidden in ((kaist, 32), (geolife, 16)):
        registry = EdgeServerRegistry.from_visited_points(
            grid, dataset.all_points()
        )
        train, test = dataset.split_users(0.3, rng)
        predictors = [
            MarkovPredictor(grid),
            SVRPredictor(rng=rng),
            LSTMPredictor(
                hidden_size=lstm_hidden,
                epochs=60 if FULL_SCALE else 35,
                rng=rng,
            ),
        ]
        results[dataset.name] = [
            evaluate_predictor(p.fit(train), test, registry)
            for p in predictors
        ]
    return results


def test_table3_predictor_accuracy(benchmark, report):
    results = benchmark.pedantic(run_evaluation, rounds=1, iterations=1)
    rows = [
        ("dataset", "predictor", "top-1 % (paper/ours)",
         "top-2 % (paper/ours)", "MAE m (paper/ours)")
    ]
    for dataset_key, accuracies in results.items():
        paper_key = (
            "kaist-like" if "kaist" in dataset_key else "geolife-like-x4"
        )
        for accuracy in accuracies:
            paper_top1, paper_top2, paper_mae = PAPER[paper_key][
                accuracy.predictor
            ]
            mae = (
                f"{paper_mae} / {accuracy.mae_meters:.1f}"
                if accuracy.mae_meters is not None
                else "- / -"
            )
            rows.append(
                (
                    dataset_key.replace("-train", "").replace("-test", ""),
                    accuracy.predictor,
                    f"{paper_top1} / {accuracy.top_k_accuracy[1]:.1f}",
                    f"{paper_top2} / {accuracy.top_k_accuracy[2]:.1f}",
                    mae,
                )
            )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "paper shape: Markov << SVR ~= RNN on both datasets; synthetic "
        "traces are smoother than real GPS, so absolute accuracy runs higher"
    )
    report("Table III: accuracy of edge-server prediction", lines)

    for accuracies in results.values():
        by_name = {a.predictor: a for a in accuracies}
        # Markov clearly below the coordinate regressors (top-2).
        assert (
            by_name["Markov"].top_k_accuracy[2]
            < by_name["SVR"].top_k_accuracy[2]
        )
        # SVR and RNN comparable: within 20 accuracy points on top-2 (the
        # trimmed LSTM training budget leaves the RNN slightly behind).
        assert abs(
            by_name["SVR"].top_k_accuracy[2]
            - by_name["RNN"].top_k_accuracy[2]
        ) < 20.0
        # Coordinate MAE in the tens-of-metres regime, as in the paper.
        assert by_name["SVR"].mae_meters < 60.0
