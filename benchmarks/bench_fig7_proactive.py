"""Fig 7: query latency across a server change — IONN vs proactive migration.

For each model the paper plots the per-query execution time around a server
hand-off for IONN (no proactive migration) and PM with the whole model or
only a fraction migrated in advance.  Key result: Inception's peak latency
drops 2.8x with only ~9% of the model (12 MB) migrated, because its
compute-dense convolutions are front-loaded in the efficiency-greedy order;
other models need larger fractions.
"""

from repro.simulation.single_client import simulate_handoff

from conftest import format_table

# Fractions of the upload schedule migrated ahead of the hand-off.
FRACTIONS = (0.0, 0.1, 0.2, 0.5, 1.0)


def run_model(partitioner, config):
    total = partitioner.partition(1.0).schedule.total_bytes
    out = {}
    for fraction in FRACTIONS:
        out[fraction] = simulate_handoff(
            partitioner,
            config,
            num_queries=40,
            switch_after=20,
            premigrated_bytes=fraction * total,
        )
    return total, out


def test_fig7_proactive_migration(benchmark, partitioners, config, report):
    def run_all():
        return {
            name: run_model(partitioners[name], config)
            for name in ("mobilenet", "inception", "resnet")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        ("model", "migrated", "MB", "peak after switch (ms)", "speedup vs IONN")
    ]
    for name, (total, by_fraction) in results.items():
        ionn_peak = by_fraction[0.0].peak_latency_after_switch
        for fraction in FRACTIONS:
            result = by_fraction[fraction]
            label = "IONN" if fraction == 0.0 else f"PM {fraction:.0%}"
            rows.append(
                (
                    name,
                    label,
                    f"{result.migrated_bytes / 1e6:6.1f}",
                    f"{result.peak_latency_after_switch * 1000:7.1f}",
                    f"{ionn_peak / result.peak_latency_after_switch:4.2f}x",
                )
            )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "paper: PM peaks rise far less than IONN at the hand-off; Inception "
        "gains most from a small fraction (2.8x with ~9% of the model)"
    )
    report("Fig 7: query latency across a server change", lines)

    for name, (_, by_fraction) in results.items():
        peaks = [
            by_fraction[f].peak_latency_after_switch for f in FRACTIONS
        ]
        # Migrating more never raises the post-switch peak.
        assert all(a >= b - 1e-9 for a, b in zip(peaks, peaks[1:]))
        # Full migration removes the cold start entirely.
        best = partitioners[name].partition(1.0).plan.latency
        assert by_fraction[1.0].peak_latency_after_switch <= best + 1e-9
    # Inception benefits from a small fraction more than ResNet does.
    inception = results["inception"][1]
    resnet = results["resnet"][1]
    inception_gain = (
        inception[0.0].peak_latency_after_switch
        / inception[0.2].peak_latency_after_switch
    )
    resnet_gain = (
        resnet[0.0].peak_latency_after_switch
        / resnet[0.2].peak_latency_after_switch
    )
    assert inception_gain > resnet_gain
