"""Fig 10: fractional migration on crowded servers (KAIST).

The top 5-7% most crowded servers (by peak uplink traffic) migrate only a
byte-capped, highest-efficiency-first fraction of the server-side layers.
Paper: Inception's peak uplink drops 67% (616 -> 206 Mbps) at a 2% query
loss when 43 MB is migrated instead of the whole model; ResNet drops 43%
(469 -> 268 Mbps) at 1% loss with 56 MB.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import (
    SimulationSettings,
    run_large_scale,
    train_default_estimator,
    train_default_predictor,
)
from repro.trajectories.synthetic import kaist_like

from conftest import FULL_SCALE, format_table

# Byte budgets swept per model (the paper highlights 43 MB / 56 MB).
BUDGETS_MB = {
    "inception": (12, 26, 43),
    "resnet": (20, 40, 56),
}
CROWDED_FRACTION = 0.06  # the paper's top 5-7%


def run_model(model, partitioners, dataset, max_steps):
    rng = np.random.default_rng(5)
    partitioner = partitioners[model]
    train, _ = dataset.split_time(0.4)
    predictor = train_default_predictor(train, history=5, rng=rng)
    estimator = train_default_estimator(partitioner, rng)

    def run(crowded=frozenset(), budget=float("inf")):
        settings = SimulationSettings(
            policy=MigrationPolicy.PERDNN,
            migration_radius_m=100.0,
            max_steps=max_steps,
            seed=13,
            crowded_servers=crowded,
            crowded_byte_budget=budget,
        )
        return run_large_scale(
            dataset, partitioner, settings,
            predictor=predictor, contention_estimator=estimator,
        )

    full = run()
    count = max(1, int(round(full.num_servers * CROWDED_FRACTION)))
    crowded = frozenset(full.uplink.top_servers(count))
    sweep = {
        budget_mb: run(crowded, budget_mb * 1e6)
        for budget_mb in BUDGETS_MB[model]
    }
    return full, crowded, sweep


def test_fig10_fractional_migration(
    benchmark, partitioners, report, telemetry_snapshot
):
    rng = np.random.default_rng(77)
    if FULL_SCALE:
        dataset, max_steps = kaist_like(rng), None
    else:
        dataset = kaist_like(rng, num_users=31, duration_steps=300)
        max_steps = 80

    def run_all():
        return {
            model: run_model(model, partitioners, dataset, max_steps)
            for model in BUDGETS_MB
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (
            "model", "migrated cap", "peak uplink (Mbps)", "reduction",
            "cold-start queries", "query loss",
        )
    ]
    for model, (full, crowded, sweep) in results.items():
        rows.append(
            (
                model, "full model", f"{full.uplink.peak_mbps:6.0f}", "-",
                full.coldstart_queries, "-",
            )
        )
        for budget_mb, result in sweep.items():
            reduction = 1.0 - result.uplink.peak_mbps / full.uplink.peak_mbps
            loss = 1.0 - result.coldstart_queries / full.coldstart_queries
            rows.append(
                (
                    model,
                    f"{budget_mb} MB",
                    f"{result.uplink.peak_mbps:6.0f}",
                    f"{reduction:.0%}",
                    result.coldstart_queries,
                    f"{loss:.1%}",
                )
            )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "paper: Inception 67% peak-uplink cut at 2% query loss (43 MB); "
        "ResNet 43% cut at 1% loss (56 MB); top 5-7% crowded servers capped"
    )
    report("Fig 10: fractional migration on crowded servers", lines)

    for model, (full, crowded, sweep) in results.items():
        largest = max(BUDGETS_MB[model])
        telemetry_snapshot(f"fig10_{model}_full", full)
        telemetry_snapshot(
            f"fig10_{model}_capped_{largest}mb",
            sweep[largest],
            budget_mb=largest,
            crowded_servers=len(crowded),
        )

    for model, (full, crowded, sweep) in results.items():
        largest = max(BUDGETS_MB[model])
        capped = sweep[largest]
        reduction = 1.0 - capped.uplink.peak_mbps / full.uplink.peak_mbps
        loss = 1.0 - capped.coldstart_queries / full.coldstart_queries
        # Shape: a large peak-traffic cut at a small performance cost.
        assert reduction > 0.25
        assert loss < 0.10
        # Every cap level cuts the peak substantially (the peak may move
        # to a different, uncapped server, so exact monotonicity in the
        # budget is not guaranteed).
        for budget_mb, capped_run in sweep.items():
            assert capped_run.uplink.peak_mbps < 0.8 * full.uplink.peak_mbps
