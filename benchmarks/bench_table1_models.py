"""Table I: the evaluation model zoo (# layers, size).

Paper values: MobileNet 110 layers / 16 MB, Inception 312 / 128,
ResNet 245 / 98.
"""

from repro.dnn.models import build_model

from conftest import format_table

PAPER = {
    "mobilenet": (110, 16),
    "inception": (312, 128),
    "resnet": (245, 98),
}


def build_all():
    return {name: build_model(name) for name in PAPER}


def test_table1_model_zoo(benchmark, report):
    graphs = benchmark(build_all)
    rows = [
        (
            "model", "paper layers", "ours", "paper MB", "ours",
            "GFLOPs (ours)",
        )
    ]
    for name, (paper_layers, paper_mb) in PAPER.items():
        graph = graphs[name]
        rows.append(
            (
                name,
                paper_layers,
                len(graph),
                paper_mb,
                f"{graph.size_mb:.1f}",
                f"{graph.total_flops / 1e9:.2f}",
            )
        )
    report("Table I: DNN models used for evaluation", format_table(rows))
    for name, (paper_layers, paper_mb) in PAPER.items():
        graph = graphs[name]
        assert abs(len(graph) - paper_layers) / paper_layers < 0.10
        assert abs(graph.size_mb - paper_mb) / paper_mb < 0.10
