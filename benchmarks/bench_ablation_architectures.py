"""Ablation: how architecture shape drives PerDNN's mechanisms.

Sweeps the full six-model zoo through the partitioner and fractional
selection.  The structural story the paper tells about its three models
generalizes:

* fc-tail-heavy models (AlexNet, VGG-16, Inception-21k) reach near-full
  offloading benefit with a small byte fraction — fractional migration's
  best case;
* uniformly-distributed models (ResNet, MobileNet) need most of their
  bytes;
* tiny models (SqueezeNet) barely need proactive migration at all.
"""

from repro.core.config import PerDNNConfig
from repro.dnn.models import build_model
from repro.partitioning.fractional import select_fraction
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile

from conftest import format_table

ALL_MODELS = (
    "squeezenet", "mobilenet", "inception", "resnet", "alexnet", "vgg16",
)


def byte_fraction_for_benefit(partitioner, target: float = 0.9) -> float:
    """Smallest schedule byte-fraction achieving ``target`` of the latency
    benefit of full migration."""
    result = partitioner.partition(1.0)
    schedule = result.schedule
    local = schedule.latencies[0]
    best = schedule.latencies[-1]
    full_benefit = local - best
    if full_benefit <= 0:
        return 0.0
    total = schedule.total_bytes
    for fraction in (x / 100.0 for x in range(0, 101, 2)):
        selection = select_fraction(schedule, fraction * total)
        if local - selection.latency >= target * full_benefit:
            return fraction
    return 1.0


def run_sweep():
    config = PerDNNConfig()
    client, server = odroid_xu4(), titan_xp_server()
    out = {}
    for name in ALL_MODELS:
        graph = build_model(name)
        profile = ExecutionProfile.build(graph, client, server)
        partitioner = DNNPartitioner(
            profile, config.network.uplink_bps, config.network.downlink_bps
        )
        result = partitioner.partition(1.0)
        out[name] = {
            "size_mb": graph.size_mb,
            "local_ms": partitioner.local_latency() * 1e3,
            "offloaded_ms": result.plan.latency * 1e3,
            "upload_mb": result.schedule.total_bytes / 1e6,
            "fraction_90": byte_fraction_for_benefit(partitioner, 0.9),
        }
    return out


def test_ablation_architectures(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (
            "model", "size MB", "local ms", "offloaded ms", "speedup",
            "bytes for 90% benefit",
        )
    ]
    for name, r in results.items():
        rows.append(
            (
                name,
                f"{r['size_mb']:6.1f}",
                f"{r['local_ms']:7.0f}",
                f"{r['offloaded_ms']:6.0f}",
                f"{r['local_ms'] / r['offloaded_ms']:4.1f}x",
                f"{r['fraction_90']:4.0%}",
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "expected: fc-tailed models (alexnet, vgg16, inception) hit 90% of "
        "the benefit with a small byte fraction; resnet/mobilenet need "
        "most bytes; squeezenet is cheap either way"
    )
    report("Ablation: architecture shape vs PerDNN mechanisms", lines)

    # Offloading always helps; heavier models help more.
    for r in results.values():
        assert r["offloaded_ms"] <= r["local_ms"] + 1e-9
    assert (
        results["vgg16"]["local_ms"] / results["vgg16"]["offloaded_ms"]
        > results["squeezenet"]["local_ms"]
        / results["squeezenet"]["offloaded_ms"]
    )
    # fc-tail models reach 90% benefit with far fewer bytes than ResNet.
    for tailed in ("alexnet", "vgg16", "inception"):
        assert results[tailed]["fraction_90"] < results["resnet"]["fraction_90"]
    # SqueezeNet's whole upload is tiny: under 6 MB.
    assert results["squeezenet"]["upload_mb"] < 6.0
