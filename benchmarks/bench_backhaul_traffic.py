"""§4.B.4: backhaul traffic of proactive migration.

The paper measures, per edge server per interval, the uplink (bytes sent)
and downlink (bytes received) backhaul traffic of proactive migration with
Inception.  Peak traffic of the most crowded server: 616/205 Mbps (KAIST)
and 667/359 Mbps (Geolife) — beyond wireless broadband — but 60-70% of
servers stay under 100 Mbps, motivating a hybrid wired/wireless backhaul
and fractional migration (Fig 10).
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import geolife_like, kaist_like

from conftest import FULL_SCALE, format_table


@pytest.fixture(scope="module")
def datasets():
    rng = np.random.default_rng(300)
    if FULL_SCALE:
        return {
            "kaist": (kaist_like(rng), None),
            "geolife": (geolife_like(rng).subsample(4), None),
        }
    return {
        "kaist": (kaist_like(rng, num_users=31, duration_steps=360), 90),
        "geolife": (
            geolife_like(rng, num_users=50, duration_steps=600).subsample(4),
            60,
        ),
    }


def run_traffic(datasets, partitioners):
    results = {}
    for name, (dataset, max_steps) in datasets.items():
        settings = SimulationSettings(
            policy=MigrationPolicy.PERDNN,
            migration_radius_m=100.0,
            max_steps=max_steps,
            seed=23,
        )
        results[name] = run_large_scale(
            dataset, partitioners["inception"], settings
        )
    return results


def test_backhaul_traffic(
    benchmark, partitioners, datasets, report, telemetry_snapshot
):
    results = benchmark.pedantic(
        run_traffic, args=(datasets, partitioners), rounds=1, iterations=1
    )
    rows = [
        (
            "dataset", "peak up (Mbps)", "peak down (Mbps)",
            "< 100 Mbps (carrying)", "< 100 Mbps (all)", "migrated (GB)",
        )
    ]
    for name, result in results.items():
        over = sum(
            1
            for peak in result.uplink.server_peaks_mbps.values()
            if peak >= 100.0
        )
        fraction_all = 1.0 - over / result.num_servers
        rows.append(
            (
                name,
                f"{result.uplink.peak_mbps:7.0f}",
                f"{result.downlink.peak_mbps:7.0f}",
                f"{result.uplink.fraction_of_servers_under(100.0):.0%}",
                f"{fraction_all:.0%}",
                f"{result.migrated_bytes / 1e9:.2f}",
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "paper (Inception): peak uplink/downlink 616/205 Mbps (KAIST), "
        "667/359 Mbps (Geolife); 60-70% of servers need < 100 Mbps"
    )
    report("Sec 4.B.4: backhaul traffic of proactive migration", lines)

    for name, result in results.items():
        telemetry_snapshot(f"backhaul_{name}_inception", result)

    for name, result in results.items():
        # A few crowded servers need far more than wireless broadband...
        assert result.uplink.peak_mbps > 100.0
        # ...but most servers stay under 100 Mbps (the paper's 60-70% is
        # over all servers; among traffic-carrying servers it is lower).
        over = sum(
            1
            for peak in result.uplink.server_peaks_mbps.values()
            if peak >= 100.0
        )
        assert 1.0 - over / result.num_servers > 0.4
        assert result.uplink.fraction_of_servers_under(100.0) > 0.2
        assert result.downlink.peak_mbps > 0.0
        # Conservation: every byte sent is a byte received.
        assert result.uplink.total_bytes == pytest.approx(
            result.downlink.total_bytes
        )
