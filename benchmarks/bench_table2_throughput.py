"""Table II: queries executed while a DNN model uploads (miss vs hit).

Paper values:
  MobileNet: upload 3.7 s, miss 4, hit 5
  Inception: upload 29.3 s, miss 33, hit 44
  ResNet:    upload 22.4 s, miss 14, hit 34
"""

from repro.simulation.single_client import upload_window_throughput

from conftest import format_table

PAPER = {
    "mobilenet": (3.7, 4, 5),
    "inception": (29.3, 33, 44),
    "resnet": (22.4, 14, 34),
}


def run_all(partitioners, config):
    return {
        name: upload_window_throughput(partitioners[name], config)
        for name in PAPER
    }


def test_table2_upload_throughput(benchmark, partitioners, config, report):
    results = benchmark.pedantic(
        run_all, args=(partitioners, config), rounds=1, iterations=1
    )
    rows = [
        (
            "model", "upload s (paper/ours)", "miss (paper/ours)",
            "hit (paper/ours)",
        )
    ]
    for name, (paper_upload, paper_miss, paper_hit) in PAPER.items():
        result = results[name]
        rows.append(
            (
                name,
                f"{paper_upload} / {result.upload_seconds:.1f}",
                f"{paper_miss} / {result.miss_queries}",
                f"{paper_hit} / {result.hit_queries}",
            )
        )
    report(
        "Table II: queries executed during model upload (miss=IONN, hit=PerDNN)",
        format_table(rows),
    )
    for name, (paper_upload, paper_miss, paper_hit) in PAPER.items():
        result = results[name]
        # Upload times are pinned by size/35 Mbps: within 10% of the paper.
        assert abs(result.upload_seconds - paper_upload) / paper_upload < 0.10
        # Hit throughput within ~25% of the paper's.
        assert abs(result.hit_queries - paper_hit) / paper_hit < 0.25
        assert result.hit_queries >= result.miss_queries
    # The paper's key ordering: large models gain, MobileNet barely does.
    gain = {
        name: results[name].hit_queries - results[name].miss_queries
        for name in PAPER
    }
    assert gain["resnet"] >= gain["inception"] >= gain["mobilenet"]
