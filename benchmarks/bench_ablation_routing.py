"""Ablation: re-offloading at every hand-off vs backhaul routing (§3.A).

The paper chooses re-offloading because routing "leads to sub-optimal
offloading with increased latency and constantly consumes backhaul
traffics".  This ablation quantifies the claim on the KAIST-like dataset
with Inception: routing removes cold starts entirely (one upload, ever)
but every query pays the growing backhaul detour, while PerDNN pays
backhaul only around predicted hand-offs and keeps queries local.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like

from conftest import FULL_SCALE, format_table

POLICIES = (
    ("IONN", MigrationPolicy.NONE),
    ("Routing", MigrationPolicy.ROUTING),
    ("PerDNN", MigrationPolicy.PERDNN),
    ("Optimal", MigrationPolicy.OPTIMAL),
)


def run_all(partitioner, dataset, max_steps):
    out = {}
    for label, policy in POLICIES:
        settings = SimulationSettings(
            policy=policy, migration_radius_m=100.0,
            max_steps=max_steps, seed=9,
        )
        out[label] = run_large_scale(dataset, partitioner, settings)
    return out


def test_ablation_routing(benchmark, partitioners, report):
    rng = np.random.default_rng(55)
    if FULL_SCALE:
        dataset, max_steps = kaist_like(rng), None
    else:
        dataset = kaist_like(rng, num_users=25, duration_steps=300)
        max_steps = 80
    results = benchmark.pedantic(
        run_all, args=(partitioners["inception"], dataset, max_steps),
        rounds=1, iterations=1,
    )
    rows = [
        (
            "system", "total queries", "cold starts (misses)",
            "backhaul total (GB)", "backhaul peak (Mbps)",
        )
    ]
    for label, _ in POLICIES:
        result = results[label]
        rows.append(
            (
                label,
                result.total_queries,
                result.misses,
                f"{result.uplink.total_bytes / 1e9:6.2f}",
                f"{result.uplink.peak_mbps:6.0f}",
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "expected (paper §3.A): routing eliminates repeat cold starts but "
        "consumes backhaul continuously and serves queries remotely; "
        "PerDNN keeps queries local and beats routing on throughput"
    )
    report("Ablation: hand-off re-offloading vs backhaul routing", lines)

    routing = results["Routing"]
    perdnn = results["PerDNN"]
    ionn = results["IONN"]
    # Routing cold-starts only once per client.
    assert routing.misses == routing.num_clients
    assert routing.hits == 0
    # Routing consumes backhaul continuously.
    assert routing.uplink.total_bytes > 0
    # PerDNN serves more queries than routing (local > remote execution)
    # and routing must not beat the oracle.
    assert perdnn.total_queries >= routing.total_queries
    assert routing.total_queries <= results["Optimal"].total_queries
    # Routing's throughput still tops plain IONN early-upload churn or at
    # least stays in the same regime.
    assert routing.total_queries > 0.8 * ionn.total_queries
