"""Fig 1: IONN's cold-start spike when changing edge servers.

The paper's setup: 40 consecutive Inception-21k queries, 0.5 s apart, with
the client switching to a fresh edge server at query 21.  Execution time
drops as layers upload, spikes back to the local latency at the switch,
then recovers — the cold-start problem PerDNN removes.
"""

from repro.simulation.single_client import simulate_handoff

from conftest import format_table


def test_fig1_ionn_cold_start(benchmark, partitioners, config, report):
    partitioner = partitioners["inception"]
    result = benchmark.pedantic(
        simulate_handoff,
        args=(partitioner, config),
        kwargs=dict(num_queries=40, switch_after=20, premigrated_bytes=0.0),
        rounds=3,
        iterations=1,
    )
    rows = [("query", "latency (ms)")]
    for i, latency in enumerate(result.latencies, start=1):
        marker = "  <- server change" if i == 21 else ""
        rows.append((i, f"{latency * 1000:7.1f}{marker}"))
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "paper: latency decreases during upload, soars at the 21st query "
        "(server change), then recovers via incremental offloading"
    )
    report("Fig 1: DNN execution time across a server change (IONN)", lines)

    latencies = result.latencies
    # Shape assertions: warm-up decline, spike at the switch, recovery.
    assert latencies[0] == max(latencies[:20])
    assert latencies[19] < 0.6 * latencies[0]
    assert latencies[20] > 2.0 * latencies[19]  # the cold-start spike
    assert latencies[-1] < 0.6 * latencies[20]  # recovery
