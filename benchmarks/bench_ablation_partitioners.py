"""Ablation: partitioning algorithms (DESIGN.md design-choice check).

Compares the three partitioning algorithms across models and server
contention levels:

* **shortest-path DP** — PerDNN/IONN's algorithm (exact for prefix-style
  execution, supports multiple network crossings),
* **NeuroSurgeon** — single split point (the classic baseline),
* **min-cut** — the DAG labelling of Hu et al., evaluated under the same
  prefix-execution semantics (``realized_latency``).

Expected: the DP never loses; NeuroSurgeon matches it when the optimum is
a single split (typical at low contention) and falls behind otherwise;
min-cut matches the DP whenever its labelling is single-crossing.
"""

import time

from repro.partitioning.mincut import mincut_plan, realized_latency
from repro.partitioning.neurosurgeon import neurosurgeon_plan
from repro.partitioning.shortest_path import optimal_plan

from conftest import format_table

SLOWDOWNS = (1.0, 2.0, 4.0, 8.0)


def run_comparison(partitioners):
    results = {}
    for name, partitioner in partitioners.items():
        for slowdown in SLOWDOWNS:
            costs = partitioner.partition(slowdown).costs
            t0 = time.perf_counter()
            dp = optimal_plan(costs)
            dp_time = time.perf_counter() - t0
            ns = neurosurgeon_plan(costs)
            t0 = time.perf_counter()
            mc = mincut_plan(costs)
            mc_time = time.perf_counter() - t0
            results[(name, slowdown)] = {
                "dp": dp.latency,
                "dp_time": dp_time,
                "neurosurgeon": ns.latency,
                "mincut": realized_latency(costs, mc),
                "mincut_time": mc_time,
            }
    return results


def test_ablation_partitioners(benchmark, partitioners, report):
    results = benchmark.pedantic(
        run_comparison, args=(partitioners,), rounds=1, iterations=1
    )
    rows = [
        (
            "model", "slowdown", "DP (ms)", "NeuroSurgeon (ms)",
            "min-cut (ms)", "DP plan (ms)", "min-cut plan (ms)",
        )
    ]
    for (name, slowdown), r in results.items():
        rows.append(
            (
                name,
                f"{slowdown:.0f}x",
                f"{r['dp'] * 1e3:7.1f}",
                f"{r['neurosurgeon'] * 1e3:7.1f}",
                f"{r['mincut'] * 1e3:7.1f}",
                f"{r['dp_time'] * 1e3:6.2f}",
                f"{r['mincut_time'] * 1e3:6.2f}",
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "expected: DP <= both alternatives everywhere; all three agree "
        "when the optimum is a single split; DP plans orders of magnitude "
        "faster than max-flow"
    )
    report("Ablation: partitioning algorithms", lines)

    for r in results.values():
        assert r["dp"] <= r["neurosurgeon"] + 1e-9
        assert r["dp"] <= r["mincut"] + 1e-9
    # At no contention all three find the same single-split optimum.
    for name in partitioners:
        r = results[(name, 1.0)]
        assert abs(r["neurosurgeon"] - r["dp"]) / r["dp"] < 1e-9
        assert abs(r["mincut"] - r["dp"]) / r["dp"] < 0.01
