"""Perf harness: planner hot paths, vectorized vs node-walk reference.

Unlike the figure/table benchmarks, this one regenerates no paper plot —
it times the code paths the large-scale simulator spends its wall clock
in (forest fit/predict, partition planning, a small end-to-end run) and
pins the vectorized-traversal speedup the repo's committed
``BENCH_perf.json`` advertises.  The same harness backs ``repro bench``;
run full scale with ``PERDNN_BENCH_FULL=1``.
"""

from repro.bench import (
    assert_schema,
    bench_forest,
    bench_large_scale,
    bench_partition,
    run_benchmarks,
    summary_lines,
)

from conftest import FULL_SCALE

QUICK = not FULL_SCALE
SEED = 0
REPEATS = 5 if FULL_SCALE else 3


def test_forest_hot_path_speedup(benchmark, report):
    results = benchmark.pedantic(
        lambda: bench_forest(QUICK, SEED, REPEATS), rounds=1, iterations=1
    )
    batch = results["forest_predict_batch"]
    report(
        "Perf: forest predict (vectorized vs node walk)",
        [
            f"batch {batch['rows']}x{batch['features']}, "
            f"{batch['trees']} trees: "
            f"{batch['seconds_median'] * 1e3:.2f} ms vs "
            f"{results['forest_predict_reference']['seconds_median'] * 1e3:.2f}"
            f" ms reference",
            f"speedup: {batch['speedup_vs_reference']:.1f}x",
        ],
    )
    # The committed BENCH_perf.json claims >= 5x on the full workload;
    # the trimmed CI workload gets headroom for timer noise.
    floor = 5.0 if FULL_SCALE else 3.0
    assert batch["speedup_vs_reference"] >= floor


def test_partition_plan_cache(benchmark, report):
    results = benchmark.pedantic(
        lambda: bench_partition(QUICK, SEED, REPEATS), rounds=1, iterations=1
    )
    plan = results["partition_planning"]
    report(
        "Perf: partition planning sweep",
        [
            f"{plan['plans']} plans: {plan['seconds_median'] * 1e3:.1f} ms "
            f"cold, {plan['cached_seconds_median'] * 1e3:.3f} ms cached",
        ],
    )
    assert plan["cached_seconds_median"] < plan["seconds_median"]


def test_large_scale_end_to_end(benchmark, report):
    results = benchmark.pedantic(
        lambda: bench_large_scale(QUICK, SEED, REPEATS), rounds=1, iterations=1
    )
    sim = results["large_scale"]
    report(
        "Perf: large-scale run (vectorized vs node walk)",
        [
            f"{sim['clients']} clients, {sim['steps']} steps: "
            f"{sim['seconds_median'] * 1e3:.1f} ms vs "
            f"{sim['reference_seconds_median'] * 1e3:.1f} ms reference "
            f"({sim['speedup_vs_reference']:.2f}x)",
        ],
    )
    # Both paths are byte-identical in output (pinned by tier-1 tests);
    # here we only require the vectorized path not to regress. Timing
    # noise on tiny CI runs makes a hard speedup floor too brittle.
    assert sim["seconds_median"] > 0
    assert sim["reference_seconds_median"] > 0


def test_bench_document_schema(report):
    doc = run_benchmarks(quick=True, seed=SEED, repeats=1)
    assert_schema(doc)
    report("Perf: bench harness (quick)", summary_lines(doc))
