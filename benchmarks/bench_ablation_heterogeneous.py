"""Ablation: heterogeneous per-client models (paper future work, §VI).

The paper's simulations give every client the same architecture (each
client's *weights* are private).  Its future work asks about more
realistic fleets; this ablation runs a mixed fleet — MobileNet, Inception,
and ResNet assigned round-robin — under PerDNN and compares against the
homogeneous extremes.
"""

import numpy as np

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like

from conftest import FULL_SCALE, format_table


def run_fleets(partitioners, dataset, max_steps):
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, migration_radius_m=100.0,
        max_steps=max_steps, seed=17,
    )
    fleets = {
        "all-mobilenet": partitioners["mobilenet"],
        "all-inception": partitioners["inception"],
        "mixed (1/3 each)": [
            partitioners["mobilenet"],
            partitioners["inception"],
            partitioners["resnet"],
        ],
    }
    return {
        label: run_large_scale(dataset, fleet, settings)
        for label, fleet in fleets.items()
    }


def test_ablation_heterogeneous_fleet(benchmark, partitioners, report):
    rng = np.random.default_rng(41)
    if FULL_SCALE:
        dataset, max_steps = kaist_like(rng), None
    else:
        dataset = kaist_like(rng, num_users=24, duration_steps=300)
        max_steps = 70
    results = benchmark.pedantic(
        run_fleets, args=(partitioners, dataset, max_steps),
        rounds=1, iterations=1,
    )
    rows = [("fleet", "hit ratio", "migrated (GB)", "per-model queries")]
    for label, result in results.items():
        per_model = ", ".join(
            f"{name.split('_')[0]}={count}"
            for name, count in sorted(
                result.extras["per_model_queries"].items()
            )
        )
        rows.append(
            (
                label,
                f"{result.hit_ratio:.2f}",
                f"{result.migrated_bytes / 1e9:6.2f}",
                per_model,
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "expected: hit ratio is mobility-driven and stays stable across "
        "fleets; backhaul volume scales with the fleet's model-size mix"
    )
    report("Ablation: heterogeneous per-client model fleet", lines)

    mixed = results["mixed (1/3 each)"]
    small = results["all-mobilenet"]
    large = results["all-inception"]
    # Hit ratio is driven by mobility prediction, not model size.
    assert abs(mixed.hit_ratio - large.hit_ratio) < 0.15
    # Backhaul volume sits between the homogeneous extremes.
    assert small.migrated_bytes < mixed.migrated_bytes < large.migrated_bytes
    # All three model populations executed queries.
    assert len(mixed.extras["per_model_queries"]) == 3
