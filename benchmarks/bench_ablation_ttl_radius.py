"""Ablation: TTL and migration radius (the §3.B.2 / §3.C.2 design knobs).

The paper fixes TTL = 5 intervals and evaluates r in {50, 100} m.  This
ablation sweeps both on the KAIST-like dataset: larger TTL keeps migrated
layers alive through prediction misses and slow approaches (higher hit
ratio, more standing cache); larger radius blankets more candidate servers
(higher hit ratio, more backhaul traffic).
"""

import numpy as np

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import (
    SimulationSettings,
    run_large_scale,
    train_default_estimator,
    train_default_predictor,
)
from repro.trajectories.synthetic import kaist_like

from conftest import FULL_SCALE, format_table

TTLS = (1, 2, 5, 10)
RADII = (50.0, 100.0, 150.0)


def run_sweep(partitioner, dataset, max_steps):
    rng = np.random.default_rng(3)
    train, _ = dataset.split_time(0.4)
    predictor = train_default_predictor(train, history=5, rng=rng)
    estimator = train_default_estimator(partitioner, rng)

    def run(ttl, radius):
        config = PerDNNConfig(ttl_intervals=ttl, migration_radius_m=radius)
        settings = SimulationSettings(
            policy=MigrationPolicy.PERDNN, migration_radius_m=radius,
            max_steps=max_steps, seed=31,
        )
        return run_large_scale(
            dataset, partitioner, settings, config=config,
            predictor=predictor, contention_estimator=estimator,
        )

    ttl_results = {ttl: run(ttl, 100.0) for ttl in TTLS}
    radius_results = {radius: run(5, radius) for radius in RADII}
    return ttl_results, radius_results


def test_ablation_ttl_and_radius(benchmark, partitioners, report):
    rng = np.random.default_rng(99)
    if FULL_SCALE:
        dataset, max_steps = kaist_like(rng), None
    else:
        dataset = kaist_like(rng, num_users=25, duration_steps=300)
        max_steps = 70
    ttl_results, radius_results = benchmark.pedantic(
        run_sweep, args=(partitioners["inception"], dataset, max_steps),
        rounds=1, iterations=1,
    )
    rows = [("TTL (intervals)", "hit ratio", "migrated (GB)")]
    for ttl, result in ttl_results.items():
        rows.append(
            (ttl, f"{result.hit_ratio:.2f}",
             f"{result.migrated_bytes / 1e9:6.2f}")
        )
    lines = ["TTL sweep (r = 100 m):"]
    lines.extend(format_table(rows))
    rows2 = [("radius (m)", "hit ratio", "migrated (GB)", "peak up (Mbps)")]
    for radius, result in radius_results.items():
        rows2.append(
            (
                int(radius), f"{result.hit_ratio:.2f}",
                f"{result.migrated_bytes / 1e9:6.2f}",
                f"{result.uplink.peak_mbps:6.0f}",
            )
        )
    lines.append("")
    lines.append("radius sweep (TTL = 5):")
    lines.extend(format_table(rows2))
    lines.append("")
    lines.append(
        "expected: hit ratio grows with both knobs; radius buys hits with "
        "extra backhaul (the Fig 9 r=50 vs r=100 trade-off)"
    )
    report("Ablation: cache TTL and migration radius", lines)

    ttl_hits = [ttl_results[ttl].hit_ratio for ttl in TTLS]
    assert ttl_hits[-1] >= ttl_hits[0]  # longer TTL never hurts hits
    radius_hits = [radius_results[r].hit_ratio for r in RADII]
    assert all(a <= b + 0.02 for a, b in zip(radius_hits, radius_hits[1:]))
    migrated = [radius_results[r].migrated_bytes for r in RADII]
    assert migrated == sorted(migrated)  # wider radius -> more traffic
