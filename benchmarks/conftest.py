"""Shared benchmark infrastructure.

Each benchmark regenerates one table or figure of the paper and registers a
paper-vs-measured report; reports are printed in the terminal summary so
they survive pytest's output capture (and land in bench_output.txt).

Benchmarks default to trimmed workloads so the full suite finishes in
minutes on one core; set ``PERDNN_BENCH_FULL=1`` for paper-scale runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.dnn.models import build_model
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile

_REPORTS: list[tuple[str, list[str]]] = []

FULL_SCALE = os.environ.get("PERDNN_BENCH_FULL", "0") == "1"

#: Where benchmarks drop machine-readable metrics snapshots.
SNAPSHOT_DIR = os.path.join(os.path.dirname(__file__), "_telemetry")


def format_table(rows: list[tuple]) -> list[str]:
    """Fixed-width table rendering for report blocks."""
    text_rows = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(row[i]) for row in text_rows if i < len(row))
        for i in range(max(len(r) for r in text_rows))
    ]
    lines = []
    for row in text_rows:
        lines.append(
            "  ".join(value.ljust(widths[i]) for i, value in enumerate(row))
        )
    return lines


@pytest.fixture
def report():
    """Call ``report(title, lines)`` to register a summary block."""

    def _record(title: str, lines: list[str]) -> None:
        _REPORTS.append((title, list(lines)))

    return _record


@pytest.fixture
def telemetry_snapshot():
    """Write one run's telemetry to ``benchmarks/_telemetry/<name>.json``.

    Call ``telemetry_snapshot(name, result, **meta)`` with a
    :class:`~repro.simulation.large_scale.LargeScaleResult`; the shared
    exporter serializes the run's registry and event trace, replacing the
    ad-hoc dict dumps benchmarks used to hand-roll.  Inspect snapshots
    with ``python -m repro telemetry <path>``.
    """

    def _write(name: str, result, **meta) -> str:
        assert result.telemetry is not None, "result carries no telemetry"
        full_meta = {
            "benchmark": name,
            "dataset": result.dataset,
            "model": result.model,
            "policy": result.policy,
            **{key: str(value) for key, value in meta.items()},
        }
        path = os.path.join(SNAPSHOT_DIR, f"{name}.telemetry.json")
        return result.telemetry.write(path, meta=full_meta)

    return _write


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 74)
    terminalreporter.write_line("PerDNN reproduction: paper vs measured")
    terminalreporter.write_line("=" * 74)
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in lines:
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def config() -> PerDNNConfig:
    return PerDNNConfig()


@pytest.fixture(scope="session")
def devices():
    return odroid_xu4(), titan_xp_server()


@pytest.fixture(scope="session")
def partitioners(config, devices) -> dict[str, DNNPartitioner]:
    """One partitioner per evaluation model, shared across benchmarks."""
    client, server = devices
    out = {}
    for name in ("mobilenet", "inception", "resnet"):
        profile = ExecutionProfile.build(build_model(name), client, server)
        out[name] = DNNPartitioner(
            profile,
            config.network.uplink_bps,
            config.network.downlink_bps,
        )
    return out


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2026)
