"""Fig 6: choosing the trajectory length n and prediction interval t.

Left: prediction error (MAE, metres) of the SVR predictor versus the
trajectory length n, for time intervals t in {15, 20, 25, 30} s.  Paper
finding: the error drops sharply at n = 2 (the last two positions carry
the signal) and plateaus around n = 5.

Right: futile-prediction ratio and MAE versus t.  Larger t means fewer
futile predictions but larger errors; the benefit/cost ratio
a * (p - f) / p selects t = 20 s for Geolife.
"""

import numpy as np

from repro.geo.hexgrid import HexGrid
from repro.mobility.evaluation import (
    benefit_cost_ratio,
    futile_prediction_ratio,
    point_prediction_mae,
)
from repro.mobility.svr import SVRPredictor
from repro.trajectories.synthetic import geolife_like

from conftest import FULL_SCALE, format_table

BASE_INTERVAL = 5.0
T_FACTORS = {15: 3, 20: 4, 25: 5, 30: 6}  # t seconds -> subsample factor
HISTORY_LENGTHS = (1, 2, 3, 5, 8)


def run_analysis():
    rng = np.random.default_rng(31)
    users = 138 if FULL_SCALE else 40
    steps = 900 if FULL_SCALE else 600
    base = geolife_like(rng, num_users=users, duration_steps=steps)
    epochs = 120 if FULL_SCALE else 60
    mae_by_t_n: dict[int, dict[int, float]] = {}
    futile_by_t: dict[int, float] = {}
    grid = HexGrid(50.0)
    for t_seconds, factor in T_FACTORS.items():
        dataset = base.subsample(factor)
        train, test = dataset.split_users(0.3, rng)
        futile_by_t[t_seconds] = futile_prediction_ratio(test, grid)
        mae_by_t_n[t_seconds] = {}
        for history in HISTORY_LENGTHS:
            predictor = SVRPredictor(history=history, epochs=epochs, rng=rng)
            predictor.fit(train)
            mae_by_t_n[t_seconds][history] = point_prediction_mae(
                predictor, test, history
            )
    return mae_by_t_n, futile_by_t


def test_fig6_parameter_selection(benchmark, report):
    mae_by_t_n, futile_by_t = benchmark.pedantic(
        run_analysis, rounds=1, iterations=1
    )
    rows = [("n \\ t", *(f"{t}s" for t in T_FACTORS))]
    for history in HISTORY_LENGTHS:
        rows.append(
            (
                history,
                *(f"{mae_by_t_n[t][history]:6.1f}" for t in T_FACTORS),
            )
        )
    lines = ["prediction MAE (m) vs trajectory length n:"]
    lines.extend(format_table(rows))
    lines.append("")
    lines.append("futile ratio and benefit/cost vs interval t (n = 5):")
    rows2 = [("t (s)", "futile ratio", "MAE (m)", "benefit/cost")]
    ratios = {}
    for t_seconds in T_FACTORS:
        futile = futile_by_t[t_seconds]
        mae = mae_by_t_n[t_seconds][5]
        # Proxy accuracy: predictions within a cell radius of the truth.
        accuracy = max(0.0, min(1.0, 50.0 / max(mae, 1e-9)))
        ratios[t_seconds] = benefit_cost_ratio(min(accuracy, 1.0), futile)
        rows2.append(
            (
                t_seconds,
                f"{futile:.2f}",
                f"{mae:6.1f}",
                f"{ratios[t_seconds]:.3f}",
            )
        )
    lines.extend(format_table(rows2))
    lines.append("")
    lines.append(
        "paper: error drops at n=2 and plateaus ~n=5; larger t lowers the "
        "futile ratio but raises the error; best benefit/cost at t=20 s"
    )
    report("Fig 6: trajectory length and prediction-interval selection", lines)

    for t_seconds in T_FACTORS:
        per_n = mae_by_t_n[t_seconds]
        # n=2 must be much better than n=1 (the paper's key observation).
        assert per_n[2] < 0.8 * per_n[1]
        # And n=5 must not be much worse than n=2 (plateau).
        assert per_n[5] < 1.3 * per_n[2]
    # Futility strictly drops as the interval grows.
    futiles = [futile_by_t[t] for t in sorted(T_FACTORS)]
    assert all(a >= b for a, b in zip(futiles, futiles[1:]))
    # Error grows with the interval (predicting further into the future).
    maes = [mae_by_t_n[t][5] for t in sorted(T_FACTORS)]
    assert maes[-1] > maes[0]
