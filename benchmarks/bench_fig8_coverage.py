"""Fig 8: user trajectories and edge-server distribution.

The paper visualizes Geolife trajectories over the Beijing rectangle with
an edge server allocated per visited 50 m hex cell.  This bench regenerates
the allocation and renders an ASCII density map plus coverage statistics.
"""

import numpy as np

from repro.geo.hexgrid import HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.trajectories.stats import dataset_statistics
from repro.trajectories.synthetic import geolife_like, kaist_like

from conftest import FULL_SCALE, format_table


def build_world():
    rng = np.random.default_rng(2026)
    if FULL_SCALE:
        geolife = geolife_like(rng)
        kaist = kaist_like(rng)
    else:
        geolife = geolife_like(rng, num_users=60, duration_steps=400)
        kaist = kaist_like(rng, num_users=31, duration_steps=300)
    grid = HexGrid(50.0)
    registries = {
        "geolife-like": EdgeServerRegistry.from_visited_points(
            grid, geolife.all_points()
        ),
        "kaist-like": EdgeServerRegistry.from_visited_points(
            grid, kaist.all_points()
        ),
    }
    return {"geolife-like": geolife, "kaist-like": kaist}, registries


def ascii_density_map(dataset, width=72, height=22) -> list[str]:
    box = dataset.bbox
    grid_counts = np.zeros((height, width), dtype=int)
    points = dataset.all_points()
    xs = np.clip(
        ((points[:, 0] - box.min_x) / box.width * (width - 1)).astype(int),
        0, width - 1,
    )
    ys = np.clip(
        ((points[:, 1] - box.min_y) / box.height * (height - 1)).astype(int),
        0, height - 1,
    )
    np.add.at(grid_counts, (ys, xs), 1)
    shades = " .:*#@"
    peak = grid_counts.max() or 1
    lines = []
    for row in grid_counts[::-1]:
        line = "".join(
            shades[min(len(shades) - 1, int(v / peak * (len(shades) - 1) * 3))]
            for v in row
        )
        lines.append(line)
    return lines


def test_fig8_coverage(benchmark, report):
    datasets, registries = benchmark.pedantic(build_world, rounds=1, iterations=1)
    rows = [
        (
            "dataset", "users", "region (km)", "avg speed (m/s)",
            "edge servers (visited cells)",
        )
    ]
    for name, dataset in datasets.items():
        stats = dataset_statistics(dataset)
        rows.append(
            (
                name,
                stats.num_users,
                f"{stats.region_km[0]:.1f} x {stats.region_km[1]:.1f}",
                f"{stats.average_speed_mps:.2f}",
                registries[name].num_servers,
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append("trajectory density (geolife-like region):")
    lines.extend(ascii_density_map(datasets["geolife-like"]))
    lines.append("")
    lines.append(
        "paper: Geolife users inside 7.2 x 5.6 km Beijing rectangle, one "
        "server per visited 50 m hex cell; KAIST ~0.5 m/s vs Geolife ~3.9 m/s"
    )
    report("Fig 8: trajectories and edge-server distribution", lines)

    geolife_stats = dataset_statistics(datasets["geolife-like"])
    kaist_stats = dataset_statistics(datasets["kaist-like"])
    assert geolife_stats.average_speed_mps > 4 * kaist_stats.average_speed_mps
    assert registries["geolife-like"].num_servers > registries[
        "kaist-like"
    ].num_servers
    # Every trace point must be covered by an allocated server.
    registry = registries["kaist-like"]
    for point in datasets["kaist-like"].all_points()[::97]:
        assert registry.server_at((point[0], point[1])) is not None
