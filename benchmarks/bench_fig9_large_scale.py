"""Fig 9: large-scale simulation — cold-start queries and hit ratios.

For each dataset (KAIST-like, Geolife-like) and model, four systems run
over the replayed traces:

* IONN (baseline: no proactive transmission, hit ratio 0%),
* PerDNN with migration radius r = 50 m and r = 100 m,
* Optimal (all layers always everywhere, hit ratio 100%).

Reported per run: the number of queries executed during the interval right
after each server change (the paper's optimization target) and the hit
ratio.  Paper: hit ratios 37/90% (KAIST r=50/100) and 43/70% (Geolife);
query counts grow with the hit ratio, and large models have far more
optimizable queries than MobileNet.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import (
    SimulationSettings,
    run_large_scale,
    train_default_estimator,
    train_default_predictor,
)
from repro.trajectories.synthetic import geolife_like, kaist_like

from conftest import FULL_SCALE, format_table

MODELS = ("mobilenet", "inception", "resnet")
SYSTEMS = (
    ("IONN", MigrationPolicy.NONE, 100.0),
    ("PerDNN r=50", MigrationPolicy.PERDNN, 50.0),
    ("PerDNN r=100", MigrationPolicy.PERDNN, 100.0),
    ("Optimal", MigrationPolicy.OPTIMAL, 100.0),
)


@pytest.fixture(scope="module")
def datasets():
    rng = np.random.default_rng(101)
    if FULL_SCALE:
        return {
            "kaist": (kaist_like(rng), None),
            "geolife": (geolife_like(rng).subsample(4), None),
        }
    return {
        "kaist": (kaist_like(rng, num_users=31, duration_steps=360), 90),
        "geolife": (
            geolife_like(rng, num_users=50, duration_steps=600).subsample(4),
            60,
        ),
    }


def run_dataset(dataset, max_steps, partitioners):
    """All systems x models on one dataset, sharing trained components."""
    rng = np.random.default_rng(7)
    train, _ = dataset.split_time(0.4)
    predictor = train_default_predictor(train, history=5, rng=rng)
    results = {}
    for model in MODELS:
        partitioner = partitioners[model]
        estimator = train_default_estimator(partitioner, rng)
        for label, policy, radius in SYSTEMS:
            settings = SimulationSettings(
                policy=policy,
                migration_radius_m=radius,
                max_steps=max_steps,
                seed=11,
            )
            results[(model, label)] = run_large_scale(
                dataset,
                partitioner,
                settings,
                predictor=predictor if policy is MigrationPolicy.PERDNN else None,
                contention_estimator=estimator,
            )
    return results


def test_fig9_large_scale(
    benchmark, partitioners, datasets, report, telemetry_snapshot
):
    def run_all():
        return {
            name: run_dataset(dataset, max_steps, partitioners)
            for name, (dataset, max_steps) in datasets.items()
        }

    all_results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [("dataset", "model", "system", "cold-start queries", "hit ratio")]
    for dataset_name, results in all_results.items():
        for model in MODELS:
            for label, *_ in SYSTEMS:
                result = results[(model, label)]
                rows.append(
                    (
                        dataset_name,
                        model,
                        label,
                        result.coldstart_queries,
                        f"{result.hit_ratio:.2f}",
                    )
                )
    lines = format_table(rows)
    lines.append("")
    lines.append(
        "paper hit ratios: KAIST 0.37 (r=50) / 0.90 (r=100), "
        "Geolife 0.43 / 0.70; query counts grow with hit ratio; "
        "MobileNet has few optimizable queries"
    )
    report("Fig 9: executed queries and hit ratios (large-scale)", lines)

    for dataset_name, results in all_results.items():
        telemetry_snapshot(
            f"fig9_{dataset_name}_inception_r100",
            results[("inception", "PerDNN r=100")],
            radius_m=100,
        )

    for dataset_name, results in all_results.items():
        for model in MODELS:
            baseline = results[(model, "IONN")]
            r50 = results[(model, "PerDNN r=50")]
            r100 = results[(model, "PerDNN r=100")]
            optimal = results[(model, "Optimal")]
            assert baseline.hit_ratio == 0.0
            assert optimal.hit_ratio == 1.0
            assert 0.0 < r50.hit_ratio <= 1.0
            assert r50.hit_ratio <= r100.hit_ratio + 0.05
            assert (
                baseline.coldstart_queries
                <= r100.coldstart_queries + 2
            )
            assert r100.coldstart_queries <= optimal.coldstart_queries + 2
        # Optimizable queries (optimal - baseline) are much larger for the
        # big models than for MobileNet.
        def optimizable(model):
            return (
                results[(model, "Optimal")].coldstart_queries
                - results[(model, "IONN")].coldstart_queries
            )

        assert optimizable("inception") > 2 * optimizable("mobilenet")
        assert optimizable("resnet") > 2 * optimizable("mobilenet")
    # The paper's KAIST-vs-Geolife gap: slow walkers are easier to predict.
    kaist_hit = all_results["kaist"][("inception", "PerDNN r=100")].hit_ratio
    geolife_hit = all_results["geolife"][("inception", "PerDNN r=100")].hit_ratio
    assert kaist_hit >= 0.5
    assert geolife_hit >= 0.3
