"""Ablation: model retraining churn and client energy (the §I motivations).

Two extensions of the paper's evaluation:

1. **Model updates** — §I motivates versatile edge servers with clients
   that retrain/replace their personal models after deployment.  Retrained
   weights invalidate every cached copy, so frequent updates erode the hit
   ratio PerDNN buys and force re-migration.  This sweep quantifies that.
2. **Client energy** — §I motivates offloading with wearable battery life;
   the energy model reports client joules per query, local vs offloaded,
   for all three models.
"""

import numpy as np

from repro.core.master import MigrationPolicy
from repro.profiling.energy import energy_savings_ratio, local_energy, plan_energy
from repro.partitioning.shortest_path import optimal_plan
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like

from conftest import FULL_SCALE, format_table

UPDATE_PERIODS = (None, 10, 5, 2)  # intervals between retrainings


def run_update_sweep(partitioner, dataset, max_steps):
    out = {}
    for period in UPDATE_PERIODS:
        settings = SimulationSettings(
            policy=MigrationPolicy.PERDNN, migration_radius_m=100.0,
            max_steps=max_steps, seed=27, model_update_every=period,
        )
        out[period] = run_large_scale(dataset, partitioner, settings)
    return out


def test_ablation_model_updates_and_energy(benchmark, partitioners, report):
    rng = np.random.default_rng(12)
    if FULL_SCALE:
        dataset, max_steps = kaist_like(rng), None
    else:
        dataset = kaist_like(rng, num_users=20, duration_steps=300)
        max_steps = 60
    results = benchmark.pedantic(
        run_update_sweep, args=(partitioners["inception"], dataset, max_steps),
        rounds=1, iterations=1,
    )
    rows = [
        ("retrain every", "hit ratio", "migrated (GB)", "model updates")
    ]
    for period, result in results.items():
        rows.append(
            (
                "never" if period is None else f"{period} intervals",
                f"{result.hit_ratio:.2f}",
                f"{result.migrated_bytes / 1e9:6.2f}",
                result.extras.get("model_updates", 0),
            )
        )
    lines = ["model-update churn (Inception, KAIST-like):"]
    lines.extend(format_table(rows))
    lines.append("")
    lines.append("client energy per query (local vs optimally partitioned):")
    rows2 = [("model", "local (J)", "offloaded (J)", "savings")]
    for name, partitioner in partitioners.items():
        costs = partitioner.partition(1.0).costs
        plan = optimal_plan(costs)
        offloaded = plan_energy(costs, plan).total_joules
        rows2.append(
            (
                name,
                f"{local_energy(costs):6.2f}",
                f"{offloaded:6.2f}",
                f"{energy_savings_ratio(costs, plan):5.0%}",
            )
        )
    lines.extend(format_table(rows2))
    lines.append("")
    lines.append(
        "expected: hit ratio monotone in retrain period; large models save "
        "the most client energy by offloading (the §I motivation)"
    )
    report("Ablation: model retraining churn and client energy", lines)

    # Churn erodes the hit ratio monotonically (None = no churn is best).
    ordered = [results[None]] + [results[p] for p in (10, 5, 2)]
    hit_ratios = [r.hit_ratio for r in ordered]
    assert all(a >= b - 0.03 for a, b in zip(hit_ratios, hit_ratios[1:]))
    assert results[2].hit_ratio < results[None].hit_ratio
    # Offloading saves client energy for every model.
    for name, partitioner in partitioners.items():
        costs = partitioner.partition(1.0).costs
        assert energy_savings_ratio(costs, optimal_plan(costs)) > 0.0
