"""Ablation: transportation-mode-aware prediction (the paper's future work).

§4.B.3 anticipates that Geolife's hit ratio "can be improved with advanced
prediction techniques such as transportation mode inference".  This
ablation compares the deployed linear SVR against a per-mode SVR ensemble
(windows classified walk/bike/vehicle by average speed).

Honest finding on the synthetic traces: near-constant-velocity legs make
next-position prediction mode-independent in coordinate space, so the
per-mode ensemble only fragments the training data and does *not* improve
accuracy here — the gain the paper anticipates requires real GPS tracks
where modes differ in noise and road-following behaviour.  The benchmark
asserts the two stay comparable and reports the measured deltas.
"""

import numpy as np

from repro.geo.hexgrid import HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.mobility.evaluation import evaluate_predictor
from repro.mobility.modes import ModeAwareSVRPredictor
from repro.mobility.svr import SVRPredictor
from repro.trajectories.synthetic import geolife_like

from conftest import FULL_SCALE, format_table


def run_comparison():
    rng = np.random.default_rng(64)
    users = 138 if FULL_SCALE else 50
    steps = 900 if FULL_SCALE else 600
    dataset = geolife_like(rng, num_users=users, duration_steps=steps).subsample(4)
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry.from_visited_points(grid, dataset.all_points())
    train, test = dataset.split_users(0.3, rng)
    plain = SVRPredictor(rng=rng).fit(train)
    mode_aware = ModeAwareSVRPredictor(rng=rng).fit(train)
    return (
        evaluate_predictor(plain, test, registry),
        evaluate_predictor(mode_aware, test, registry),
        mode_aware.mode_counts_,
    )


def test_ablation_mode_aware_prediction(benchmark, report):
    plain, mode_aware, counts = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    rows = [("predictor", "top-1 %", "top-2 %", "MAE (m)")]
    for accuracy in (plain, mode_aware):
        rows.append(
            (
                accuracy.predictor,
                f"{accuracy.top_k_accuracy[1]:.1f}",
                f"{accuracy.top_k_accuracy[2]:.1f}",
                f"{accuracy.mae_meters:.1f}",
            )
        )
    lines = format_table(rows)
    lines.append("")
    lines.append(f"training windows per mode: {counts}")
    lines.append(
        "finding: on smooth synthetic traces the per-mode split does not "
        "beat the single linear SVR (constant-velocity extrapolation is "
        "mode-independent); the paper's anticipated gain needs real GPS"
    )
    report("Ablation: transportation-mode-aware mobility prediction", lines)

    # All modes actually observed in the multi-modal dataset.
    assert all(counts[mode] > 0 for mode in ("walk", "bike", "vehicle"))
    # The ensemble stays in the same accuracy regime as the deployed SVR.
    assert abs(
        plain.top_k_accuracy[2] - mode_aware.top_k_accuracy[2]
    ) < 10.0
    assert mode_aware.mae_meters < 2.0 * plain.mae_meters
