#!/usr/bin/env python3
"""GPU-aware partitioning: how plans shift as an edge server gets crowded.

PerDNN's partitioner estimates server-side layer times from nvml-style GPU
statistics (kernel/memory utilization, temperature, client count) via a
random forest trained on offline profiling data (§3.C.1).  This example:

1. profiles ResNet-50 under synthetic multi-client contention,
2. trains the GPU-stats -> slowdown estimator,
3. shows how the partitioning plan retreats toward the client as more
   clients crowd the server's GPU — the automatic load balancing of §3.C.2.

Run:  python examples/gpu_aware_partitioning.py
"""

import numpy as np

from repro.core import PerDNNConfig
from repro.dnn import build_model
from repro.estimation import ContentionEstimator
from repro.partitioning import DNNPartitioner
from repro.profiling import (
    ExecutionProfile,
    GpuContentionModel,
    generate_contention_dataset,
    odroid_xu4,
    titan_xp_server,
)


def main() -> None:
    rng = np.random.default_rng(0)
    config = PerDNNConfig()
    graph = build_model("resnet")
    server = titan_xp_server()
    profile = ExecutionProfile.build(graph, odroid_xu4(), server)
    partitioner = DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )

    print("offline profiling campaign (perf_client style)...")
    samples = generate_contention_dataset(
        graph, server, rng, client_counts=(1, 2, 4, 8, 12, 16),
        rounds_per_count=10,
    )
    estimator = ContentionEstimator(rng=rng).fit(samples)
    print(f"  {len(samples)} samples -> GPU-stats slowdown estimator trained\n")

    print(f"{'clients':>7s} {'kernel util':>11s} {'est. slowdown':>13s} "
          f"{'server layers':>13s} {'query latency':>13s}")
    gpu = GpuContentionModel(np.random.default_rng(1))
    for clients in (0, 2, 4, 8, 12, 16):
        gpu.step(clients)
        stats = gpu.sample_stats()
        slowdown = estimator.predict_slowdown(stats)
        result = partitioner.partition(slowdown)
        print(
            f"{clients:>7d} {stats.kernel_utilization:>10.0f}% "
            f"{slowdown:>12.2f}x {len(result.plan.server_indices):>6d}/"
            f"{len(graph):<6d} {result.plan.latency * 1000:>10.0f} ms"
        )
    print("\nCrowded servers are automatically less attractive: the plan "
          "keeps more layers on the client, and the master would pick a "
          "less-loaded nearby server instead.")


if __name__ == "__main__":
    main()
