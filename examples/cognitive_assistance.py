#!/usr/bin/env python3
"""Mobile cognitive assistance: a user walks between two edge servers.

The paper's motivating application: smart glasses continuously recognize
objects for a visually-impaired user (one DNN query every 0.5 s).  This
example replays the Fig 1 / Fig 7 experiment: 40 ResNet-50 queries with a
hand-off to a new edge server at query 21, comparing

* IONN  — the new server starts empty; the client re-uploads from scratch,
* PerDNN — the previous server proactively migrated layers ahead of time.

Run:  python examples/cognitive_assistance.py
"""

from repro.core import PerDNNConfig
from repro.dnn import build_model
from repro.partitioning import DNNPartitioner
from repro.profiling import ExecutionProfile, odroid_xu4, titan_xp_server
from repro.simulation import simulate_handoff


def sparkline(values, width: int = 50) -> str:
    blocks = " .:-=+*#%@"
    peak = max(values)
    return "".join(
        blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))]
        for v in values
    )


def main() -> None:
    config = PerDNNConfig()
    profile = ExecutionProfile.build(
        build_model("resnet"), odroid_xu4(), titan_xp_server()
    )
    partitioner = DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )
    total = partitioner.partition(1.0).schedule.total_bytes

    scenarios = {
        "IONN (no proactive migration)": 0.0,
        "PerDNN (20% of model migrated)": 0.2 * total,
        "PerDNN (full model migrated)": total,
    }
    print("per-query latency, 40 ResNet queries, server change at query 21\n")
    for name, migrated in scenarios.items():
        result = simulate_handoff(
            partitioner, config,
            num_queries=40, switch_after=20, premigrated_bytes=migrated,
        )
        print(f"{name} — migrated {migrated / 1e6:.0f} MB")
        print(f"  latency profile: |{sparkline(result.latencies)}|")
        print(f"  peak after hand-off: "
              f"{result.peak_latency_after_switch * 1000:6.0f} ms")
        frame_budget = 1.0 / 3.0  # a 3 fps assistance loop
        dropped = sum(1 for l in result.latencies if l > frame_budget)
        print(f"  queries over the {frame_budget * 1000:.0f} ms budget: "
              f"{dropped}/40\n")
    print("PerDNN's proactive migration removes the cold-start spike that "
          "IONN suffers at every server change.")


if __name__ == "__main__":
    main()
