#!/usr/bin/env python3
"""Mobility prediction walkthrough: from raw trajectories to edge servers.

Reproduces the paper's §3.D pipeline interactively on a Geolife-like
dataset: generate traces, allocate edge servers, train the three predictor
families, compare their edge-server prediction accuracy (Table III), and
inspect one prediction in detail.

Run:  python examples/mobility_analysis.py
"""

import numpy as np

from repro.geo import EdgeServerRegistry, HexGrid
from repro.mobility import (
    MarkovPredictor,
    SVRPredictor,
    evaluate_predictor,
    futile_prediction_ratio,
)
from repro.mobility.modes import ModeAwareSVRPredictor
from repro.trajectories import dataset_statistics, geolife_like


def main() -> None:
    rng = np.random.default_rng(11)
    dataset = geolife_like(rng, num_users=40, duration_steps=500).subsample(4)
    stats = dataset_statistics(dataset)
    print(
        f"dataset: {stats.num_users} users, t = {stats.interval_seconds:.0f} s, "
        f"avg speed {stats.average_speed_mps:.1f} m/s, "
        f"{stats.visited_cells} edge servers"
    )
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry.from_visited_points(grid, dataset.all_points())
    train, test = dataset.split_users(0.3, rng)
    futile = futile_prediction_ratio(test, grid)
    print(f"futile predictions (user stays in its cell): {futile:.0%}\n")

    print(f"{'predictor':<10s} {'top-1 %':>8s} {'top-2 %':>8s} {'MAE m':>7s}")
    predictors = [
        MarkovPredictor(grid),
        SVRPredictor(rng=rng),
        ModeAwareSVRPredictor(rng=rng),
    ]
    svr = predictors[1]
    for predictor in predictors:
        predictor.fit(train)
        accuracy = evaluate_predictor(predictor, test, registry)
        mae = f"{accuracy.mae_meters:7.1f}" if accuracy.mae_meters else "      -"
        print(
            f"{accuracy.predictor:<10s} {accuracy.top_k_accuracy[1]:>8.1f} "
            f"{accuracy.top_k_accuracy[2]:>8.1f} {mae}"
        )

    # One prediction, end to end: window -> point -> candidate servers.
    trajectory = test.trajectories[0]
    window = trajectory.points[:5]
    predicted = svr.predict_point(window)
    actual = trajectory.points[5]
    error = float(np.hypot(predicted[0] - actual[0], predicted[1] - actual[1]))
    candidates = registry.servers_within(predicted, 100.0)
    actual_server = registry.server_at((actual[0], actual[1]))
    print(f"\nexample prediction for user {trajectory.user_id}:")
    print(f"  last position: ({window[-1][0]:.0f}, {window[-1][1]:.0f}) m")
    print(f"  predicted next: ({predicted[0]:.0f}, {predicted[1]:.0f}) m "
          f"(error {error:.0f} m)")
    print(f"  servers within 100 m of prediction: {candidates}")
    print(f"  server actually visited: {actual_server} "
          f"({'covered' if actual_server in candidates else 'missed'} "
          f"by proactive migration)")


if __name__ == "__main__":
    main()
