#!/usr/bin/env python3
"""Collaborative inference with real tensors and real weight bytes.

Everything the other examples *simulate*, this one actually executes:

1. build MobileNet v1 with deterministic synthetic weights,
2. partition it between the client and an edge server,
3. serialize the server-side layers' weights into wire chunks (the bytes
   an upload or a proactive migration would move) and "ship" them,
4. run one query collaboratively — the client executes its prefix, sends
   the boundary tensor, the server executes the rest and returns the
   result — and verify the output is bit-identical to a local run.

Run:  python examples/collaborative_inference.py
"""

import numpy as np

from repro.core import PerDNNConfig, execute_collaboratively
from repro.dnn import NumpyExecutor, WeightStore, build_model
from repro.dnn.weights import deserialize_chunk, serialize_chunk
from repro.partitioning import DNNPartitioner
from repro.profiling import ExecutionProfile, odroid_xu4, titan_xp_server


def main() -> None:
    rng = np.random.default_rng(7)
    config = PerDNNConfig()
    graph = build_model("mobilenet")
    print(f"model: {graph.name}, {len(graph)} layers, {graph.size_mb:.1f} MB")

    profile = ExecutionProfile.build(graph, odroid_xu4(), titan_xp_server())
    partitioner = DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )
    result = partitioner.partition(1.0)
    plan, schedule = result.plan, result.schedule
    print(f"plan: {len(plan.server_indices)} layers on the server, "
          f"{schedule.total_bytes / 1e6:.1f} MB to ship")

    # --- ship the server-side weights as real bytes --------------------
    client_store = WeightStore(graph)  # the client owns the model
    shipped = {}
    wire_bytes = 0
    for chunk in schedule.chunks:
        blob = serialize_chunk(client_store, chunk.layer_names)
        wire_bytes += len(blob)
        shipped.update(deserialize_chunk(blob))  # server receives + decodes
    upload_seconds = wire_bytes * 8.0 / config.network.uplink_bps
    print(f"shipped {wire_bytes / 1e6:.1f} MB over the wire "
          f"(~{upload_seconds:.1f} s at 35 Mbps), "
          f"{len(shipped)} weighted layers decoded at the server")

    # The server builds its executor from the *received* weights.
    server_store = WeightStore(graph)
    server_store._cache.update(shipped)
    client = NumpyExecutor(graph, client_store)
    server = NumpyExecutor(graph, server_store)

    # --- run one query collaboratively ---------------------------------
    x = client.make_input(rng)
    local = client.run(x)
    collaborative = execute_collaboratively(graph, plan, x, client, server)
    identical = np.array_equal(local, collaborative.output)
    print(f"\ncollaborative output identical to local: {identical}")
    print(f"tensors moved: {collaborative.num_transfers} "
          f"({collaborative.uplink_bytes / 1e3:.0f} KB up, "
          f"{collaborative.downlink_bytes / 1e3:.1f} KB down)")
    print(f"predicted class: {int(collaborative.output.argmax())} "
          f"(p = {float(collaborative.output.max()):.4f})")
    assert identical


if __name__ == "__main__":
    main()
