#!/usr/bin/env python3
"""Fractional migration: how many bytes buy how much latency?

The efficiency-greedy upload order means the first megabytes of a model
carry most of the offloading benefit.  This example sweeps the migrated
byte budget for all three evaluation models and prints the latency a
freshly-visited server achieves with only that prefix cached (§4.A,
§4.B.5).

Run:  python examples/fractional_migration.py
"""

from repro.core import PerDNNConfig
from repro.dnn import build_model
from repro.partitioning import DNNPartitioner, select_fraction
from repro.profiling import ExecutionProfile, odroid_xu4, titan_xp_server

FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)


def main() -> None:
    config = PerDNNConfig()
    client, server = odroid_xu4(), titan_xp_server()
    for name in ("mobilenet", "inception", "resnet"):
        profile = ExecutionProfile.build(build_model(name), client, server)
        partitioner = DNNPartitioner(
            profile, config.network.uplink_bps, config.network.downlink_bps
        )
        schedule = partitioner.partition(1.0).schedule
        total = schedule.total_bytes
        print(f"\n{name}: {total / 1e6:.1f} MB server-side layers")
        print(f"  {'migrated':>9s} {'MB':>7s} {'query latency':>13s} "
              f"{'vs full migration':>17s}")
        for fraction in FRACTIONS:
            selection = select_fraction(schedule, fraction * total)
            print(
                f"  {fraction:>8.0%} {selection.nbytes / 1e6:>7.1f} "
                f"{selection.latency * 1000:>10.0f} ms "
                f"{'+' + format(selection.latency_penalty, '.0%'):>17s}"
            )
    print(
        "\nInception reaches near-full performance with a small fraction of "
        "its bytes (its 85 MB classifier is nearly free to skip); that is "
        "what lets crowded servers cut peak backhaul traffic by ~2/3 at "
        "1-2% performance cost (Fig 10)."
    )


if __name__ == "__main__":
    main()
