#!/usr/bin/env python3
"""Smart-city simulation: dozens of users offloading to pervasive servers.

A trimmed version of the paper's §4.B evaluation: KAIST-like campus traces
are replayed while every client offloads Inception queries to the edge
server of its 50 m hex cell.  Three systems are compared:

* IONN   — upload from scratch at every server change,
* PerDNN — SVR mobility prediction + proactive layer migration (r = 100 m),
* Optimal — an oracle with every model pre-deployed everywhere.

Run:  python examples/smart_city_simulation.py
"""

import numpy as np

from repro.core import MigrationPolicy, PerDNNConfig
from repro.dnn import build_model
from repro.partitioning import DNNPartitioner
from repro.profiling import ExecutionProfile, odroid_xu4, titan_xp_server
from repro.simulation import SimulationSettings, run_large_scale
from repro.trajectories import dataset_statistics, kaist_like


def main() -> None:
    rng = np.random.default_rng(42)
    config = PerDNNConfig()
    dataset = kaist_like(rng, num_users=20, duration_steps=240)
    stats = dataset_statistics(dataset)
    print(
        f"dataset: {stats.num_users} users on a "
        f"{stats.region_km[0]:.1f} x {stats.region_km[1]:.1f} km campus, "
        f"avg speed {stats.average_speed_mps:.2f} m/s, "
        f"{stats.visited_cells} edge servers"
    )

    profile = ExecutionProfile.build(
        build_model("inception"), odroid_xu4(), titan_xp_server()
    )
    partitioner = DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )

    print(f"\n{'system':<10s} {'hit ratio':>9s} {'cold-start queries':>19s} "
          f"{'peak backhaul':>14s}")
    for label, policy in (
        ("IONN", MigrationPolicy.NONE),
        ("PerDNN", MigrationPolicy.PERDNN),
        ("Optimal", MigrationPolicy.OPTIMAL),
    ):
        settings = SimulationSettings(
            policy=policy, migration_radius_m=100.0, max_steps=60, seed=7
        )
        result = run_large_scale(dataset, partitioner, settings)
        peak = (
            f"{result.uplink.peak_mbps:6.0f} Mbps"
            if result.uplink.peak_mbps
            else "      none"
        )
        print(
            f"{label:<10s} {result.hit_ratio:>9.2f} "
            f"{result.coldstart_queries:>19d} {peak:>14s}"
        )
    print("\nPerDNN approaches the oracle's throughput while paying only "
          "backhaul traffic near predicted user destinations.")


if __name__ == "__main__":
    main()
