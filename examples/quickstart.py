#!/usr/bin/env python3
"""Quickstart: partition a DNN between a mobile client and an edge server.

Builds the paper's Inception-21k model, profiles it on the ODROID-XU4
client and Titan-Xp edge server models, runs the IONN-style shortest-path
partitioner (Fig 5), and prints the resulting plan and efficiency-ordered
upload schedule.

Run:  python examples/quickstart.py
"""

from repro.core import PerDNNConfig
from repro.dnn import build_model
from repro.partitioning import DNNPartitioner, neurosurgeon_plan
from repro.profiling import ExecutionProfile, odroid_xu4, titan_xp_server


def main() -> None:
    config = PerDNNConfig()
    graph = build_model("inception")
    print(f"model: {graph.name} — {len(graph)} layers, {graph.size_mb:.1f} MB")

    # 1. Profile the model on both devices (the paper measured this once on
    #    real hardware; here an analytic latency model stands in).
    profile = ExecutionProfile.build(graph, odroid_xu4(), titan_xp_server())
    print(f"local execution (client only): {profile.total_client_time * 1000:.0f} ms")
    print(f"server compute (GPU only):     {profile.total_server_time * 1000:.1f} ms")

    # 2. Partition: minimize end-to-end query latency over execution +
    #    transfer times at the current network speed.
    partitioner = DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )
    result = partitioner.partition(server_slowdown=1.0)
    plan = result.plan
    print(f"\noptimal plan: {len(plan.server_indices)}/{len(graph)} layers on the "
          f"server, query latency {plan.latency * 1000:.0f} ms "
          f"({partitioner.local_latency() / plan.latency:.1f}x faster than local)")

    baseline = neurosurgeon_plan(result.costs)
    print(f"NeuroSurgeon single-split baseline: {baseline.latency * 1000:.0f} ms")

    # 3. The upload schedule: highest-efficiency (latency saved per byte)
    #    chunks first, so partial uploads already speed up queries.
    schedule = result.schedule
    print(f"\nupload schedule ({schedule.total_bytes / 1e6:.1f} MB in "
          f"{len(schedule.chunks)} chunks):")
    shown = 0
    for i, chunk in enumerate(schedule.chunks):
        if shown >= 8 and i < len(schedule.chunks) - 1:
            continue
        print(
            f"  [{i:2d}] {chunk.layer_names[0]:<28s} .. {chunk.layer_names[-1]:<22s}"
            f" {chunk.nbytes / 1e6:6.2f} MB -> query latency "
            f"{schedule.latencies[i + 1] * 1000:7.1f} ms"
        )
        shown += 1
    print("\nNote how the compute-dense convolution stem uploads first and the "
          "85 MB classifier goes last — the key to fractional migration.")


if __name__ == "__main__":
    main()
