"""Unit tests for fault schedules, windows, backoff, and profiles."""

import pytest

from repro.faults import (
    BUILTIN_PROFILES,
    Degradation,
    FaultSchedule,
    ServerCrash,
    Window,
    backoff_intervals,
    get_profile,
)


class TestWindow:
    def test_contains_half_open(self):
        window = Window(2, 5)
        assert not window.contains(1)
        assert window.contains(2)
        assert window.contains(4)
        assert not window.contains(5)

    @pytest.mark.parametrize("start,end", [(-1, 2), (3, 3), (5, 2)])
    def test_invalid_windows_rejected(self, start, end):
        with pytest.raises(ValueError):
            Window(start, end)


class TestBackoff:
    def test_exponential_then_capped(self):
        assert [backoff_intervals(n) for n in range(1, 7)] == [1, 2, 4, 8, 8, 8]

    def test_custom_cap(self):
        assert backoff_intervals(3, cap=3) == 3
        assert backoff_intervals(50, cap=3) == 3

    def test_huge_failure_count_does_not_overflow(self):
        assert backoff_intervals(10_000) == 8

    @pytest.mark.parametrize("failures,cap", [(0, 8), (-1, 8), (1, 0)])
    def test_invalid_arguments(self, failures, cap):
        with pytest.raises(ValueError):
            backoff_intervals(failures, cap)


class TestFaultSchedule:
    def test_server_down_tracks_windows(self):
        schedule = FaultSchedule(
            server_crashes=(
                ServerCrash(0, Window(2, 4)),
                ServerCrash(0, Window(7, 9)),
                ServerCrash(3, Window(0, 1)),
            )
        )
        assert schedule.server_down(0, 2)
        assert schedule.server_down(0, 3)
        assert not schedule.server_down(0, 4)
        assert schedule.server_down(0, 8)
        assert schedule.server_down(3, 0)
        assert not schedule.server_down(1, 2)

    def test_crash_starts_and_restarts(self):
        schedule = FaultSchedule(
            server_crashes=(
                ServerCrash(2, Window(3, 6)),
                ServerCrash(0, Window(3, 5)),
            )
        )
        assert schedule.crash_starts(3) == (0, 2)
        assert schedule.crash_starts(4) == ()
        assert schedule.restarts(5) == (0,)
        assert schedule.restarts(6) == (2,)

    def test_overlapping_crash_windows_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                server_crashes=(
                    ServerCrash(1, Window(0, 5)),
                    ServerCrash(1, Window(4, 8)),
                )
            )

    def test_backhaul_outage_and_degradation(self):
        schedule = FaultSchedule(
            backhaul_outages=(Window(5, 7),),
            backhaul_degradations=(
                Degradation(Window(0, 10), 0.8),
                Degradation(Window(2, 4), 0.25),
            ),
        )
        assert schedule.backhaul_available(4)
        assert not schedule.backhaul_available(5)
        assert schedule.backhaul_available(7)
        assert schedule.backhaul_factor(1) == 0.8
        assert schedule.backhaul_factor(3) == 0.25  # min of overlapping
        assert schedule.backhaul_factor(11) == 1.0

    def test_uplink_factor(self):
        schedule = FaultSchedule(
            uplink_degradations=(Degradation(Window(1, 3), 0.5),)
        )
        assert schedule.uplink_factor(0) == 1.0
        assert schedule.uplink_factor(2) == 0.5

    def test_drops_are_deterministic_and_order_independent(self):
        a = FaultSchedule(seed=7, upload_drop_rate=0.5, migration_drop_rate=0.5)
        b = FaultSchedule(seed=7, upload_drop_rate=0.5, migration_drop_rate=0.5)
        queries = [(c, t) for c in range(6) for t in range(10)]
        forward = [a.upload_dropped(c, t) for c, t in queries]
        backward = [b.upload_dropped(c, t) for c, t in reversed(queries)]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)
        assert a.migration_dropped(0, 1, 2, 3) == b.migration_dropped(0, 1, 2, 3)

    def test_different_seed_changes_drop_pattern(self):
        a = FaultSchedule(seed=1, upload_drop_rate=0.5)
        b = FaultSchedule(seed=2, upload_drop_rate=0.5)
        pattern_a = [a.upload_dropped(0, t) for t in range(64)]
        pattern_b = [b.upload_dropped(0, t) for t in range(64)]
        assert pattern_a != pattern_b

    def test_zero_rate_never_drops(self):
        schedule = FaultSchedule(seed=3)
        assert not any(schedule.upload_dropped(0, t) for t in range(50))
        assert not schedule.migration_dropped(0, 1, 2, 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(upload_drop_rate=-0.1),
            dict(upload_drop_rate=1.5),
            dict(migration_drop_rate=2.0),
        ],
    )
    def test_invalid_rates_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSchedule(**kwargs)

    def test_degradation_factor_bounds(self):
        with pytest.raises(ValueError):
            Degradation(Window(0, 1), 0.0)
        with pytest.raises(ValueError):
            Degradation(Window(0, 1), 1.5)

    def test_is_noop(self):
        assert FaultSchedule(seed=9).is_noop
        assert not FaultSchedule(
            server_crashes=(ServerCrash(0, Window(0, 1)),)
        ).is_noop
        assert not FaultSchedule(upload_drop_rate=0.1).is_noop


class TestProfiles:
    def test_builtin_registry(self):
        assert {"none", "churn", "flaky-backhaul", "blackout"} <= set(
            BUILTIN_PROFILES
        )
        for name, profile in BUILTIN_PROFILES.items():
            assert profile.name == name
            assert profile.description

    def test_get_profile_unknown_lists_names(self):
        with pytest.raises(ValueError, match="churn"):
            get_profile("meteor-strike")

    def test_none_profile_builds_noop(self):
        schedule = get_profile("none").build(range(10), seed=4, horizon=50)
        assert schedule.is_noop

    def test_churn_builds_deterministically(self):
        first = get_profile("churn").build(range(8), seed=11, horizon=40)
        second = get_profile("churn").build(range(8), seed=11, horizon=40)
        assert first.server_crashes == second.server_crashes
        assert first.server_crashes  # 8 servers x 40 intervals at 10%/step

    def test_churn_seed_changes_schedule(self):
        a = get_profile("churn").build(range(8), seed=1, horizon=40)
        b = get_profile("churn").build(range(8), seed=2, horizon=40)
        assert a.server_crashes != b.server_crashes

    def test_blackout_covers_every_server(self):
        schedule = get_profile("blackout").build(range(5), seed=0, horizon=30)
        window = schedule.server_crashes[0].window
        assert {c.server_id for c in schedule.server_crashes} == set(range(5))
        assert all(c.window == window for c in schedule.server_crashes)
        assert not schedule.backhaul_available(window.start)
        assert 0 < window.start < window.end <= 30

    def test_blackout_tiny_horizon(self):
        schedule = get_profile("blackout").build(range(2), seed=0, horizon=2)
        assert schedule.server_crashes  # still a valid (clamped) window

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            get_profile("churn").build(range(3), seed=0, horizon=0)
