"""End-to-end resilience behaviour under injected faults.

Each scenario drives ``run_large_scale`` with a hand-built
``FaultSchedule`` and checks the recovery contract: crashes wipe caches
(cold restart), outages divert clients to local execution without ever
dropping a query, failed uploads back off exponentially with a cap, and
dead migration targets are skipped.
"""

import numpy as np
import pytest

from repro.core.client import MobileClient
from repro.core.master import MigrationPolicy
from repro.faults import FaultSchedule, ServerCrash, Window
from repro.geo.geometry import BoundingBox
from repro.geo.hexgrid import HexCell, HexGrid
from repro.mobility.trajectory import Trajectory, TrajectoryDataset
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like


def stationary_dataset(num_users=1, steps=40):
    grid = HexGrid(50.0)
    base = grid.center(HexCell(0, 0))
    trajectories = tuple(
        Trajectory(user, 30.0, np.tile(base, (steps, 1)))
        for user in range(num_users)
    )
    return TrajectoryDataset(
        name="stationary",
        interval_seconds=30.0,
        bbox=BoundingBox(-500, -500, 500, 500),
        trajectories=trajectories,
    )


def run(dataset, partitioner, schedule, **settings_kwargs):
    defaults = dict(
        policy=MigrationPolicy.NONE,
        use_contention_estimator=False,
        migration_radius_m=100.0,
        max_steps=12,
        seed=4,
        faults=schedule,
    )
    defaults.update(settings_kwargs)
    settings = SimulationSettings(**defaults)
    return run_large_scale(dataset, partitioner, settings)


class TestCrashColdStart:
    def test_crash_wipes_cache_forcing_second_cold_start(self, tiny_partitioner):
        dataset = stationary_dataset()
        schedule = FaultSchedule(
            server_crashes=(ServerCrash(0, Window(5, 8)),)
        )
        result = run(dataset, tiny_partitioner, schedule)
        baseline = run(dataset, tiny_partitioner, None)
        # Without the crash the stationary client cold-starts exactly once
        # and every later interval is a TTL-protected hit.
        assert baseline.misses == 1
        # The crash at step 5 wipes server 0's cache; on re-association at
        # step 8 the client must cold-start again.
        assert result.misses == 2
        assert result.local_fallback_queries > 0
        assert result.availability < 1.0

    def test_crash_emits_crash_and_restart_events(self, tiny_partitioner):
        dataset = stationary_dataset()
        schedule = FaultSchedule(
            server_crashes=(ServerCrash(0, Window(5, 8)),)
        )
        result = run(dataset, tiny_partitioner, schedule)
        trace = result.telemetry.trace
        faults = [e.fault for e in trace.of_kind("fault")]
        assert faults.count("server_crash") == 1
        assert faults.count("server_restart") == 1
        registry = result.telemetry.registry
        assert registry.value("cache.crash_losses") > 0


class TestLocalFallback:
    def test_outage_diverts_to_local_and_drops_nothing(self, tiny_partitioner):
        dataset = stationary_dataset(num_users=3, steps=30)
        schedule = FaultSchedule(
            server_crashes=tuple(
                ServerCrash(sid, Window(4, 10)) for sid in range(3)
            )
        )
        result = run(dataset, tiny_partitioner, schedule, max_steps=15)
        assert result.local_fallback_queries > 0
        registry = result.telemetry.registry
        client_intervals = registry.value("resilience.client_intervals")
        local_intervals = registry.value("resilience.local_intervals")
        assert 0 < local_intervals < client_intervals
        assert result.availability == pytest.approx(
            1.0 - local_intervals / client_intervals
        )
        # No query dropped: every client interval produced a query window
        # (remote or local) and every window completed its queries.
        windows = list(result.telemetry.trace.of_kind("query_window"))
        assert len(windows) == int(client_intervals)
        assert sum(w.queries for w in windows) == result.total_queries
        assert result.total_queries > 0

    def test_local_windows_tagged_with_null_server(self, tiny_partitioner):
        dataset = stationary_dataset()
        schedule = FaultSchedule(
            server_crashes=(ServerCrash(0, Window(5, 8)),)
        )
        result = run(dataset, tiny_partitioner, schedule)
        local = [
            e for e in result.telemetry.trace.of_kind("query_window")
            if e.server_id is None
        ]
        assert len(local) == 3  # steps 5, 6, 7
        assert all(e.end_bytes == 0.0 and not e.coldstart for e in local)

    def test_availability_one_without_faults(self, tiny_partitioner):
        dataset = stationary_dataset()
        result = run(dataset, tiny_partitioner, None)
        assert result.availability == 1.0
        assert result.local_fallback_queries == 0
        assert result.upload_retries == 0


class TestUploadBackoff:
    def test_total_drop_rate_backs_off_with_cap(self, tiny_partitioner):
        dataset = stationary_dataset()
        schedule = FaultSchedule(seed=4, upload_drop_rate=1.0)
        result = run(dataset, tiny_partitioner, schedule, max_steps=16)
        trace = result.telemetry.trace
        drops = [
            e.interval for e in trace.of_kind("fault")
            if e.fault == "upload_drop"
        ]
        # Every attempt fails, so attempts land at 0, 1, 3, 7, 15 — gaps of
        # 1, 2, 4, 8 intervals, the last capped at DEFAULT_BACKOFF_CAP.
        assert drops == [0, 1, 3, 7, 15]
        assert result.upload_retries == 4
        # The upload never lands, so the client cold-starts but never
        # completes the prefix: zero hits, zero uplink bytes.
        assert result.telemetry.registry.value("resilience.retries") == 4

    def test_successful_upload_resets_backoff(self):
        grid = HexGrid(50.0)
        points = np.tile(grid.center(HexCell(0, 0)), (10, 1))
        client = MobileClient(0, Trajectory(0, 30.0, points), history=4)
        assert client.upload_allowed(0)
        assert client.record_upload_drop(0) == 1
        assert client.record_upload_drop(1) == 2
        assert not client.upload_allowed(2)
        assert client.upload_allowed(3)
        client.record_upload_success()
        # A success resets the ladder: the next drop starts at gap 1 again.
        assert client.upload_failures == 0
        assert client.record_upload_drop(7) == 1
        assert client.upload_allowed(8)

    def test_partial_drop_rate_still_completes_upload(self, tiny_partitioner):
        dataset = stationary_dataset()
        schedule = FaultSchedule(seed=4, upload_drop_rate=0.5)
        result = run(dataset, tiny_partitioner, schedule, max_steps=20)
        registry = result.telemetry.registry
        drops = registry.value("fault.injected", {"kind": "upload_drop"})
        assert drops > 0
        # Some attempts succeed, so upload bytes do land on the server.
        windows = list(result.telemetry.trace.of_kind("query_window"))
        assert max(w.end_bytes for w in windows) > 0


class TestDeadTargetSkips:
    @pytest.fixture(scope="class")
    def dataset(self):
        return kaist_like(
            np.random.default_rng(33), num_users=8, duration_steps=140
        )

    def test_migration_skips_down_servers(self, dataset, tiny_partitioner):
        baseline = run(
            dataset, tiny_partitioner, None,
            policy=MigrationPolicy.PERDNN, use_contention_estimator=True,
            max_steps=25,
        )
        assert baseline.num_servers > 1
        schedule = FaultSchedule(
            server_crashes=tuple(
                ServerCrash(sid, Window(1, 25))
                for sid in range(1, baseline.num_servers)
            )
        )
        result = run(
            dataset, tiny_partitioner, schedule,
            policy=MigrationPolicy.PERDNN, use_contention_estimator=True,
            max_steps=25,
        )
        registry = result.telemetry.registry
        assert registry.value("resilience.dead_target_skips") > 0
        # No migration event may target a server inside its down window.
        for event in result.telemetry.trace.of_kind("migration"):
            assert not schedule.server_down(event.target, event.interval)
