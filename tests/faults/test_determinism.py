"""Same-seed fault runs must be byte-identical, profile by profile."""

import dataclasses

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.faults import BUILTIN_PROFILES, get_profile
from repro.simulation.large_scale import (
    LargeScaleResult,
    SimulationSettings,
    run_large_scale,
)
from repro.trajectories.synthetic import kaist_like

COMPARED_FIELDS = [
    field.name
    for field in dataclasses.fields(LargeScaleResult)
    if field.name != "telemetry"
]


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(33), num_users=6, duration_steps=90)


def one_run(dataset, partitioner, faults, seed=5):
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN,
        migration_radius_m=100.0,
        max_steps=20,
        seed=seed,
        faults=faults,
    )
    return run_large_scale(dataset, partitioner, settings)


@pytest.mark.parametrize("profile_name", sorted(BUILTIN_PROFILES))
def test_same_seed_profile_runs_are_identical(
    dataset, tiny_partitioner, profile_name
):
    profile = get_profile(profile_name)
    first = one_run(dataset, tiny_partitioner, profile)
    second = one_run(dataset, tiny_partitioner, profile)
    assert first.telemetry.dumps() == second.telemetry.dumps()
    for name in COMPARED_FIELDS:
        assert getattr(first, name) == getattr(second, name), name


def test_none_profile_matches_disabled_faults(dataset, tiny_partitioner):
    """``--faults none`` is a strict no-op: identical bytes to no faults."""
    disabled = one_run(dataset, tiny_partitioner, None)
    none_profile = one_run(dataset, tiny_partitioner, get_profile("none"))
    assert disabled.telemetry.dumps() == none_profile.telemetry.dumps()
    for name in COMPARED_FIELDS:
        assert getattr(disabled, name) == getattr(none_profile, name), name


def test_seed_changes_fault_outcome(dataset, tiny_partitioner):
    a = one_run(dataset, tiny_partitioner, get_profile("churn"), seed=5)
    b = one_run(dataset, tiny_partitioner, get_profile("churn"), seed=6)
    assert a.telemetry.dumps() != b.telemetry.dumps()


def test_churn_degrades_availability(dataset, tiny_partitioner):
    result = one_run(dataset, tiny_partitioner, get_profile("churn"))
    assert 0.0 < result.availability < 1.0
    assert result.local_fallback_queries > 0
    registry = result.telemetry.registry
    assert registry.value("fault.injected", {"kind": "server_crash"}) > 0
