"""Property-based invariants: fault counters always match the event trace.

Every injected fault goes through :func:`repro.faults.record_fault`,
which increments the ``fault.injected{kind=...}`` counter and appends a
``FaultEvent`` atomically.  Under any randomly drawn fault profile and
seed, the per-kind counter totals must therefore equal the per-kind
tallies of the event trace — and the no-drop invariant must hold.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.master import MigrationPolicy
from repro.faults import BUILTIN_PROFILES, FaultSchedule, ServerCrash, Window, get_profile
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like

_DATASET = kaist_like(np.random.default_rng(33), num_users=4, duration_steps=60)


def _fault_tallies(trace):
    tallies = {}
    for event in trace.of_kind("fault"):
        tallies[event.fault] = tallies.get(event.fault, 0) + 1
    return tallies


def _run(tiny_partitioner, faults, seed):
    settings_ = SimulationSettings(
        policy=MigrationPolicy.PERDNN,
        migration_radius_m=100.0,
        max_steps=12,
        seed=seed,
        faults=faults,
    )
    return run_large_scale(_DATASET, tiny_partitioner, settings_)


@st.composite
def fault_schedules(draw):
    crashes = []
    for server_id in draw(
        st.lists(st.integers(0, 5), unique=True, max_size=3)
    ):
        start = draw(st.integers(0, 8))
        end = draw(st.integers(start + 1, 12))
        crashes.append(ServerCrash(server_id, Window(start, end)))
    return FaultSchedule(
        seed=draw(st.integers(0, 2**16)),
        server_crashes=tuple(crashes),
        upload_drop_rate=draw(st.sampled_from([0.0, 0.3, 1.0])),
        migration_drop_rate=draw(st.sampled_from([0.0, 0.5])),
    )


@settings(max_examples=8, deadline=None)
@given(schedule=fault_schedules(), seed=st.integers(0, 100))
def test_counters_match_trace_tallies(tiny_partitioner, schedule, seed):
    result = _run(tiny_partitioner, schedule, seed)
    registry = result.telemetry.registry
    tallies = _fault_tallies(result.telemetry.trace)
    counter_kinds = {
        labels.get("kind"): value
        for labels, value in registry.series("fault.injected")
    }
    assert counter_kinds == {k: float(v) for k, v in tallies.items()}


@settings(max_examples=6, deadline=None)
@given(
    profile_name=st.sampled_from(sorted(BUILTIN_PROFILES)),
    seed=st.integers(0, 100),
)
def test_no_query_dropped_under_any_profile(
    tiny_partitioner, profile_name, seed
):
    result = _run(tiny_partitioner, get_profile(profile_name), seed)
    trace = result.telemetry.trace
    window_queries = sum(e.queries for e in trace.of_kind("query_window"))
    assert window_queries == result.total_queries
    assert result.total_queries > 0
    assert 0.0 <= result.availability <= 1.0
    registry = result.telemetry.registry
    client_intervals = registry.value("resilience.client_intervals")
    if client_intervals:
        # Every client interval produced exactly one window, local or remote.
        assert len(list(trace.of_kind("query_window"))) == int(client_intervals)
