"""Unit tests for layer primitives: shapes, weights, FLOPs."""

import pytest

from repro.dnn.layer import BYTES_PER_SCALAR, Layer, LayerKind, TensorShape


class TestTensorShape:
    def test_elements_and_bytes(self):
        shape = TensorShape(3, 224, 224)
        assert shape.elements == 3 * 224 * 224
        assert shape.nbytes == shape.elements * BYTES_PER_SCALAR

    def test_fc_shape_defaults_to_1x1(self):
        shape = TensorShape(1000)
        assert (shape.height, shape.width) == (1, 1)
        assert shape.elements == 1000

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_non_positive_dimensions(self, bad):
        with pytest.raises(ValueError):
            TensorShape(*bad)


class TestConvLayer:
    def make_conv(self, **kwargs):
        defaults = dict(out_channels=8, kernel=3, stride=1, padding=1)
        defaults.update(kwargs)
        return Layer("conv", LayerKind.CONV, **defaults)

    def test_same_padding_preserves_spatial_size(self):
        conv = self.make_conv()
        out = conv.output_shape([TensorShape(3, 16, 16)])
        assert out == TensorShape(8, 16, 16)

    def test_stride_two_halves_spatial_size(self):
        conv = self.make_conv(stride=2)
        out = conv.output_shape([TensorShape(3, 16, 16)])
        assert out == TensorShape(8, 8, 8)

    def test_weight_count_includes_bias(self):
        conv = self.make_conv()
        assert conv.weight_count([TensorShape(3, 16, 16)]) == 3 * 3 * 3 * 8 + 8

    def test_grouped_conv_divides_weights(self):
        dense = self.make_conv(out_channels=8)
        grouped = self.make_conv(out_channels=8, groups=8)
        shape = [TensorShape(8, 16, 16)]
        assert grouped.weight_count(shape) < dense.weight_count(shape)
        assert grouped.weight_count(shape) == 3 * 3 * 1 * 8 + 8

    def test_grouped_conv_rejects_indivisible_channels(self):
        conv = self.make_conv(groups=3)
        with pytest.raises(ValueError):
            conv.output_shape([TensorShape(8, 16, 16)])

    def test_flops_formula(self):
        conv = self.make_conv()
        shape = [TensorShape(3, 16, 16)]
        # 2 * k*k*in_c * out elements
        assert conv.flops(shape) == 2 * 9 * 3 * 8 * 16 * 16

    def test_output_collapse_raises(self):
        conv = self.make_conv(kernel=5, padding=0)
        with pytest.raises(ValueError):
            conv.output_shape([TensorShape(3, 3, 3)])


class TestFcLayer:
    def test_shape_and_weights(self):
        fc = Layer("fc", LayerKind.FC, out_features=10)
        shape = [TensorShape(64)]
        assert fc.output_shape(shape) == TensorShape(10)
        assert fc.weight_count(shape) == 64 * 10 + 10
        assert fc.flops(shape) == 2 * 64 * 10

    def test_flattens_spatial_input_implicitly(self):
        fc = Layer("fc", LayerKind.FC, out_features=10)
        shape = [TensorShape(4, 2, 2)]
        assert fc.weight_count(shape) == 16 * 10 + 10


class TestPoolAndElementwise:
    def test_max_pool_ceil_mode(self):
        pool = Layer("pool", LayerKind.POOL_MAX, kernel=3, stride=2, padding=1)
        out = pool.output_shape([TensorShape(8, 15, 15)])
        assert out == TensorShape(8, 8, 8)

    def test_global_pool_collapses_spatial(self):
        pool = Layer("gap", LayerKind.GLOBAL_POOL_AVG)
        assert pool.output_shape([TensorShape(32, 7, 7)]) == TensorShape(32)

    def test_add_requires_matching_shapes(self):
        add = Layer("add", LayerKind.ADD)
        a, b = TensorShape(8, 4, 4), TensorShape(8, 4, 5)
        with pytest.raises(ValueError):
            add.output_shape([a, b])
        assert add.output_shape([a, a]) == a

    def test_concat_sums_channels(self):
        concat = Layer("cat", LayerKind.CONCAT)
        out = concat.output_shape([TensorShape(8, 4, 4), TensorShape(16, 4, 4)])
        assert out == TensorShape(24, 4, 4)

    def test_concat_rejects_mismatched_spatial(self):
        concat = Layer("cat", LayerKind.CONCAT)
        with pytest.raises(ValueError):
            concat.output_shape([TensorShape(8, 4, 4), TensorShape(8, 5, 4)])

    def test_relu_preserves_shape_and_has_no_weights(self):
        relu = Layer("relu", LayerKind.RELU)
        shape = TensorShape(8, 4, 4)
        assert relu.output_shape([shape]) == shape
        assert relu.weight_count([shape]) == 0

    def test_batch_norm_and_scale_weights(self):
        shape = [TensorShape(32, 8, 8)]
        bn = Layer("bn", LayerKind.BATCH_NORM)
        scale = Layer("sc", LayerKind.SCALE)
        assert bn.weight_count(shape) == 64
        assert scale.weight_count(shape) == 64


class TestValidation:
    def test_input_layer_requires_shape(self):
        with pytest.raises(ValueError):
            Layer("in", LayerKind.INPUT).validate()

    def test_conv_requires_positive_hyperparameters(self):
        with pytest.raises(ValueError):
            Layer("c", LayerKind.CONV, out_channels=0, kernel=3).validate()

    def test_fc_requires_out_features(self):
        with pytest.raises(ValueError):
            Layer("f", LayerKind.FC).validate()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Layer("", LayerKind.RELU).validate()

    def test_weighted_kind_classification(self):
        assert LayerKind.CONV.has_weights
        assert LayerKind.FC.has_weights
        assert not LayerKind.RELU.has_weights
        assert LayerKind.CONV.is_compute_intensive
        assert not LayerKind.POOL_MAX.is_compute_intensive
