"""Model-zoo tests: the reconstructions must land near Table I."""

import pytest

from repro.dnn.layer import LayerKind
from repro.dnn.models import (
    build_model,
    inception_21k,
    mobilenet_v1,
    resnet50,
    tiny_branchy_dnn,
    tiny_linear_dnn,
)

# Table I of the paper: name -> (# layers, size MB).
TABLE_I = {
    "mobilenet": (110, 16),
    "inception": (312, 128),
    "resnet": (245, 98),
}


@pytest.mark.parametrize("name", sorted(TABLE_I))
class TestTableI:
    def test_layer_count_close_to_paper(self, name):
        paper_layers, _ = TABLE_I[name]
        graph = build_model(name)
        assert abs(len(graph) - paper_layers) / paper_layers < 0.10

    def test_size_close_to_paper(self, name):
        _, paper_mb = TABLE_I[name]
        graph = build_model(name)
        assert abs(graph.size_mb - paper_mb) / paper_mb < 0.10

    def test_single_input_single_output(self, name):
        graph = build_model(name)
        assert graph.layer(graph.input_name).kind is LayerKind.INPUT
        assert graph.layer(graph.output_name).kind is LayerKind.SOFTMAX


class TestMobileNet:
    def test_uses_depthwise_convolutions(self):
        graph = mobilenet_v1()
        grouped = [
            name for name in graph.topo_order if graph.layer(name).groups > 1
        ]
        assert len(grouped) == 13  # one depthwise conv per block

    def test_classifier_width(self):
        graph = mobilenet_v1(num_classes=1000)
        assert graph.info("fc").output_shape.channels == 1000

    def test_flops_near_published_value(self):
        # MobileNet v1 is ~1.1 GFLOPs (569 MMACs x 2).
        assert 0.9e9 < mobilenet_v1().total_flops < 1.4e9


class TestInception:
    def test_classifier_holds_most_weights(self):
        graph = inception_21k()
        fc_bytes = graph.info("fc1").weight_bytes
        # The 21k-way classifier dominates the model (the property behind
        # fractional migration working so well on Inception).
        assert fc_bytes / graph.total_weight_bytes > 0.6

    def test_has_concat_modules(self):
        graph = inception_21k()
        concats = [
            name for name in graph.topo_order
            if graph.info(name).kind is LayerKind.CONCAT
        ]
        assert len(concats) == 10  # 3a-3c, 4a-4e, 5a-5b

    def test_compute_concentrated_in_front(self):
        graph = inception_21k()
        infos = graph.infos()
        half = len(infos) // 2
        front = sum(i.flops for i in infos[:half])
        back = sum(i.flops for i in infos[half:])
        assert front > back


class TestResNet:
    def test_residual_adds_present(self):
        graph = resnet50()
        adds = [
            name for name in graph.topo_order
            if graph.info(name).kind is LayerKind.ADD
        ]
        assert len(adds) == 16  # 3 + 4 + 6 + 3 bottleneck blocks

    def test_every_add_has_two_inputs(self):
        graph = resnet50()
        for name in graph.topo_order:
            if graph.info(name).kind is LayerKind.ADD:
                assert len(graph.predecessors(name)) == 2

    def test_final_feature_width(self):
        graph = resnet50()
        assert graph.info("pool5").output_shape.channels == 2048


class TestTinyModels:
    def test_tiny_linear_depth_parameter(self):
        assert len(tiny_linear_dnn(depth=2)) < len(tiny_linear_dnn(depth=6))

    def test_tiny_linear_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            tiny_linear_dnn(depth=0)

    def test_tiny_branchy_is_a_dag(self):
        graph = tiny_branchy_dnn()
        assert len(graph.predecessors("join")) == 2

    def test_unknown_model_name(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("transformer-xl")

    def test_build_model_is_case_insensitive(self):
        assert build_model("MobileNet").name == "mobilenet_v1"
