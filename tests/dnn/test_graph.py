"""Unit tests for the DNN DAG container."""

import pytest

from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape


def chain_graph() -> DNNGraph:
    g = DNNGraph("chain")
    g.add(Layer("in", LayerKind.INPUT, input_shape=TensorShape(3, 8, 8)))
    g.add(Layer("conv", LayerKind.CONV, out_channels=4, kernel=3, padding=1), ["in"])
    g.add(Layer("relu", LayerKind.RELU), ["conv"])
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self):
        g = chain_graph()
        with pytest.raises(ValueError, match="duplicate"):
            g.add(Layer("conv", LayerKind.RELU), ["relu"])

    def test_unknown_predecessor_rejected(self):
        g = chain_graph()
        with pytest.raises(ValueError, match="unknown predecessor"):
            g.add(Layer("x", LayerKind.RELU), ["nope"])

    def test_non_input_needs_predecessors(self):
        g = DNNGraph("g")
        g.add(Layer("in", LayerKind.INPUT, input_shape=TensorShape(1)))
        with pytest.raises(ValueError, match="needs predecessors"):
            g.add(Layer("r", LayerKind.RELU))

    def test_input_takes_no_predecessors(self):
        g = chain_graph()
        with pytest.raises(ValueError, match="no predecessors"):
            g.add(Layer("in2", LayerKind.INPUT, input_shape=TensorShape(1)), ["in"])

    def test_add_after_freeze_rejected(self):
        g = chain_graph().freeze()
        with pytest.raises(RuntimeError):
            g.add(Layer("x", LayerKind.RELU), ["relu"])


class TestFreeze:
    def test_requires_single_input(self):
        g = DNNGraph("two-inputs")
        g.add(Layer("a", LayerKind.INPUT, input_shape=TensorShape(1)))
        g.add(Layer("b", LayerKind.INPUT, input_shape=TensorShape(1)))
        g.add(Layer("cat", LayerKind.CONCAT), ["a", "b"])
        with pytest.raises(ValueError, match="exactly 1 input"):
            g.freeze()

    def test_requires_single_output(self):
        g = chain_graph()
        g.add(Layer("branch", LayerKind.RELU), ["conv"])
        with pytest.raises(ValueError, match="exactly 1 output"):
            g.freeze()

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            DNNGraph("empty").freeze()

    def test_freeze_is_idempotent(self):
        g = chain_graph()
        assert g.freeze() is g.freeze()

    def test_accessors_require_freeze(self):
        g = chain_graph()
        with pytest.raises(RuntimeError):
            _ = g.topo_order
        with pytest.raises(RuntimeError):
            g.info("conv")


class TestFrozenGraph:
    def test_topological_order_respects_edges(self):
        g = chain_graph().freeze()
        order = g.topo_order
        assert order.index("in") < order.index("conv") < order.index("relu")
        assert g.input_name == "in"
        assert g.output_name == "relu"

    def test_branchy_topological_order(self, branchy_graph):
        order = branchy_graph.topo_order
        for name in order:
            for pred in branchy_graph.predecessors(name):
                assert order.index(pred) < order.index(name)

    def test_layer_info_shapes(self):
        g = chain_graph().freeze()
        info = g.info("conv")
        assert info.output_shape == TensorShape(4, 8, 8)
        assert info.input_shapes == (TensorShape(3, 8, 8),)
        assert info.input_bytes == 3 * 8 * 8 * 4
        assert info.output_bytes == 4 * 8 * 8 * 4

    def test_aggregates_are_sums(self):
        g = chain_graph().freeze()
        infos = g.infos()
        assert g.total_weight_bytes == sum(i.weight_bytes for i in infos)
        assert g.total_flops == sum(i.flops for i in infos)
        assert g.size_mb == pytest.approx(g.total_weight_bytes / 2**20)

    def test_contains_len_iter(self):
        g = chain_graph().freeze()
        assert "conv" in g and "nope" not in g
        assert len(g) == 3
        assert list(g) == g.topo_order

    def test_summary_mentions_every_layer(self):
        g = chain_graph().freeze()
        text = g.summary()
        for name in g.topo_order:
            assert name in text
