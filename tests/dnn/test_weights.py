"""Tests for deterministic weights and wire serialization."""

import numpy as np
import pytest

from repro.dnn.layer import LayerKind
from repro.dnn.weights import (
    WeightStore,
    deserialize_arrays,
    deserialize_chunk,
    serialize_arrays,
    serialize_chunk,
    serialize_layer,
)


@pytest.fixture(scope="module")
def store(tiny_graph):
    return WeightStore(tiny_graph)


class TestWeightStore:
    def test_shapes_match_layer_definitions(self, store, tiny_graph):
        conv = store.arrays("conv0")
        layer = tiny_graph.layer("conv0")
        in_channels = tiny_graph.info("conv0").input_shapes[0].channels
        assert conv[0].shape == (
            layer.out_channels, in_channels, layer.kernel, layer.kernel,
        )
        assert conv[1].shape == (layer.out_channels,)

    def test_payload_matches_weight_bytes(self, store, tiny_graph):
        for info in tiny_graph.infos():
            assert store.payload_bytes(info.name) == info.weight_bytes

    def test_weightless_layers_have_no_arrays(self, store, tiny_graph):
        for info in tiny_graph.infos():
            if info.kind in (LayerKind.RELU, LayerKind.SOFTMAX,
                             LayerKind.GLOBAL_POOL_AVG, LayerKind.INPUT):
                assert store.arrays(info.name) == ()

    def test_deterministic_across_stores(self, tiny_graph):
        a = WeightStore(tiny_graph).arrays("conv0")
        b = WeightStore(tiny_graph).arrays("conv0")
        for left, right in zip(a, b):
            assert np.array_equal(left, right)

    def test_different_layers_differ(self, tiny_graph):
        store = WeightStore(tiny_graph)
        assert not np.array_equal(
            store.arrays("conv0")[0], store.arrays("conv1")[0]
        )

    def test_caching_returns_same_objects(self, store):
        assert store.arrays("conv0") is store.arrays("conv0")

    def test_float32(self, store, tiny_graph):
        for name in tiny_graph.topo_order:
            for array in store.arrays(name):
                assert array.dtype == np.float32

    def test_requires_frozen_graph(self):
        from repro.dnn.graph import DNNGraph
        from repro.dnn.layer import Layer, TensorShape

        g = DNNGraph("g")
        g.add(Layer("in", LayerKind.INPUT, input_shape=TensorShape(1)))
        with pytest.raises(ValueError):
            WeightStore(g)


class TestSerialization:
    def test_roundtrip(self, rng):
        arrays = (
            rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
            rng.normal(size=(4,)).astype(np.float32),
        )
        back = deserialize_arrays(serialize_arrays(arrays))
        for left, right in zip(arrays, back):
            assert np.array_equal(left, right)

    def test_empty_tuple_roundtrip(self):
        assert deserialize_arrays(serialize_arrays(())) == ()

    def test_rejects_non_float32(self):
        with pytest.raises(ValueError):
            serialize_arrays((np.zeros(3, dtype=np.float64),))

    def test_corruption_detected(self, rng):
        blob = bytearray(
            serialize_arrays((rng.normal(size=8).astype(np.float32),))
        )
        blob[12] ^= 0xFF  # flip a payload byte
        with pytest.raises(ValueError, match="checksum"):
            deserialize_arrays(bytes(blob))

    def test_truncation_detected(self, rng):
        blob = serialize_arrays((rng.normal(size=8).astype(np.float32),))
        with pytest.raises(ValueError):
            deserialize_arrays(blob[:10])

    def test_bad_magic_detected(self, rng):
        blob = bytearray(
            serialize_arrays((rng.normal(size=8).astype(np.float32),))
        )
        blob[0] = ord("X")
        with pytest.raises(ValueError, match="magic"):
            deserialize_arrays(bytes(blob))

    def test_layer_blob_carries_payload(self, store, tiny_graph):
        blob = serialize_layer(store, "conv0")
        # Framed size = payload + bounded header overhead.
        payload = store.payload_bytes("conv0")
        assert payload < len(blob) < payload + 256

    def test_chunk_roundtrip(self, store, tiny_graph):
        names = tuple(tiny_graph.topo_order[1:4])
        back = deserialize_chunk(serialize_chunk(store, names))
        assert set(back) == set(names)
        for name in names:
            for left, right in zip(store.arrays(name), back[name]):
                assert np.array_equal(left, right)

    def test_chunk_trailing_bytes_detected(self, store, tiny_graph):
        blob = serialize_chunk(store, (tiny_graph.topo_order[1],))
        with pytest.raises(ValueError, match="trailing"):
            deserialize_chunk(blob + b"xx")
