"""Tests for the extended model zoo (AlexNet, VGG-16, SqueezeNet) and LRN."""

import numpy as np
import pytest

from repro.dnn.execution import NumpyExecutor, _lrn
from repro.dnn.layer import LayerKind
from repro.dnn.models import build_model
from repro.dnn.zoo_extra import alexnet, squeezenet, vgg16

# Published parameter counts -> float32 MB (decimal-ish tolerance).
PUBLISHED_MB = {"alexnet": 233, "vgg16": 528, "squeezenet": 4.8}


@pytest.mark.parametrize("name", sorted(PUBLISHED_MB))
class TestPublishedSizes:
    def test_size_matches_published(self, name):
        graph = build_model(name)
        assert abs(graph.size_mb - PUBLISHED_MB[name]) / PUBLISHED_MB[name] < 0.05

    def test_single_input_output(self, name):
        graph = build_model(name)
        assert graph.layer(graph.input_name).kind is LayerKind.INPUT
        assert graph.layer(graph.output_name).kind is LayerKind.SOFTMAX


class TestAlexNet:
    def test_fc_tail_dominates(self):
        graph = alexnet()
        fc_bytes = sum(
            graph.info(n).weight_bytes
            for n in ("fc6", "fc7", "fc8")
        )
        assert fc_bytes / graph.total_weight_bytes > 0.9

    def test_uses_lrn_and_grouped_convs(self):
        graph = alexnet()
        kinds = {graph.info(n).kind for n in graph.topo_order}
        assert LayerKind.LRN in kinds
        grouped = [n for n in graph.topo_order if graph.layer(n).groups > 1]
        assert len(grouped) == 3  # conv2, conv4, conv5

    def test_fc6_input_is_256x6x6(self):
        graph = alexnet()
        assert graph.info("fc6").input_shapes[0].elements == 256 * 6 * 6


class TestVgg16:
    def test_thirteen_convs(self):
        graph = vgg16()
        convs = [
            n for n in graph.topo_order
            if graph.info(n).kind is LayerKind.CONV
        ]
        assert len(convs) == 13

    def test_flops_near_published(self):
        # VGG-16 is ~30.9 GFLOPs (15.5 GMACs).
        assert 28e9 < vgg16().total_flops < 34e9


class TestSqueezeNet:
    def test_fire_modules_concat(self):
        graph = squeezenet()
        concats = [
            n for n in graph.topo_order
            if graph.info(n).kind is LayerKind.CONCAT
        ]
        assert len(concats) == 8

    def test_runs_end_to_end(self, rng):
        graph = squeezenet()
        executor = NumpyExecutor(graph)
        out = executor.run(executor.make_input(rng))
        assert out.sum() == pytest.approx(1.0, abs=1e-4)
        assert out.shape == (1000, 1, 1)


class TestLrn:
    def test_preserves_shape_and_sign(self, rng):
        x = rng.normal(size=(8, 4, 4)).astype(np.float32)
        out = _lrn(x)
        assert out.shape == x.shape
        assert np.all(np.sign(out) == np.sign(x))

    def test_shrinks_magnitudes(self, rng):
        x = (rng.normal(size=(8, 4, 4)) * 100).astype(np.float32)
        out = _lrn(x)
        assert np.all(np.abs(out) <= np.abs(x) + 1e-6)

    def test_zero_input_is_zero(self):
        assert np.array_equal(_lrn(np.zeros((4, 2, 2), np.float32)),
                              np.zeros((4, 2, 2), np.float32))

    def test_matches_naive_window_sum(self, rng):
        x = rng.normal(size=(7, 2, 2)).astype(np.float32)
        out = _lrn(x, local_size=5, alpha=1e-4, beta=0.75)
        channels = x.shape[0]
        for c in range(channels):
            lo, hi = max(0, c - 2), min(channels, c + 3)
            window = (x[lo:hi] ** 2).sum(axis=0)
            expected = x[c] / (1.0 + (1e-4 / 5) * window) ** 0.75
            assert np.allclose(out[c], expected, atol=1e-6)

    def test_lrn_flops_accounted(self):
        graph = alexnet()
        assert graph.info("norm1").flops > 0
