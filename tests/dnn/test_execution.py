"""Tests for the numpy forward-inference engine."""

import numpy as np
import pytest

from repro.dnn.execution import NumpyExecutor, _im2col
from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape
from repro.dnn.models import tiny_branchy_dnn
from repro.dnn.weights import WeightStore


def single_layer_graph(layer: Layer, input_shape: TensorShape) -> DNNGraph:
    g = DNNGraph(f"single-{layer.name}")
    g.add(Layer("in", LayerKind.INPUT, input_shape=input_shape))
    g.add(layer, ["in"])
    return g.freeze()


def run_single(layer: Layer, x: np.ndarray) -> np.ndarray:
    shape = TensorShape(*x.shape)
    graph = single_layer_graph(layer, shape)
    return NumpyExecutor(graph).run(x.astype(np.float32))


class TestIm2col:
    def test_identity_kernel_1(self, rng):
        x = rng.normal(size=(2, 4, 4)).astype(np.float32)
        columns = _im2col(x, kernel=1, stride=1, padding=0)
        assert np.array_equal(columns, x.reshape(2, 16))

    def test_known_3x3_patch(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        columns = _im2col(x, kernel=3, stride=1, padding=0)
        assert columns.shape == (9, 4)
        # First output position sees the top-left 3x3 block.
        assert np.array_equal(
            columns[:, 0], np.array([0, 1, 2, 4, 5, 6, 8, 9, 10], dtype=np.float32)
        )


class TestElementwiseOps:
    def test_relu(self, rng):
        x = rng.normal(size=(2, 3, 3)).astype(np.float32)
        out = run_single(Layer("r", LayerKind.RELU), x)
        assert np.array_equal(out, np.maximum(x, 0))

    def test_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(5, 1, 1)).astype(np.float32)
        out = run_single(Layer("s", LayerKind.SOFTMAX), x)
        assert out.sum() == pytest.approx(1.0)
        assert out.argmax() == x.argmax()

    def test_global_pool(self, rng):
        x = rng.normal(size=(3, 4, 4)).astype(np.float32)
        out = run_single(Layer("g", LayerKind.GLOBAL_POOL_AVG), x)
        assert out.shape == (3, 1, 1)
        assert np.allclose(out[:, 0, 0], x.mean(axis=(1, 2)))

    def test_max_pool_known_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = run_single(
            Layer("p", LayerKind.POOL_MAX, kernel=2, stride=2), x
        )
        assert np.array_equal(out, np.array([[[5, 7], [13, 15]]], dtype=np.float32))

    def test_avg_pool_known_values(self):
        x = np.ones((1, 4, 4), dtype=np.float32)
        out = run_single(
            Layer("p", LayerKind.POOL_AVG, kernel=2, stride=2), x
        )
        assert np.allclose(out, 1.0)

    def test_dropout_is_identity(self, rng):
        x = rng.normal(size=(2, 3, 3)).astype(np.float32)
        assert np.array_equal(run_single(Layer("d", LayerKind.DROPOUT), x), x)

    def test_flatten(self, rng):
        x = rng.normal(size=(2, 3, 3)).astype(np.float32)
        out = run_single(Layer("f", LayerKind.FLATTEN), x)
        assert out.shape == (18, 1, 1)


class TestConv:
    def test_identity_1x1_conv(self):
        # A 1x1 conv whose filter picks channel 0 with weight 1.
        graph = single_layer_graph(
            Layer("c", LayerKind.CONV, out_channels=1, kernel=1),
            TensorShape(1, 3, 3),
        )
        executor = NumpyExecutor(graph)
        filters, bias = executor.store.arrays("c")
        filters[:] = 1.0
        bias[:] = 0.0
        x = np.arange(9, dtype=np.float32).reshape(1, 3, 3)
        assert np.array_equal(executor.run(x), x)

    def test_conv_matches_direct_computation(self, rng):
        graph = single_layer_graph(
            Layer("c", LayerKind.CONV, out_channels=4, kernel=3, padding=1),
            TensorShape(3, 5, 5),
        )
        executor = NumpyExecutor(graph)
        filters, bias = executor.store.arrays("c")
        x = rng.normal(size=(3, 5, 5)).astype(np.float32)
        out = executor.run(x)
        # Direct (slow) convolution at one output position.
        padded = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        expected = (filters[2] * padded[:, 2:5, 1:4]).sum() + bias[2]
        assert out[2, 2, 1] == pytest.approx(expected, rel=1e-5)

    def test_grouped_conv_isolates_channels(self, rng):
        graph = single_layer_graph(
            Layer("c", LayerKind.CONV, out_channels=2, kernel=1, groups=2),
            TensorShape(2, 3, 3),
        )
        executor = NumpyExecutor(graph)
        filters, bias = executor.store.arrays("c")
        filters[:] = 1.0
        bias[:] = 0.0
        x = np.stack(
            [np.full((3, 3), 2.0), np.full((3, 3), 5.0)]
        ).astype(np.float32)
        out = executor.run(x)
        assert np.allclose(out[0], 2.0)  # group 0 sees only channel 0
        assert np.allclose(out[1], 5.0)


class TestFullModels:
    def test_shapes_agree_with_inference(self, rng):
        graph = tiny_branchy_dnn()
        executor = NumpyExecutor(graph)
        tensors = executor.run_all(executor.make_input(rng))
        for name, tensor in tensors.items():
            shape = graph.info(name).output_shape
            assert tensor.shape == (shape.channels, shape.height, shape.width)

    def test_deterministic(self, rng):
        graph = tiny_branchy_dnn()
        x = NumpyExecutor(graph).make_input(rng)
        a = NumpyExecutor(graph).run(x)
        b = NumpyExecutor(graph).run(x)
        assert np.array_equal(a, b)

    def test_softmax_output_is_distribution(self, rng):
        graph = tiny_branchy_dnn()
        executor = NumpyExecutor(graph)
        out = executor.run(executor.make_input(rng))
        assert out.min() >= 0.0
        assert out.sum() == pytest.approx(1.0, abs=1e-5)

    def test_input_shape_validated(self, rng):
        graph = tiny_branchy_dnn()
        executor = NumpyExecutor(graph)
        with pytest.raises(ValueError):
            executor.run(np.zeros((3, 8, 8), dtype=np.float32))

    def test_input_layer_not_executable(self, rng):
        graph = tiny_branchy_dnn()
        executor = NumpyExecutor(graph)
        with pytest.raises(ValueError):
            executor.execute_layer("data", [])
