"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_command(self):
        args = build_parser().parse_args(["models"])
        assert args.command == "models"

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition"])
        assert args.model == "inception"
        assert args.slowdown == 1.0
        assert not args.verbose

    def test_invalid_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--model", "lenet-9000"])

    def test_extended_zoo_models_accepted(self):
        args = build_parser().parse_args(["partition", "--model", "alexnet"])
        assert args.model == "alexnet"

    def test_simulate_policy_choices(self):
        args = build_parser().parse_args(
            ["simulate", "--policy", "routing", "--dataset", "geolife"]
        )
        assert args.policy == "routing"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "bogus"])

    def test_telemetry_command_parses(self):
        args = build_parser().parse_args(["telemetry", "run.json"])
        assert args.command == "telemetry"
        assert args.snapshot == "run.json"
        assert args.top == 10

    @pytest.mark.parametrize("flag", ["--users", "--steps", "--dataset-steps"])
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_simulate_rejects_non_positive_counts(self, capsys, flag, value):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", flag, value])
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--users", "--steps", "--dataset-steps"])
    @pytest.mark.parametrize("value", ["2.5", "many"])
    def test_simulate_rejects_non_integer_counts(self, capsys, flag, value):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", flag, value])
        assert "invalid int value" in capsys.readouterr().err

    def test_predictors_rejects_non_positive_counts(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predictors", "--users", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_simulate_faults_choices(self):
        args = build_parser().parse_args(["simulate", "--faults", "churn"])
        assert args.faults == "churn"
        assert build_parser().parse_args(["simulate"]).faults == "none"
        # Unknown names parse fine; main() rejects them with a listing.
        args = build_parser().parse_args(["simulate", "--faults", "meteor"])
        assert args.faults == "meteor"

    def test_simulate_overload_choices(self):
        args = build_parser().parse_args(["simulate"])
        assert args.overload == "off"
        assert args.queue_capacity == 8
        args = build_parser().parse_args(
            ["simulate", "--overload", "redirect", "--queue-capacity", "2"]
        )
        assert args.overload == "redirect"
        assert args.queue_capacity == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--overload", "panic"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--queue-capacity", "0"])

    def test_faults_command_parses(self):
        assert build_parser().parse_args(["faults"]).command == "faults"
        assert build_parser().parse_args(["faults", "--list"]).list


class TestCommands:
    def test_models_runs(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("mobilenet", "inception", "resnet"):
            assert name in out

    def test_partition_runs(self, capsys):
        assert main(["partition", "--model", "mobilenet"]) == 0
        out = capsys.readouterr().out
        assert "plan latency" in out
        assert "MB" in out

    def test_partition_verbose_lists_chunks(self, capsys):
        assert main(["partition", "--model", "mobilenet", "--verbose"]) == 0
        assert "[  0]" in capsys.readouterr().out

    def test_handoff_runs(self, capsys):
        assert main(
            [
                "handoff", "--model", "mobilenet", "--fraction", "1.0",
                "--queries", "10", "--switch-after", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "<- server change" in out
        assert "peak after switch" in out

    def test_simulate_runs(self, capsys):
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "none", "--steps", "8", "--users", "4",
                "--dataset-steps", "60",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "hit ratio" in out
        assert "total queries" in out

    def test_simulate_routing_policy(self, capsys):
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "routing", "--steps", "8", "--users", "4",
                "--dataset-steps", "60",
            ]
        ) == 0
        assert "policy: routing" in capsys.readouterr().out

    def test_simulate_writes_and_telemetry_summarizes(self, capsys, tmp_path):
        snapshot = tmp_path / "run.telemetry.json"
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "none", "--steps", "5", "--users", "3",
                "--dataset-steps", "50", "--telemetry", str(snapshot),
            ]
        ) == 0
        assert "telemetry snapshot" in capsys.readouterr().out
        assert snapshot.exists()
        assert main(["telemetry", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "events" in out
        assert "cold_start: " in out  # event tally by kind
        assert "query.completed" in out

    def test_telemetry_missing_file_errors(self, capsys, tmp_path):
        assert main(["telemetry", str(tmp_path / "nope.json")]) == 1
        assert "no such snapshot" in capsys.readouterr().err

    def test_faults_lists_profiles(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "churn", "flaky-backhaul", "flash-crowd",
                     "blackout"):
            assert name in out

    def test_faults_list_flag(self, capsys):
        assert main(["faults", "--list"]) == 0
        assert "flash-crowd" in capsys.readouterr().out

    def test_simulate_unknown_faults_profile_lists_known(self, capsys):
        assert main(["simulate", "--faults", "meteor"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault profile 'meteor'" in err
        for name in ("churn", "flash-crowd", "blackout"):
            assert name in err

    def test_simulate_with_overload_reports_outcomes(self, capsys):
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "none", "--steps", "8", "--users", "4",
                "--dataset-steps", "60", "--faults", "flash-crowd",
                "--overload", "redirect", "--queue-capacity", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "overload policy:    redirect" in out
        assert "offered windows" in out
        assert "shed queries" in out
        assert "redirected queries" in out
        assert "queue wait p99" in out

    def test_simulate_with_faults_reports_availability(self, capsys):
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "none", "--steps", "8", "--users", "4",
                "--dataset-steps", "60", "--faults", "churn",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "faults profile" in out and "churn" in out
        assert "availability" in out
        assert "local fallback" in out

    def test_simulate_creates_nested_telemetry_dirs(self, capsys, tmp_path):
        snapshot = tmp_path / "deeply" / "nested" / "run.telemetry.json"
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "none", "--steps", "5", "--users", "3",
                "--dataset-steps", "50", "--telemetry", str(snapshot),
            ]
        ) == 0
        assert snapshot.exists()

    def test_simulate_unwritable_telemetry_path_errors(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        target = blocker / "run.telemetry.json"  # parent is a regular file
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "none", "--steps", "5", "--users", "3",
                "--dataset-steps", "50", "--telemetry", str(target),
            ]
        ) == 1
        err = capsys.readouterr().err
        assert "cannot write telemetry snapshot" in err
        assert len(err.strip().splitlines()) == 1


class TestShardedSimulate:
    def test_parser_accepts_sharding_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--workers", "4", "--shard-size", "64"]
        )
        assert args.workers == 4
        assert args.shard_size == 64

    def test_sharding_defaults_to_unsharded(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workers == 1
        assert args.shard_size is None

    @pytest.mark.parametrize("flag", ["--workers", "--shard-size"])
    def test_sharding_counts_must_be_positive(self, capsys, flag):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", flag, "0"])
        capsys.readouterr()

    def test_sharded_run_reports_decomposition(self, capsys):
        assert main(
            [
                "simulate", "--dataset", "kaist", "--model", "mobilenet",
                "--policy", "perdnn", "--steps", "4", "--users", "8",
                "--dataset-steps", "40", "--shard-size", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sharding:" in out
        assert "shards" in out

    def test_sharded_snapshot_has_no_worker_meta(self, capsys, tmp_path):
        # The CI smoke `cmp`s snapshots from different --workers runs, so
        # worker count must never leak into the exported bytes.
        import json

        path = tmp_path / "sharded.telemetry.json"
        assert main(
            [
                "simulate", "--model", "mobilenet", "--policy", "perdnn",
                "--steps", "4", "--users", "8", "--dataset-steps", "40",
                "--workers", "2", "--shard-size", "2",
                "--telemetry", str(path),
            ]
        ) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert doc["meta"]["shard_size"] == 2
        assert "workers" not in doc["meta"]
