"""Integration tests: the full PerDNN pipeline on real (small) components.

These wire every subsystem together the way the benchmarks do — real model
zoo graphs, the analytic profiler, the GPU-aware estimator, the partitioner,
synthetic trajectories, and the large-scale simulator — and assert the
paper's qualitative results hold end to end.
"""

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.dnn.models import mobilenet_v1
from repro.estimation.estimator import RFWithLoadEstimator
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile, generate_contention_dataset
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.simulation.single_client import (
    simulate_handoff,
    upload_window_throughput,
)
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def mobilenet_partitioner():
    profile = ExecutionProfile.build(
        mobilenet_v1(), odroid_xu4(), titan_xp_server()
    )
    config = PerDNNConfig()
    return DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )


class TestRealModelPipeline:
    def test_offloading_beats_local(self, mobilenet_partitioner):
        result = mobilenet_partitioner.partition(1.0)
        assert result.plan.latency < mobilenet_partitioner.local_latency()
        assert result.plan.offloads_anything

    def test_handoff_experiment_end_to_end(self, mobilenet_partitioner):
        config = PerDNNConfig()
        total = mobilenet_partitioner.partition(1.0).schedule.total_bytes
        ionn = simulate_handoff(mobilenet_partitioner, config)
        perdnn = simulate_handoff(
            mobilenet_partitioner, config, premigrated_bytes=total
        )
        assert (
            perdnn.peak_latency_after_switch <= ionn.peak_latency_after_switch
        )

    def test_throughput_experiment_end_to_end(self, mobilenet_partitioner):
        result = upload_window_throughput(mobilenet_partitioner, PerDNNConfig())
        # Table II magnitudes for MobileNet: a handful of queries in ~4 s.
        assert 2 <= result.miss_queries <= 10
        assert result.miss_queries <= result.hit_queries

    def test_estimator_pipeline_end_to_end(self, mobilenet_partitioner):
        rng = np.random.default_rng(3)
        samples = generate_contention_dataset(
            mobilenet_partitioner.graph,
            titan_xp_server(),
            rng,
            client_counts=(1, 8),
            rounds_per_count=6,
        )
        estimator = RFWithLoadEstimator(rng=rng).fit(samples)
        light = [s for s in samples if s.stats.num_clients == 1]
        heavy = [s for s in samples if s.stats.num_clients == 8]
        light_prediction = estimator.predict_batch(light[:30]).mean()
        heavy_prediction = estimator.predict_batch(heavy[:30]).mean()
        assert heavy_prediction > light_prediction


class TestFullSimulationPipeline:
    @pytest.fixture(scope="class")
    def results(self, mobilenet_partitioner):
        dataset = kaist_like(
            np.random.default_rng(8), num_users=10, duration_steps=150
        )
        out = {}
        for policy in (
            MigrationPolicy.NONE,
            MigrationPolicy.PERDNN,
            MigrationPolicy.OPTIMAL,
        ):
            settings = SimulationSettings(
                policy=policy, migration_radius_m=100.0, max_steps=40, seed=2
            )
            out[policy] = run_large_scale(
                dataset, mobilenet_partitioner, settings
            )
        return out

    def test_hit_ratio_ordering(self, results):
        assert results[MigrationPolicy.NONE].hit_ratio == 0.0
        assert (
            0.0
            < results[MigrationPolicy.PERDNN].hit_ratio
            <= results[MigrationPolicy.OPTIMAL].hit_ratio
        )
        assert results[MigrationPolicy.OPTIMAL].hit_ratio == 1.0

    def test_coldstart_throughput_ordering(self, results):
        assert (
            results[MigrationPolicy.NONE].coldstart_queries
            <= results[MigrationPolicy.PERDNN].coldstart_queries
            <= results[MigrationPolicy.OPTIMAL].coldstart_queries
        )

    def test_only_perdnn_uses_backhaul(self, results):
        assert results[MigrationPolicy.NONE].uplink.total_bytes == 0.0
        assert results[MigrationPolicy.OPTIMAL].uplink.total_bytes == 0.0
        assert results[MigrationPolicy.PERDNN].uplink.total_bytes > 0.0
