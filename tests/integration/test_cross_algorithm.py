"""Cross-algorithm integration: alternative partitioners drive the same
runtime machinery (collaboration, schedules, simulation) correctly."""

import numpy as np
import pytest

from repro.core.collaboration import execute_collaboratively
from repro.dnn.execution import NumpyExecutor
from repro.dnn.models import tiny_branchy_dnn
from repro.partitioning.execution_graph import ExecutionCosts
from repro.partitioning.mincut import mincut_plan
from repro.partitioning.neurosurgeon import neurosurgeon_plan
from repro.partitioning.uploading import build_upload_schedule
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile


@pytest.fixture(scope="module")
def world():
    graph = tiny_branchy_dnn()
    profile = ExecutionProfile.build(graph, odroid_xu4(), titan_xp_server())
    costs = ExecutionCosts.build(
        graph, profile.client_times, profile.server_times, 35e6, 50e6
    )
    return graph, costs


class TestAlternativePlansExecute:
    @pytest.mark.parametrize("planner", [neurosurgeon_plan, mincut_plan])
    def test_plans_execute_identically_to_local(self, world, planner, rng):
        graph, costs = world
        plan = planner(costs)
        executor = NumpyExecutor(graph)
        x = executor.make_input(rng)
        local = executor.run(x)
        collaborative = execute_collaboratively(
            graph, plan, x, NumpyExecutor(graph), NumpyExecutor(graph)
        )
        assert np.allclose(local, collaborative.output, atol=1e-6)

    @pytest.mark.parametrize("planner", [neurosurgeon_plan, mincut_plan])
    def test_plans_produce_valid_upload_schedules(self, world, planner):
        graph, costs = world
        plan = planner(costs)
        schedule = build_upload_schedule(costs, plan)
        scheduled = [n for c in schedule.chunks for n in c.layer_names]
        assert sorted(scheduled) == sorted(plan.server_layers)
        latencies = schedule.latencies
        assert all(a >= b - 1e-12 for a, b in zip(latencies, latencies[1:]))

    def test_collaborative_transfer_bytes_match_routed_tensors(self, world, rng):
        """The runtime's actual transfers equal the analytic prediction."""
        from repro.core.routing import routed_tensors
        from repro.partitioning.shortest_path import optimal_plan

        graph, costs = world
        plan = optimal_plan(costs)
        executor = NumpyExecutor(graph)
        x = executor.make_input(rng)
        collaborative = execute_collaboratively(
            graph, plan, x, NumpyExecutor(graph), NumpyExecutor(graph)
        )
        predicted = routed_tensors(costs, plan)
        # The analytic model counts every tensor alive across a switch
        # boundary; the lazy runtime moves only consumed tensors, so it
        # can never move more.
        assert collaborative.uplink_bytes <= predicted.uplink_bytes + 1e-9
        assert collaborative.downlink_bytes <= predicted.downlink_bytes + 1e-9


class TestScheduleEdgeCases:
    def test_chunks_within_bytes_boundary_exact(self, world):
        from repro.partitioning.shortest_path import optimal_plan

        graph, costs = world
        schedule = build_upload_schedule(costs, optimal_plan(costs))
        cumulative = schedule.cumulative_bytes()
        for i, boundary in enumerate(cumulative):
            chunks = schedule.chunks_within_bytes(boundary)
            assert len(chunks) >= i + 1

    def test_single_giant_layer_becomes_own_chunk(self, world):
        from repro.partitioning.shortest_path import optimal_plan

        graph, costs = world
        plan = optimal_plan(costs)
        schedule = build_upload_schedule(costs, plan, max_chunk_bytes=1.0)
        # Every chunk is either <= 1 byte or a single (oversized) layer.
        for chunk in schedule.chunks:
            assert chunk.nbytes <= 1.0 or len(chunk.indices) == 1
