"""Tests for config, edge server, client, and master server."""

import numpy as np
import pytest

from repro.core.client import MobileClient
from repro.core.config import PerDNNConfig
from repro.core.edge_server import EdgeServer
from repro.core.master import MasterServer, MigrationPolicy
from repro.geo.hexgrid import HexCell, HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.mobility.trajectory import Trajectory


class TestConfig:
    def test_defaults_match_paper(self):
        config = PerDNNConfig()
        assert config.network.uplink_bps == 35e6
        assert config.cell_radius_m == 50.0
        assert config.query_gap_seconds == 0.5
        assert config.prediction_history == 5
        assert config.ttl_intervals == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cell_radius_m=0.0),
            dict(query_gap_seconds=-1.0),
            dict(prediction_history=0),
            dict(migration_radius_m=-1.0),
            dict(ttl_intervals=0),
            dict(hit_byte_fraction=0.0),
            dict(hit_byte_fraction=1.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PerDNNConfig(**kwargs)


class TestEdgeServer:
    @pytest.fixture
    def server(self, rng):
        return EdgeServer(0, HexCell(0, 0), rng)

    def test_cache_accumulates_bytes(self, server):
        assert server.cached_bytes(7) == 0.0
        server.add_bytes(7, 100.0, now_interval=0, ttl_intervals=5)
        server.add_bytes(7, 50.0, now_interval=1, ttl_intervals=5)
        assert server.cached_bytes(7) == 150.0
        assert server.num_cached_models == 1

    def test_ttl_expiry(self, server):
        server.add_bytes(7, 100.0, now_interval=0, ttl_intervals=2)
        assert server.expire(1) == []
        assert server.expire(2) == [7]
        assert server.cached_bytes(7) == 0.0

    def test_ttl_refresh_on_new_bytes(self, server):
        server.add_bytes(7, 100.0, now_interval=0, ttl_intervals=2)
        server.add_bytes(7, 1.0, now_interval=1, ttl_intervals=2)
        assert server.expire(2) == []  # refreshed to expire at 3
        assert server.expire(3) == [7]

    def test_refresh_ttl_without_bytes(self, server):
        server.add_bytes(7, 100.0, now_interval=0, ttl_intervals=2)
        server.refresh_ttl(7, now_interval=5, ttl_intervals=2)
        assert server.expire(6) == []
        # Refreshing an unknown client is a no-op.
        server.refresh_ttl(99, now_interval=0, ttl_intervals=2)

    def test_associated_client_never_expires(self, server):
        server.add_bytes(7, 100.0, now_interval=0, ttl_intervals=1)
        server.associate(7)
        assert server.expire(100) == []
        server.dissociate(7)
        assert server.expire(100) == [7]

    def test_clear_client(self, server):
        server.add_bytes(7, 100.0, now_interval=0, ttl_intervals=5)
        server.clear_client(7)
        assert server.cached_bytes(7) == 0.0
        server.clear_client(7)  # idempotent

    def test_gpu_coupling(self, server):
        server.associate(1)
        server.associate(2)
        server.step_gpu()
        stats = server.sample_stats()
        assert stats.num_clients == 2
        assert server.slowdown() >= 1.0

    def test_negative_bytes_rejected(self, server):
        with pytest.raises(ValueError):
            server.add_bytes(7, -1.0, 0, 5)


class TestMobileClient:
    @pytest.fixture
    def client(self):
        points = np.stack([np.arange(6) * 10.0, np.zeros(6)], axis=1)
        return MobileClient(0, Trajectory(0, 20.0, points), history=3)

    def test_advance_walks_trajectory(self, client):
        assert client.advance() == (0.0, 0.0)
        assert client.advance() == (10.0, 0.0)
        assert client.position == (10.0, 0.0)

    def test_finishes_at_end(self, client):
        for _ in range(6):
            assert client.advance() is not None
        assert client.finished
        assert client.advance() is None

    def test_recent_window_fills_up(self, client):
        assert client.recent_window() is None
        client.advance()
        client.advance()
        assert client.recent_window() is None
        client.advance()
        window = client.recent_window()
        assert window.shape == (3, 2)
        assert np.allclose(window[:, 0], [0.0, 10.0, 20.0])

    def test_window_slides(self, client):
        for _ in range(4):
            client.advance()
        assert np.allclose(client.recent_window()[:, 0], [10.0, 20.0, 30.0])

    def test_position_before_advance_raises(self, client):
        with pytest.raises(RuntimeError):
            _ = client.position

    def test_history_validation(self):
        with pytest.raises(ValueError):
            MobileClient(0, Trajectory(0, 1.0, np.zeros((2, 2))), history=0)


class FixedPredictor:
    """Point predictor double that always predicts a fixed location."""

    name = "fixed"
    history = 3

    def __init__(self, point):
        self.point = point

    def fit(self, dataset):
        return self

    def predict_point(self, window):
        return self.point


@pytest.fixture
def world(tiny_partitioner, rng):
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry(grid)
    cells = [HexCell(0, 0), HexCell(1, 0), HexCell(2, 0), HexCell(3, 0)]
    for cell in cells:
        registry.ensure_server(cell)
    config = PerDNNConfig(prediction_history=3, migration_radius_m=100.0)
    return grid, registry, config, cells


class TestMasterServer:
    def make_master(self, world, tiny_partitioner, rng, **kwargs):
        grid, registry, config, cells = world
        defaults = dict(
            registry=registry,
            partitioner=tiny_partitioner,
            config=config,
            rng=rng,
            policy=MigrationPolicy.PERDNN,
            predictor=FixedPredictor(grid.center(cells[2])),
        )
        defaults.update(kwargs)
        return MasterServer(**defaults)

    def make_client(self, grid, cells):
        points = np.array(
            [grid.center(cells[0])] * 2 + [grid.center(cells[1])], dtype=float
        )
        client = MobileClient(0, Trajectory(0, 20.0, points), history=3)
        for _ in range(3):
            client.advance()
        return client

    def test_perdnn_requires_predictor(self, world, tiny_partitioner, rng):
        grid, registry, config, _ = world
        with pytest.raises(ValueError):
            MasterServer(
                registry=registry, partitioner=tiny_partitioner,
                config=config, rng=rng, policy=MigrationPolicy.PERDNN,
            )

    def test_server_instances_are_lazy_and_stable(
        self, world, tiny_partitioner, rng
    ):
        master = self.make_master(world, tiny_partitioner, rng)
        assert master.instantiated_servers == []
        server = master.server(0)
        assert master.server(0) is server
        assert len(master.instantiated_servers) == 1

    def test_plan_for_idle_server(self, world, tiny_partitioner, rng):
        master = self.make_master(world, tiny_partitioner, rng)
        server = master.server(0)
        server.step_gpu()
        plan = master.plan_for(server)
        assert plan.slowdown == pytest.approx(1.0)

    def test_migration_pushes_bytes_to_predicted_servers(
        self, world, tiny_partitioner, rng
    ):
        grid, registry, config, cells = world
        master = self.make_master(world, tiny_partitioner, rng)
        client = self.make_client(grid, cells)
        client.current_server = registry.server_for_cell(cells[1])
        source = master.server(client.current_server)
        source.add_bytes(0, 1e9, now_interval=0, ttl_intervals=5)
        records = master.proactive_migrate(client, interval=0)
        assert records, "migration must target servers near the prediction"
        target_ids = {r.target_server for r in records}
        assert registry.server_for_cell(cells[2]) in target_ids
        assert client.current_server not in target_ids
        for record in records:
            target = master.server(record.target_server)
            assert target.cached_bytes(0) == pytest.approx(record.nbytes)

    def test_migration_sends_at_most_source_bytes(
        self, world, tiny_partitioner, rng
    ):
        grid, registry, config, cells = world
        master = self.make_master(world, tiny_partitioner, rng)
        client = self.make_client(grid, cells)
        client.current_server = registry.server_for_cell(cells[1])
        source = master.server(client.current_server)
        source.add_bytes(0, 123.0, now_interval=0, ttl_intervals=5)
        records = master.proactive_migrate(client, interval=0)
        assert all(r.nbytes <= 123.0 + 1e-9 for r in records)

    def test_no_migration_without_source_bytes(
        self, world, tiny_partitioner, rng
    ):
        grid, registry, config, cells = world
        master = self.make_master(world, tiny_partitioner, rng)
        client = self.make_client(grid, cells)
        client.current_server = registry.server_for_cell(cells[1])
        assert master.proactive_migrate(client, interval=0) == []

    def test_duplicate_sends_avoided_ttl_refreshed(
        self, world, tiny_partitioner, rng
    ):
        grid, registry, config, cells = world
        master = self.make_master(world, tiny_partitioner, rng)
        client = self.make_client(grid, cells)
        client.current_server = registry.server_for_cell(cells[1])
        source = master.server(client.current_server)
        source.add_bytes(0, 1e9, now_interval=0, ttl_intervals=5)
        first = master.proactive_migrate(client, interval=0)
        second = master.proactive_migrate(client, interval=1)
        assert first and second == []  # nothing new to send

    def test_fractional_budget_caps_transfer(
        self, world, tiny_partitioner, rng
    ):
        grid, registry, config, cells = world
        crowded = frozenset(registry.server_ids)
        master = self.make_master(
            world, tiny_partitioner, rng,
            crowded_servers=crowded, crowded_byte_budget=10.0,
        )
        client = self.make_client(grid, cells)
        client.current_server = registry.server_for_cell(cells[1])
        source = master.server(client.current_server)
        source.add_bytes(0, 1e9, now_interval=0, ttl_intervals=5)
        records = master.proactive_migrate(client, interval=0)
        assert records
        assert all(r.nbytes <= 10.0 for r in records)

    def test_none_policy_never_migrates(self, world, tiny_partitioner, rng):
        master = self.make_master(
            world, tiny_partitioner, rng,
            policy=MigrationPolicy.NONE, predictor=None,
        )
        grid, registry, config, cells = world
        client = self.make_client(grid, cells)
        client.current_server = 0
        master.server(0).add_bytes(0, 1e9, 0, 5)
        assert master.proactive_migrate(client, interval=0) == []

    def test_slowdown_memoized_per_interval(self, world, tiny_partitioner, rng):
        master = self.make_master(world, tiny_partitioner, rng)
        server = master.server(0)
        server.associate(1)
        server.step_gpu()
        first = master.estimate_slowdown(server)
        server.associate(2)
        server.step_gpu()
        assert master.estimate_slowdown(server) == first  # memoized
        master.begin_interval()
        refreshed = master.estimate_slowdown(server)
        assert refreshed >= first
