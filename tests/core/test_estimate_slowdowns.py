"""Batched slowdown estimation on the master: semantics and equivalence.

``MasterServer.estimate_slowdowns`` must be a drop-in for looping over
``estimate_slowdown`` — same values bit-for-bit (same shared-RNG draw
order), same per-interval memoization, same ``master.gpu_pings``
accounting — so the simulator can batch without changing any output.
"""

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.core.master import MasterServer, MigrationPolicy
from repro.estimation.estimator import ContentionEstimator
from repro.geo.hexgrid import HexCell, HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.profiling.profiler import generate_contention_dataset
from repro.telemetry import Telemetry

N_SERVERS = 4


@pytest.fixture(scope="module")
def trained_estimator(branchy_graph, server_device):
    rng = np.random.default_rng(5)
    samples = generate_contention_dataset(
        branchy_graph, server_device, rng,
        client_counts=(1, 2, 4), rounds_per_count=3,
    )
    return ContentionEstimator(
        n_estimators=6, max_depth=4, rng=rng
    ).fit(samples)


def make_master(tiny_partitioner, seed=7, estimator=None, telemetry=None):
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry(grid)
    for q in range(N_SERVERS):
        registry.ensure_server(HexCell(q, 0))
    return MasterServer(
        registry=registry,
        partitioner=tiny_partitioner,
        config=PerDNNConfig(),
        rng=np.random.default_rng(seed),
        policy=MigrationPolicy.NONE,
        contention_estimator=estimator,
        telemetry=telemetry,
    )


def pings(master):
    return master.telemetry.registry.counter("master.gpu_pings").value


class TestBatchedEquivalence:
    def test_batch_matches_scalar_loop_bitwise(
        self, tiny_partitioner, trained_estimator
    ):
        # Two masters with identical seeds: one estimates lazily server by
        # server, the other in one batched call.  The shared RNG feeding
        # sample_stats must be consumed in the same order, so every value
        # comes out bit-identical.
        scalar_master = make_master(tiny_partitioner, estimator=trained_estimator)
        batch_master = make_master(tiny_partitioner, estimator=trained_estimator)
        scalar = {
            sid: scalar_master.estimate_slowdown(scalar_master.server(sid))
            for sid in range(N_SERVERS)
        }
        batch = batch_master.estimate_slowdowns(
            [batch_master.server(sid) for sid in range(N_SERVERS)]
        )
        assert scalar == batch

    def test_fallback_without_estimator(self, tiny_partitioner):
        master = make_master(tiny_partitioner, estimator=None)
        servers = [master.server(sid) for sid in range(N_SERVERS)]
        out = master.estimate_slowdowns(servers)
        for server in servers:
            expected = server.contention.expected_slowdown_for_clients(
                len(server.active_clients)
            )
            assert out[server.server_id] == expected

    def test_empty_input(self, tiny_partitioner, trained_estimator):
        master = make_master(tiny_partitioner, estimator=trained_estimator)
        assert master.estimate_slowdowns([]) == {}


class TestMemoizationAndPings:
    def test_pings_count_fresh_servers_only(
        self, tiny_partitioner, trained_estimator
    ):
        master = make_master(
            tiny_partitioner,
            estimator=trained_estimator,
            telemetry=Telemetry.create(),
        )
        servers = [master.server(sid) for sid in range(N_SERVERS)]
        first = master.estimate_slowdowns(servers)
        assert pings(master) == N_SERVERS
        # Same interval: everything is memoized, no new pings, same values.
        again = master.estimate_slowdowns(servers)
        assert again == first
        assert pings(master) == N_SERVERS
        # Scalar reads hit the same memo.
        assert master.estimate_slowdown(servers[0]) == first[0]
        assert pings(master) == N_SERVERS

    def test_begin_interval_invalidates_memo(
        self, tiny_partitioner, trained_estimator
    ):
        master = make_master(
            tiny_partitioner,
            estimator=trained_estimator,
            telemetry=Telemetry.create(),
        )
        servers = [master.server(sid) for sid in range(N_SERVERS)]
        master.estimate_slowdowns(servers)
        master.begin_interval()
        master.estimate_slowdowns(servers)
        assert pings(master) == 2 * N_SERVERS

    def test_duplicate_servers_ping_once(
        self, tiny_partitioner, trained_estimator
    ):
        master = make_master(
            tiny_partitioner,
            estimator=trained_estimator,
            telemetry=Telemetry.create(),
        )
        server = master.server(0)
        out = master.estimate_slowdowns([server, server, server])
        assert set(out) == {0}
        assert pings(master) == 1

    def test_partial_memo_mixes_cached_and_fresh(
        self, tiny_partitioner, trained_estimator
    ):
        master = make_master(
            tiny_partitioner,
            estimator=trained_estimator,
            telemetry=Telemetry.create(),
        )
        warm = master.server(0)
        warm_value = master.estimate_slowdown(warm)
        servers = [master.server(sid) for sid in range(N_SERVERS)]
        out = master.estimate_slowdowns(servers)
        assert out[0] == warm_value
        assert pings(master) == N_SERVERS  # 1 scalar + (N-1) fresh batched
