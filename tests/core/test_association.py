"""Tests for handover hysteresis."""

import numpy as np
import pytest

from repro.core.association import decide_association
from repro.geo.hexgrid import HexCell, HexGrid
from repro.geo.wifi import EdgeServerRegistry


@pytest.fixture
def registry():
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry(grid)
    for q in range(3):
        registry.ensure_server(HexCell(q, 0))
    return registry


def center(registry, q):
    return registry.grid.center(HexCell(q, 0))


class TestDecideAssociation:
    def test_first_association_takes_covering_server(self, registry):
        point = center(registry, 0)
        assert decide_association(registry, point, None) == 0

    def test_no_server_and_no_current_returns_none(self, registry):
        assert decide_association(registry, (10_000.0, 10_000.0), None) is None

    def test_holds_current_outside_coverage(self, registry):
        assert decide_association(registry, (10_000.0, 10_000.0), 1) == 1

    def test_zero_hysteresis_switches_at_boundary(self, registry):
        # Just inside cell 1's territory.
        a = np.array(center(registry, 0))
        b = np.array(center(registry, 1))
        point = tuple(a + 0.55 * (b - a))
        assert decide_association(registry, point, 0, 0.0) == 1

    def test_hysteresis_holds_near_boundary(self, registry):
        a = np.array(center(registry, 0))
        b = np.array(center(registry, 1))
        point = tuple(a + 0.55 * (b - a))  # barely over the boundary
        assert decide_association(registry, point, 0, hysteresis_m=20.0) == 0

    def test_hysteresis_switches_when_clearly_better(self, registry):
        point = center(registry, 2)  # squarely inside cell 2
        assert decide_association(registry, point, 0, hysteresis_m=20.0) == 2

    def test_same_cell_is_stable(self, registry):
        point = center(registry, 1)
        assert decide_association(registry, point, 1, 0.0) == 1
        assert decide_association(registry, point, 1, 50.0) == 1

    def test_negative_hysteresis_rejected(self, registry):
        with pytest.raises(ValueError):
            decide_association(registry, (0.0, 0.0), None, -1.0)


class TestBoundaryEdgeCases:
    def test_exact_boundary_holds_current_for_any_hysteresis(self, registry):
        """A client exactly on the cell boundary is a distance tie: any
        positive hysteresis keeps it on whichever server it already holds."""
        a = np.array(center(registry, 0))
        b = np.array(center(registry, 1))
        midpoint = tuple(0.5 * (a + b))
        for hysteresis in (0.1, 20.0, 1000.0):
            assert decide_association(registry, midpoint, 0, hysteresis) == 0
            assert decide_association(registry, midpoint, 1, hysteresis) == 1

    def test_exact_boundary_zero_hysteresis_is_cell_deterministic(
        self, registry
    ):
        """With no hysteresis the tie is broken by cell ownership alone, so
        the decision is a pure function of position — not of the current
        server."""
        a = np.array(center(registry, 0))
        b = np.array(center(registry, 1))
        midpoint = tuple(0.5 * (a + b))
        owner = registry.server_at(midpoint)
        assert owner in (0, 1)
        assert decide_association(registry, midpoint, 0, 0.0) == owner
        assert decide_association(registry, midpoint, 1, 0.0) == owner

    def test_hysteresis_larger_than_cell_radius_pins_client(self, registry):
        """Hysteresis exceeding the inter-cell distance means no candidate
        can ever be 'clearly better': the client stays put even standing on
        the neighbouring server's centre."""
        a = np.array(center(registry, 0))
        b = np.array(center(registry, 1))
        spacing = float(np.hypot(*(b - a)))
        pin = spacing + 1.0  # strictly more than any possible improvement
        assert decide_association(registry, tuple(b), 0, pin) == 0
        # A far-better candidate (two cells over) still loses once the
        # margin outgrows its advantage.
        c = np.array(center(registry, 2))
        far = float(np.hypot(*(c - a)))
        assert decide_association(registry, tuple(c), 0, far + 1.0) == 0
        # But drops the pin and it switches immediately.
        assert decide_association(registry, tuple(c), 0, 0.0) == 2


class TestHysteresisInSimulation:
    def test_hysteresis_reduces_server_changes(self, tiny_partitioner):
        from repro.core.config import PerDNNConfig
        from repro.core.master import MigrationPolicy
        from repro.simulation.large_scale import (
            SimulationSettings,
            run_large_scale,
        )
        from repro.trajectories.synthetic import kaist_like

        dataset = kaist_like(
            np.random.default_rng(44), num_users=10, duration_steps=160
        )
        settings = SimulationSettings(
            policy=MigrationPolicy.NONE, max_steps=40, seed=3,
            use_contention_estimator=False,
        )
        sharp = run_large_scale(
            dataset, tiny_partitioner, settings,
            config=PerDNNConfig(handover_hysteresis_m=0.0),
        )
        sticky = run_large_scale(
            dataset, tiny_partitioner, settings,
            config=PerDNNConfig(handover_hysteresis_m=30.0),
        )
        assert sticky.server_changes <= sharp.server_changes
        assert sticky.total_queries > 0

    def test_extreme_hysteresis_freezes_associations(self, tiny_partitioner):
        from repro.core.config import PerDNNConfig
        from repro.core.master import MigrationPolicy
        from repro.simulation.large_scale import (
            SimulationSettings,
            run_large_scale,
        )
        from repro.trajectories.synthetic import kaist_like

        dataset = kaist_like(
            np.random.default_rng(44), num_users=10, duration_steps=160
        )
        settings = SimulationSettings(
            policy=MigrationPolicy.NONE, max_steps=40, seed=3,
            use_contention_estimator=False,
        )
        frozen = run_large_scale(
            dataset, tiny_partitioner, settings,
            config=PerDNNConfig(handover_hysteresis_m=1e7),
        )
        # Hysteresis far beyond any displacement in the region: nobody ever
        # switches, so each client keeps its first server and cold-starts
        # exactly once.
        assert frozen.server_changes == 0
        assert frozen.misses == frozen.num_clients
        assert frozen.total_queries > 0
