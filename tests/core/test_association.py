"""Tests for handover hysteresis."""

import numpy as np
import pytest

from repro.core.association import decide_association
from repro.geo.hexgrid import HexCell, HexGrid
from repro.geo.wifi import EdgeServerRegistry


@pytest.fixture
def registry():
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry(grid)
    for q in range(3):
        registry.ensure_server(HexCell(q, 0))
    return registry


def center(registry, q):
    return registry.grid.center(HexCell(q, 0))


class TestDecideAssociation:
    def test_first_association_takes_covering_server(self, registry):
        point = center(registry, 0)
        assert decide_association(registry, point, None) == 0

    def test_no_server_and_no_current_returns_none(self, registry):
        assert decide_association(registry, (10_000.0, 10_000.0), None) is None

    def test_holds_current_outside_coverage(self, registry):
        assert decide_association(registry, (10_000.0, 10_000.0), 1) == 1

    def test_zero_hysteresis_switches_at_boundary(self, registry):
        # Just inside cell 1's territory.
        a = np.array(center(registry, 0))
        b = np.array(center(registry, 1))
        point = tuple(a + 0.55 * (b - a))
        assert decide_association(registry, point, 0, 0.0) == 1

    def test_hysteresis_holds_near_boundary(self, registry):
        a = np.array(center(registry, 0))
        b = np.array(center(registry, 1))
        point = tuple(a + 0.55 * (b - a))  # barely over the boundary
        assert decide_association(registry, point, 0, hysteresis_m=20.0) == 0

    def test_hysteresis_switches_when_clearly_better(self, registry):
        point = center(registry, 2)  # squarely inside cell 2
        assert decide_association(registry, point, 0, hysteresis_m=20.0) == 2

    def test_same_cell_is_stable(self, registry):
        point = center(registry, 1)
        assert decide_association(registry, point, 1, 0.0) == 1
        assert decide_association(registry, point, 1, 50.0) == 1

    def test_negative_hysteresis_rejected(self, registry):
        with pytest.raises(ValueError):
            decide_association(registry, (0.0, 0.0), None, -1.0)


class TestHysteresisInSimulation:
    def test_hysteresis_reduces_server_changes(self, tiny_partitioner):
        from repro.core.config import PerDNNConfig
        from repro.core.master import MigrationPolicy
        from repro.simulation.large_scale import (
            SimulationSettings,
            run_large_scale,
        )
        from repro.trajectories.synthetic import kaist_like

        dataset = kaist_like(
            np.random.default_rng(44), num_users=10, duration_steps=160
        )
        settings = SimulationSettings(
            policy=MigrationPolicy.NONE, max_steps=40, seed=3,
            use_contention_estimator=False,
        )
        sharp = run_large_scale(
            dataset, tiny_partitioner, settings,
            config=PerDNNConfig(handover_hysteresis_m=0.0),
        )
        sticky = run_large_scale(
            dataset, tiny_partitioner, settings,
            config=PerDNNConfig(handover_hysteresis_m=30.0),
        )
        assert sticky.server_changes <= sharp.server_changes
        assert sticky.total_queries > 0
