"""Tests for collaborative (partitioned) execution."""

import numpy as np
import pytest

from repro.core.collaboration import execute_collaboratively
from repro.dnn.execution import NumpyExecutor
from repro.dnn.models import tiny_branchy_dnn, tiny_linear_dnn
from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.shortest_path import (
    PartitionPlan,
    constrained_plan,
    optimal_plan,
)
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile


def make_costs(graph):
    profile = ExecutionProfile.build(graph, odroid_xu4(), titan_xp_server())
    return ExecutionCosts.build(
        graph, profile.client_times, profile.server_times, 35e6, 50e6
    )


def run_both(graph, plan, rng):
    executor = NumpyExecutor(graph)
    x = executor.make_input(rng)
    local = executor.run(x)
    collaborative = execute_collaboratively(
        graph, plan, x, NumpyExecutor(graph), NumpyExecutor(graph)
    )
    return local, collaborative


class TestEquivalence:
    def test_optimal_plan_matches_local(self, rng):
        graph = tiny_linear_dnn()
        plan = optimal_plan(make_costs(graph))
        local, collaborative = run_both(graph, plan, rng)
        assert np.array_equal(local, collaborative.output)

    def test_branchy_graph_matches_local(self, rng):
        graph = tiny_branchy_dnn()
        plan = optimal_plan(make_costs(graph))
        local, collaborative = run_both(graph, plan, rng)
        assert np.array_equal(local, collaborative.output)

    def test_all_client_plan_never_transfers(self, rng):
        graph = tiny_linear_dnn()
        plan = constrained_plan(make_costs(graph), frozenset())
        local, collaborative = run_both(graph, plan, rng)
        assert np.array_equal(local, collaborative.output)
        assert collaborative.num_transfers == 0

    def test_all_server_plan_transfers_input_and_output(self, rng):
        graph = tiny_linear_dnn()
        costs = make_costs(graph)
        plan = PartitionPlan(
            placements=tuple([Placement.SERVER] * costs.num_layers),
            latency=0.0,
            layer_names=costs.layer_names,
        )
        local, collaborative = run_both(graph, plan, rng)
        assert np.array_equal(local, collaborative.output)
        input_bytes = graph.info(graph.input_name).output_bytes
        output_bytes = graph.info(graph.output_name).output_bytes
        assert collaborative.uplink_bytes == input_bytes
        assert collaborative.downlink_bytes == output_bytes
        assert collaborative.num_transfers == 2

    def test_random_placements_still_correct(self, rng):
        """Any placement vector must execute correctly (more transfers)."""
        graph = tiny_branchy_dnn()
        costs = make_costs(graph)
        for _ in range(10):
            placements = tuple(
                Placement.SERVER if rng.random() < 0.5 else Placement.CLIENT
                for _ in range(costs.num_layers)
            )
            plan = PartitionPlan(
                placements=placements, latency=0.0,
                layer_names=costs.layer_names,
            )
            local, collaborative = run_both(graph, plan, rng)
            assert np.allclose(local, collaborative.output, atol=1e-6)

    def test_each_tensor_transferred_at_most_once_per_direction(self, rng):
        graph = tiny_branchy_dnn()
        plan = optimal_plan(make_costs(graph))
        _, collaborative = run_both(graph, plan, rng)
        seen = set()
        for transfer in collaborative.transfers:
            key = (transfer.tensor_of, transfer.to_server)
            assert key not in seen
            seen.add(key)

    def test_mobilenet_collaborative_equals_local(self, rng):
        """The real evaluation model, executed split across two parties."""
        from repro.dnn.models import mobilenet_v1

        graph = mobilenet_v1()
        plan = optimal_plan(make_costs(graph))
        assert plan.offloads_anything
        executor = NumpyExecutor(graph)
        x = executor.make_input(rng)
        local = executor.run(x)
        collaborative = execute_collaboratively(
            graph, plan, x, NumpyExecutor(graph), NumpyExecutor(graph)
        )
        assert np.array_equal(local, collaborative.output)
        # The offloaded run ships the boundary tensor up and the 1000-way
        # distribution back down.
        assert collaborative.uplink_bytes > 0
        assert collaborative.downlink_bytes == 1000 * 4


class TestValidation:
    def test_executor_graph_mismatch(self, rng):
        graph_a = tiny_linear_dnn()
        graph_b = tiny_branchy_dnn()
        plan = optimal_plan(make_costs(graph_a))
        with pytest.raises(ValueError):
            execute_collaboratively(
                graph_a, plan, np.zeros((3, 16, 16), dtype=np.float32),
                NumpyExecutor(graph_a), NumpyExecutor(graph_b),
            )

    def test_plan_graph_mismatch(self, rng):
        graph_a = tiny_linear_dnn()
        graph_b = tiny_branchy_dnn()
        plan = optimal_plan(make_costs(graph_b))
        with pytest.raises(ValueError):
            execute_collaboratively(
                graph_a, plan, np.zeros((3, 16, 16), dtype=np.float32),
                NumpyExecutor(graph_a), NumpyExecutor(graph_a),
            )
