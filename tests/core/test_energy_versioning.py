"""Tests for the energy model and model-version cache invalidation."""

import numpy as np
import pytest

from repro.core.edge_server import EdgeServer
from repro.geo.hexgrid import HexCell
from repro.partitioning.execution_graph import ExecutionCosts
from repro.partitioning.shortest_path import constrained_plan, optimal_plan
from repro.profiling.energy import (
    EnergyModel,
    energy_savings_ratio,
    local_energy,
    plan_energy,
)


@pytest.fixture
def costs(tiny_profile):
    return ExecutionCosts.build(
        tiny_profile.graph,
        tiny_profile.client_times,
        tiny_profile.server_times,
        35e6,
        50e6,
    )


class TestEnergyModel:
    def test_local_plan_is_pure_compute(self, costs):
        plan = constrained_plan(costs, frozenset())
        energy = plan_energy(costs, plan)
        assert energy.transmit_joules == 0.0
        assert energy.receive_joules == 0.0
        assert energy.idle_joules == 0.0
        assert energy.total_joules == pytest.approx(local_energy(costs))

    def test_offloaded_plan_trades_compute_for_radio_and_idle(self, costs):
        plan = optimal_plan(costs)
        assert plan.offloads_anything
        energy = plan_energy(costs, plan)
        assert energy.compute_joules < local_energy(costs)
        assert energy.transmit_joules > 0.0
        assert energy.receive_joules > 0.0
        assert energy.idle_joules > 0.0

    def test_offloading_large_models_saves_energy(self):
        """The paper's §I motivation: offloading extends wearable battery."""
        from repro.dnn.models import resnet50
        from repro.profiling.hardware import odroid_xu4, titan_xp_server
        from repro.profiling.profiler import ExecutionProfile

        profile = ExecutionProfile.build(
            resnet50(), odroid_xu4(), titan_xp_server()
        )
        costs = ExecutionCosts.build(
            profile.graph, profile.client_times, profile.server_times,
            35e6, 50e6,
        )
        savings = energy_savings_ratio(costs, optimal_plan(costs))
        assert savings > 0.5  # offloading more than halves client energy

    def test_custom_power_draws(self, costs):
        plan = optimal_plan(costs)
        free_radio = EnergyModel(transmit_watts=0.0, receive_watts=0.0)
        energy = plan_energy(costs, plan, free_radio)
        assert energy.transmit_joules == 0.0
        assert energy.receive_joules == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(compute_watts=-1.0)


class TestModelVersioning:
    @pytest.fixture
    def server(self, rng):
        return EdgeServer(0, HexCell(0, 0), rng)

    def test_stale_version_reads_zero(self, server):
        server.add_bytes(7, 500.0, now_interval=0, ttl_intervals=5, version=0)
        assert server.cached_bytes(7, version=0) == 500.0
        assert server.cached_bytes(7, version=1) == 0.0

    def test_new_version_replaces_old_bytes(self, server):
        server.add_bytes(7, 500.0, 0, 5, version=0)
        server.add_bytes(7, 100.0, 1, 5, version=1)
        assert server.cached_bytes(7, version=1) == 100.0
        assert server.cached_bytes(7, version=0) == 0.0

    def test_refresh_ignores_stale_version(self, server):
        server.add_bytes(7, 500.0, 0, ttl_intervals=2, version=0)
        server.refresh_ttl(7, now_interval=1, ttl_intervals=2, version=1)
        assert server.expire(2) == [7]  # stale refresh did not extend TTL

    def test_client_update_model(self):
        from repro.core.client import MobileClient
        from repro.mobility.trajectory import Trajectory

        client = MobileClient(
            0, Trajectory(0, 20.0, np.zeros((3, 2))), history=2
        )
        assert client.model_version == 0
        assert client.update_model() == 1
        assert client.model_version == 1


class TestModelUpdateSimulation:
    def test_frequent_updates_lower_hit_ratio(self, tiny_partitioner):
        from repro.core.master import MigrationPolicy
        from repro.simulation.large_scale import (
            SimulationSettings,
            run_large_scale,
        )
        from repro.trajectories.synthetic import kaist_like

        dataset = kaist_like(
            np.random.default_rng(6), num_users=10, duration_steps=160
        )

        def run(update_every):
            settings = SimulationSettings(
                policy=MigrationPolicy.PERDNN, migration_radius_m=100.0,
                max_steps=40, seed=8, model_update_every=update_every,
                use_contention_estimator=False,
            )
            return run_large_scale(dataset, tiny_partitioner, settings)

        stable = run(None)
        churning = run(3)
        assert churning.extras.get("model_updates", 0) > 0
        # Retraining invalidates caches: hits drop, migration traffic rises
        # or stays equal (everything must be re-sent).
        assert churning.hit_ratio <= stable.hit_ratio + 0.02
        assert churning.migrated_bytes >= stable.migrated_bytes * 0.9
