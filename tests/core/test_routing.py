"""Tests for the §3.A routing alternative."""

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.core.routing import (
    RoutedTensors,
    routed_tensors,
    routing_overhead_seconds,
)
from repro.geo.hexgrid import HexCell, HexGrid
from repro.partitioning.shortest_path import constrained_plan, optimal_plan


class TestHopDistance:
    def test_same_cell_zero(self):
        assert HexGrid.hop_distance(HexCell(2, -1), HexCell(2, -1)) == 0

    def test_neighbors_are_one_hop(self):
        origin = HexCell(0, 0)
        for neighbor in origin.neighbors():
            assert HexGrid.hop_distance(origin, neighbor) == 1

    def test_symmetry_and_triangle(self):
        a, b, c = HexCell(0, 0), HexCell(3, -1), HexCell(-2, 4)
        assert HexGrid.hop_distance(a, b) == HexGrid.hop_distance(b, a)
        assert HexGrid.hop_distance(a, c) <= (
            HexGrid.hop_distance(a, b) + HexGrid.hop_distance(b, c)
        )

    def test_straight_line_distance(self):
        assert HexGrid.hop_distance(HexCell(0, 0), HexCell(5, 0)) == 5


class TestRoutedTensors:
    def test_all_local_plan_routes_nothing(self, tiny_partitioner):
        costs = tiny_partitioner.partition(1.0).costs
        plan = constrained_plan(costs, frozenset())
        tensors = routed_tensors(costs, plan)
        assert tensors.total_bytes == 0.0

    def test_offloading_plan_routes_input_and_output(self, tiny_partitioner):
        costs = tiny_partitioner.partition(1.0).costs
        plan = optimal_plan(costs)
        assert plan.offloads_anything
        tensors = routed_tensors(costs, plan)
        assert tensors.uplink_bytes > 0
        assert tensors.downlink_bytes > 0

    def test_fully_offloaded_routes_exact_boundaries(self, tiny_partitioner):
        from repro.partitioning.execution_graph import Placement
        from repro.partitioning.shortest_path import PartitionPlan

        costs = tiny_partitioner.partition(1.0).costs
        plan = PartitionPlan(
            placements=tuple([Placement.SERVER] * costs.num_layers),
            latency=0.0,
            layer_names=costs.layer_names,
        )
        tensors = routed_tensors(costs, plan)
        assert tensors.uplink_bytes == pytest.approx(costs.cut_bytes[0])
        assert tensors.downlink_bytes == pytest.approx(costs.cut_bytes[-1])


class TestRoutingOverhead:
    def test_zero_hops_is_free(self):
        config = PerDNNConfig()
        tensors = RoutedTensors(1e6, 1e5)
        assert routing_overhead_seconds(config, 0, tensors) == 0.0

    def test_overhead_grows_with_hops(self):
        config = PerDNNConfig()
        tensors = RoutedTensors(1e6, 1e5)
        values = [
            routing_overhead_seconds(config, hops, tensors)
            for hops in (1, 2, 5, 10)
        ]
        assert values == sorted(values)
        assert values[0] > 0

    def test_components(self):
        config = PerDNNConfig(backhaul_bps=8e6, backhaul_hop_latency_s=0.01)
        tensors = RoutedTensors(uplink_bytes=1e6, downlink_bytes=0.0)
        # 2 hops * 2 directions * 10 ms + 1e6 bytes at 1 MB/s.
        assert routing_overhead_seconds(config, 2, tensors) == pytest.approx(
            0.04 + 1.0
        )

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            routing_overhead_seconds(PerDNNConfig(), -1, RoutedTensors(0, 0))


class TestRoutingPolicySimulation:
    def test_routing_keeps_first_server(self, tiny_partitioner):
        from repro.simulation.large_scale import (
            SimulationSettings,
            run_large_scale,
        )
        from repro.trajectories.synthetic import kaist_like

        dataset = kaist_like(
            np.random.default_rng(4), num_users=6, duration_steps=120
        )
        settings = SimulationSettings(
            policy=MigrationPolicy.ROUTING, max_steps=30, seed=1,
            use_contention_estimator=False,
        )
        result = run_large_scale(dataset, tiny_partitioner, settings)
        # Exactly one cold start per client, ever.
        assert result.misses == result.num_clients
        assert result.hits == 0
        assert result.server_changes == 0
        assert result.migrations == 0

    def test_routing_consumes_backhaul_when_moving(self, tiny_partitioner):
        from repro.simulation.large_scale import (
            SimulationSettings,
            run_large_scale,
        )
        from repro.trajectories.synthetic import geolife_like

        dataset = geolife_like(
            np.random.default_rng(4), num_users=6, duration_steps=200
        ).subsample(4)
        settings = SimulationSettings(
            policy=MigrationPolicy.ROUTING, max_steps=40, seed=1,
            use_contention_estimator=False,
        )
        result = run_large_scale(dataset, tiny_partitioner, settings)
        # Fast movers leave their home cell, so queries are relayed.
        assert result.uplink.total_bytes > 0
