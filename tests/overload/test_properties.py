"""Property-based overload invariants.

Two layers: at the simulation level every offered window is accounted for
by exactly one outcome (admitted + shed + redirected + degraded ==
offered) and no query is ever dropped; at the unit level the admission
queue depth can never exceed the interval's effective capacity, whatever
the request sequence.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.master import MigrationPolicy
from repro.faults import get_profile
from repro.overload import AdmissionController, OverloadConfig
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like

from tests.overload.test_admission import StubServer

_DATASET = kaist_like(np.random.default_rng(33), num_users=4, duration_steps=60)


def _run(tiny_partitioner, overload, seed, faults=None):
    settings_ = SimulationSettings(
        policy=MigrationPolicy.PERDNN,
        migration_radius_m=100.0,
        max_steps=12,
        seed=seed,
        faults=faults,
        overload=overload,
    )
    return run_large_scale(_DATASET, tiny_partitioner, settings_)


@settings(max_examples=8, deadline=None)
@given(
    policy=st.sampled_from(["reject", "redirect", "degrade"]),
    seed=st.integers(0, 100),
    flash_crowd=st.booleans(),
)
def test_every_offered_window_has_exactly_one_outcome(
    tiny_partitioner, policy, seed, flash_crowd
):
    overload = OverloadConfig(policy=policy, queue_capacity=1)
    faults = get_profile("flash-crowd") if flash_crowd else None
    result = _run(tiny_partitioner, overload, seed, faults=faults)
    stats = result.extras["overload"]
    assert stats["offered"] > 0
    assert stats["offered"] == (
        stats["admitted"] + stats["shed"]
        + stats["redirected"] + stats["degraded"]
    )
    # Policies other than their own never produce the other outcomes.
    if policy == "reject":
        assert stats["redirected"] == 0 and stats["degraded"] == 0
    elif policy == "redirect":
        assert stats["degraded"] == 0
    else:
        assert stats["redirected"] == 0 and stats["shed"] == 0
    # No query dropped: every window's queries land in total_queries.
    trace = result.telemetry.trace
    window_queries = sum(e.queries for e in trace.of_kind("query_window"))
    assert window_queries == result.total_queries
    assert result.total_queries > 0


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 6),
    requests=st.lists(
        st.tuples(st.integers(0, 3), st.floats(0.0, 1.0)),
        min_size=1, max_size=40,
    ),
)
def test_queue_depth_never_exceeds_capacity(capacity, requests):
    controller = AdmissionController(OverloadConfig(queue_capacity=capacity))
    servers = {}
    for server_id, busy in requests:
        server = servers.setdefault(server_id, StubServer(server_id, busy))
        decision = controller.try_admit(server)
        bound = controller.capacity_of(server)
        assert bound <= capacity
        assert controller.depth_of(server_id) <= bound
        assert decision.queue_depth <= bound
        assert decision.admitted == (decision.queue_depth < bound)
