"""Admission controller: bounded queues, saturation backpressure, config."""

from dataclasses import dataclass

import pytest

from repro.overload import AdmissionController, OverloadConfig, SheddingPolicy
from repro.telemetry import MetricsRegistry


@dataclass
class StubServer:
    """The two attributes the controller reads off an edge server."""

    server_id: int
    busy: float = 0.0

    def saturation(self) -> float:
        return self.busy


class TestQueueBound:
    def test_admits_up_to_capacity_then_sheds(self):
        controller = AdmissionController(OverloadConfig(queue_capacity=3))
        server = StubServer(0)
        decisions = [controller.try_admit(server) for _ in range(5)]
        assert [d.admitted for d in decisions] == [True, True, True, False, False]
        assert controller.depth_of(0) == 3
        assert not controller.has_capacity(server)

    def test_queue_wait_grows_with_depth(self):
        config = OverloadConfig(queue_capacity=4, service_quantum_seconds=0.05)
        controller = AdmissionController(config)
        server = StubServer(0)
        waits = [controller.try_admit(server).queue_wait for _ in range(4)]
        assert waits == [0.0, 0.05, 0.1, pytest.approx(0.15)]
        # A shed request waits nowhere.
        assert controller.try_admit(server).queue_wait == 0.0

    def test_queues_are_per_server(self):
        controller = AdmissionController(OverloadConfig(queue_capacity=1))
        assert controller.try_admit(StubServer(0)).admitted
        assert controller.try_admit(StubServer(1)).admitted
        assert not controller.try_admit(StubServer(0)).admitted

    def test_begin_interval_resets_queues(self):
        controller = AdmissionController(OverloadConfig(queue_capacity=1))
        server = StubServer(0)
        assert controller.try_admit(server).admitted
        assert not controller.try_admit(server).admitted
        controller.begin_interval(1)
        assert controller.depth_of(0) == 0
        assert controller.try_admit(server).admitted


class TestSaturationBackpressure:
    def test_saturated_server_has_half_capacity(self):
        config = OverloadConfig(queue_capacity=8, saturation_threshold=0.85)
        controller = AdmissionController(config)
        assert controller.effective_capacity(0.0) == 8
        assert controller.effective_capacity(0.84) == 8
        assert controller.effective_capacity(0.85) == 4
        assert controller.effective_capacity(1.0) == 4

    def test_halved_capacity_never_reaches_zero(self):
        controller = AdmissionController(OverloadConfig(queue_capacity=1))
        assert controller.effective_capacity(1.0) == 1

    def test_capacity_sampled_on_first_touch(self):
        config = OverloadConfig(queue_capacity=4, saturation_threshold=0.5)
        controller = AdmissionController(config)
        server = StubServer(0, busy=0.9)
        assert controller.capacity_of(server) == 2
        admitted = sum(controller.try_admit(server).admitted for _ in range(4))
        assert admitted == 2


class TestGauges:
    def test_exports_per_server_queue_depth(self):
        registry = MetricsRegistry()
        controller = AdmissionController(
            OverloadConfig(queue_capacity=2), telemetry=registry
        )
        controller.try_admit(StubServer(0))
        controller.try_admit(StubServer(0))
        controller.try_admit(StubServer(3))
        controller.export_gauges()
        assert registry.value("overload.queue_depth", {"server": "0"}) == 2
        assert registry.value("overload.queue_depth", {"server": "3"}) == 1


class TestConfig:
    def test_policy_coerced_from_string(self):
        config = OverloadConfig(policy="degrade")
        assert config.policy is SheddingPolicy.DEGRADE

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            OverloadConfig(policy="panic")

    @pytest.mark.parametrize("kwargs", [
        {"queue_capacity": 0},
        {"saturation_threshold": 0.0},
        {"saturation_threshold": 1.5},
        {"service_quantum_seconds": -0.1},
        {"degrade_inflation": 0.5},
        {"redirect_radius_m": -1.0},
        {"breaker_failure_threshold": 0},
        {"breaker_open_intervals": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OverloadConfig(**kwargs)
