"""Circuit-breaker state machine: closed → open → half-open → ..."""

import pytest

from repro.overload import BreakerState, CircuitBreaker


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows(0)
        assert breaker.consecutive_failures == 0

    def test_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows(2)
        assert breaker.consecutive_failures == 2

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0)
        breaker.record_failure(1)
        breaker.record_success(2)
        assert breaker.consecutive_failures == 0
        # The streak starts over: two more failures still don't trip it.
        breaker.record_failure(3)
        breaker.record_failure(4)
        assert breaker.state is BreakerState.CLOSED


class TestOpen:
    def trip(self, breaker, interval=0):
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(interval)
        assert breaker.state is BreakerState.OPEN
        return breaker

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = self.trip(CircuitBreaker(failure_threshold=3))
        assert breaker.consecutive_failures == 3

    def test_rejects_while_cooldown_runs(self):
        breaker = self.trip(CircuitBreaker(open_intervals=4), interval=10)
        for interval in range(10, 14):
            assert not breaker.allows(interval)
            assert breaker.state is BreakerState.OPEN

    def test_cooldown_expiry_grants_half_open_probe(self):
        breaker = self.trip(CircuitBreaker(open_intervals=4), interval=10)
        assert breaker.allows(14)
        assert breaker.state is BreakerState.HALF_OPEN
        # The probe stays granted until its outcome is recorded.
        assert breaker.allows(14)


class TestHalfOpen:
    def half_open(self, interval=10):
        breaker = CircuitBreaker(failure_threshold=1, open_intervals=2)
        breaker.record_failure(interval)
        assert breaker.allows(interval + 2)
        assert breaker.state is BreakerState.HALF_OPEN
        return breaker

    def test_probe_success_closes_and_resets(self):
        breaker = self.half_open()
        breaker.record_success(12)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.allows(13)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = self.half_open(interval=10)
        breaker.record_failure(12)
        assert breaker.state is BreakerState.OPEN
        # The cooldown restarts at the failed probe, not the first trip.
        assert not breaker.allows(13)
        assert breaker.allows(14)
        assert breaker.state is BreakerState.HALF_OPEN


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"failure_threshold": -1},
        {"open_intervals": 0},
    ])
    def test_rejects_non_positive_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
