"""End-to-end overload behaviour in the large-scale simulator.

Covers the flash-crowd stress scenario (survivors absorb redirected
clients without dropping a query), same-seed determinism with the
subsystem on, and the strict no-op contract when it is off.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.faults import get_profile
from repro.geo.geometry import BoundingBox
from repro.geo.hexgrid import HexCell, HexGrid
from repro.mobility.trajectory import Trajectory, TrajectoryDataset
from repro.overload import OverloadConfig, SheddingPolicy
from repro.simulation.large_scale import (
    LargeScaleResult,
    SimulationSettings,
    run_large_scale,
)
from repro.trajectories.synthetic import kaist_like

COMPARED_FIELDS = [
    field.name
    for field in dataclasses.fields(LargeScaleResult)
    if field.name != "telemetry"
]


def clustered_dataset(cells, users_per_cell=3, steps=40):
    """Stationary user clusters, one per hex cell — guaranteed crowding."""
    grid = HexGrid(50.0)
    trajectories = []
    for i, cell in enumerate(cells):
        base = grid.center(HexCell(*cell))
        for j in range(users_per_cell):
            trajectories.append(
                Trajectory(i * users_per_cell + j, 30.0,
                           np.tile(base, (steps, 1)))
            )
    return TrajectoryDataset(
        name="clustered",
        interval_seconds=30.0,
        bbox=BoundingBox(-500, -500, 500, 500),
        trajectories=tuple(trajectories),
    )


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(33), num_users=6, duration_steps=90)


def one_run(dataset, partitioner, overload, seed=5, faults=None, steps=20):
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN,
        migration_radius_m=100.0,
        max_steps=steps,
        seed=seed,
        faults=faults,
        overload=overload,
    )
    return run_large_scale(dataset, partitioner, settings)


class TestFlashCrowd:
    @pytest.fixture(scope="class")
    def crowded(self, tiny_partitioner):
        # Two stationary clusters -> two servers; flash-crowd leaves one
        # survivor, so six clients compete for a single admission slot.
        return one_run(
            clustered_dataset([(0, 0), (4, 0)]), tiny_partitioner,
            OverloadConfig(policy=SheddingPolicy.REDIRECT, queue_capacity=1),
            faults=get_profile("flash-crowd"), steps=16,
        )

    def test_crowd_forces_shedding_decisions(self, crowded):
        stats = crowded.extras["overload"]
        assert stats["offered"] > 0
        assert stats["redirected"] + stats["shed"] > 0

    def test_no_query_dropped(self, crowded):
        trace = crowded.telemetry.trace
        windows = list(trace.of_kind("query_window"))
        window_queries = sum(e.queries for e in windows)
        assert window_queries == crowded.total_queries
        assert crowded.total_queries > 0
        registry = crowded.telemetry.registry
        client_intervals = registry.value("resilience.client_intervals")
        assert len(windows) == int(client_intervals)

    def test_outcomes_conserve_offered_windows(self, crowded):
        stats = crowded.extras["overload"]
        assert stats["offered"] == (
            stats["admitted"] + stats["shed"]
            + stats["redirected"] + stats["degraded"]
        )
        assert crowded.shed_queries + crowded.redirected_queries >= 0

    def test_queue_wait_recorded_for_admitted_windows(self, crowded):
        registry = crowded.telemetry.registry
        wait = registry.get("overload.queue_wait_seconds")
        assert wait is not None and wait.count > 0
        assert crowded.queue_wait_p99 >= 0.0


class TestDegradePolicy:
    def test_degraded_windows_run_shorter_server_plans(
        self, tiny_partitioner
    ):
        # Three clients on one capacity-1 server: two degrade per interval.
        result = one_run(
            clustered_dataset([(0, 0)]), tiny_partitioner,
            OverloadConfig(policy=SheddingPolicy.DEGRADE, queue_capacity=1),
            steps=12,
        )
        stats = result.extras["overload"]
        assert stats["degraded"] > 0
        assert result.degraded_queries > 0
        # Degrade never sheds or redirects; the breaker stays closed.
        assert stats["shed"] == 0 and stats["redirected"] == 0
        assert result.telemetry.registry.value(
            "overload.breaker_transitions", {"to": "open"}
        ) == 0


class TestDeterminism:
    def test_same_seed_overload_runs_are_identical(
        self, dataset, tiny_partitioner
    ):
        config = OverloadConfig(policy=SheddingPolicy.REDIRECT, queue_capacity=1)
        profile = get_profile("flash-crowd")
        first = one_run(dataset, tiny_partitioner, config, faults=profile)
        second = one_run(dataset, tiny_partitioner, config, faults=profile)
        assert first.telemetry.dumps() == second.telemetry.dumps()
        for name in COMPARED_FIELDS:
            assert getattr(first, name) == getattr(second, name), name


class TestStrictNoOp:
    def test_disabled_run_emits_no_overload_metrics(
        self, dataset, tiny_partitioner
    ):
        result = one_run(dataset, tiny_partitioner, None)
        registry = result.telemetry.registry
        assert not any(
            metric.name.startswith("overload.")
            for metric in registry.metrics()
        )
        assert "overload" not in result.extras
        assert result.shed_queries == 0
        assert result.redirected_queries == 0
        assert result.degraded_queries == 0
        assert result.queue_wait_p99 == 0.0

    def test_availability_gauge_present_without_faults(
        self, dataset, tiny_partitioner
    ):
        result = one_run(dataset, tiny_partitioner, None)
        registry = result.telemetry.registry
        assert registry.value("resilience.availability") == 1.0
