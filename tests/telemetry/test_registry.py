"""Unit tests for counters, gauges, histograms, timers, and the registry."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    normalize_labels,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("hits")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_reset_zeroes_value(self):
        c = Counter("hits")
        c.inc(7)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("load")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5

    def test_reset(self):
        g = Gauge("load")
        g.set(9.0)
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0):
            h.observe(value)
        # <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=4: {3.0, 4.0}; overflow: {5.0}
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(17.0)

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))

    def test_empty_bounds_allowed(self):
        h = Histogram("lat", buckets=())
        h.observe(3.0)
        assert h.counts == [1]
        assert h.mean == 3.0

    def test_reset_keeps_buckets(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        h.reset()
        assert h.counts == [0, 0]
        assert h.count == 0 and h.sum == 0.0
        assert h.buckets == (1.0,)

    def test_merge_requires_matching_buckets(self):
        a = Histogram("lat", buckets=(1.0,))
        b = Histogram("lat", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)


class TestLabels:
    def test_normalization_is_order_insensitive(self):
        assert normalize_labels({"b": "2", "a": "1"}) == normalize_labels(
            {"a": "1", "b": "2"}
        )
        assert normalize_labels(None) == ()
        assert normalize_labels({}) == ()

    def test_values_coerced_to_str(self):
        assert normalize_labels({"n": 3}) == (("n", "3"),)

    def test_distinct_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"model": "a"}).inc()
        reg.counter("hits", {"model": "b"}).inc(2)
        assert reg.value("hits", {"model": "a"}) == 1.0
        assert reg.value("hits", {"model": "b"}) == 2.0
        assert reg.value("hits") == 0.0  # unlabelled series never touched
        assert reg.series("hits") == [
            ({"model": "a"}, 1.0),
            ({"model": "b"}, 2.0),
        ]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", (1.0,)) is reg.histogram("h", (1.0,))

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x", (1.0,))

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", (1.0, 3.0))

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0

    def test_value_of_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0,))
        with pytest.raises(TypeError):
            reg.value("h")

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(2)
        reg.histogram("h", (1.0,)).observe(0.5)
        reg.reset()
        assert len(reg) == 3
        assert reg.value("c") == 0.0
        assert reg.value("g") == 0.0
        assert reg.histogram("h", (1.0,)).count == 0

    def test_clear_drops_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.clear()
        assert len(reg) == 0

    def test_as_dict_is_sorted_and_grouped(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.gauge("g").set(1)
        reg.histogram("h", (1.0,)).observe(2.0)
        doc = reg.as_dict()
        assert [c["name"] for c in doc["counters"]] == ["a", "b"]
        assert [g["name"] for g in doc["gauges"]] == ["g"]
        assert doc["histograms"][0]["counts"] == [0, 1]


class TestTimer:
    def test_timer_counts_calls_without_wall_clock_by_default(self):
        reg = MetricsRegistry()  # record_timings=False
        with reg.timer("plan"):
            pass
        assert reg.value("plan.calls") == 1.0
        # No histogram was created: the export carries no wall-clock data.
        assert all(m.name != "plan.seconds" for m in reg.metrics())

    def test_timer_records_seconds_when_enabled(self):
        ticks = iter([1.0, 3.5])
        reg = MetricsRegistry(record_timings=True, clock=lambda: next(ticks))
        with reg.timer("plan"):
            pass
        hist = next(m for m in reg.metrics() if m.name == "plan.seconds")
        assert hist.count == 1
        assert hist.sum == pytest.approx(2.5)

    def test_timer_records_even_when_body_raises(self):
        ticks = iter([0.0, 1.0])
        reg = MetricsRegistry(record_timings=True, clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with reg.timer("plan"):
                raise RuntimeError("boom")
        hist = next(m for m in reg.metrics() if m.name == "plan.seconds")
        assert hist.count == 1


class TestMerge:
    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        a.histogram("h", (1.0,)).observe(0.5)
        b.histogram("h", (1.0,)).observe(2.0)
        a.merge(b)
        assert a.value("c") == 5.0
        assert a.value("only_b") == 1.0
        h = a.histogram("h", (1.0,))
        assert h.counts == [1, 1] and h.count == 2

    def test_merge_gauge_is_last_write(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.value("g") == 9.0

    def test_merge_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(TypeError):
            a.merge(b)


class TestObserveRepeated:
    def test_identical_to_observe_loop(self):
        buckets = (0.1, 1.0, 10.0)
        repeated = Histogram("h", buckets)
        looped = Histogram("h", buckets)
        for value, times in ((0.05, 3), (0.7, 0), (2.0, 7), (50.0, 2)):
            repeated.observe_repeated(value, times)
            for _ in range(times):
                looped.observe(value)
        assert repeated.counts == looped.counts
        assert repeated.sum == looped.sum  # bitwise: same serial adds
        assert repeated.count == looped.count

    def test_zero_times_is_a_noop(self):
        histogram = Histogram("h", (1.0,))
        histogram.observe_repeated(0.5, 0)
        assert histogram.count == 0
        assert histogram.sum == 0.0

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0,)).observe_repeated(0.5, -1)
