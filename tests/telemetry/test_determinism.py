"""Determinism regression: same settings + seed => byte-identical telemetry.

Two independent ``run_large_scale`` runs with identical
``SimulationSettings`` must export byte-identical telemetry JSON and
report equal ``LargeScaleResult`` fields — the guarantee every benchmark
snapshot and the exported-metrics workflow rely on.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import (
    LargeScaleResult,
    SimulationSettings,
    run_large_scale,
)
from repro.trajectories.synthetic import kaist_like

COMPARED_FIELDS = [
    field.name
    for field in dataclasses.fields(LargeScaleResult)
    if field.name != "telemetry"
]


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(33), num_users=6, duration_steps=90)


def one_run(dataset, partitioner):
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN,
        migration_radius_m=100.0,
        max_steps=20,
        seed=5,
    )
    return run_large_scale(dataset, partitioner, settings)


def test_same_seed_runs_export_identical_telemetry(dataset, tiny_partitioner):
    # The session-scoped partitioner keeps its plan cache across runs, and
    # the exported `partition_cache` extras count per-run hits/misses — so
    # a cold first run differs from a warm second one.  Warm the cache
    # first; the determinism claim is about the simulation itself.
    one_run(dataset, tiny_partitioner)
    first = one_run(dataset, tiny_partitioner)
    second = one_run(dataset, tiny_partitioner)
    assert first.telemetry is not None and second.telemetry is not None
    # Byte-identical canonical JSON (registry + full event trace).
    assert first.telemetry.dumps() == second.telemetry.dumps()
    # And every reported result field agrees.
    for name in COMPARED_FIELDS:
        assert getattr(first, name) == getattr(second, name), name


def test_different_seed_changes_telemetry(dataset, tiny_partitioner):
    settings_a = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=20, seed=5
    )
    settings_b = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=20, seed=6
    )
    a = run_large_scale(dataset, tiny_partitioner, settings_a)
    b = run_large_scale(dataset, tiny_partitioner, settings_b)
    # Seeds drive GPU contention and trained components; the traces of
    # different seeds should not be bit-identical.
    assert a.telemetry.dumps() != b.telemetry.dumps()


def test_result_counters_match_registry(dataset, tiny_partitioner):
    result = one_run(dataset, tiny_partitioner)
    registry = result.telemetry.registry
    assert result.hits == int(
        registry.value("sim.cold_start", {"outcome": "hit"})
    )
    assert result.misses == int(
        registry.value("sim.cold_start", {"outcome": "miss"})
    )
    assert result.total_queries == int(registry.value("query.completed"))
    assert result.migrations == int(registry.value("migration.count"))
    assert result.migrated_bytes == registry.value("migration.bytes")
    assert result.steps == int(registry.value("sim.steps"))


def test_trace_matches_counters(dataset, tiny_partitioner):
    result = one_run(dataset, tiny_partitioner)
    trace = result.telemetry.trace
    counts = trace.counts_by_kind()
    assert counts.get("cold_start", 0) == result.hits + result.misses
    assert counts.get("migration", 0) == result.migrations
    assert counts.get("association", 0) == (
        result.server_changes + result.num_clients
    )
    migrated = sum(e.nbytes for e in trace.of_kind("migration"))
    assert migrated == pytest.approx(result.migrated_bytes)
    window_queries = sum(e.queries for e in trace.of_kind("query_window"))
    assert window_queries == result.total_queries
