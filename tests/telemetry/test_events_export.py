"""Event trace and exporter tests: schema, round-trips, determinism."""

import json

import pytest

from repro.telemetry import (
    SCHEMA,
    AssociationEvent,
    CacheEvictionEvent,
    ColdStartEvent,
    EventTrace,
    FractionalTruncationEvent,
    MetricsRegistry,
    MigrationEvent,
    QueryWindowEvent,
    Telemetry,
    dumps_snapshot,
    event_from_dict,
    metrics_csv,
    read_snapshot,
    snapshot,
    summarize_snapshot,
    write_snapshot,
)

ALL_EVENTS = (
    AssociationEvent(interval=0, client_id=1, server_id=2, previous_server=None),
    ColdStartEvent(
        interval=1, client_id=1, server_id=3, hit=False,
        cached_bytes=0.0, required_bytes=1e6,
    ),
    MigrationEvent(
        interval=1, client_id=1, source_server=2, target_server=3, nbytes=5e5,
    ),
    FractionalTruncationEvent(
        interval=2, client_id=1, source_server=2, target_server=3,
        plan_bytes=1e6, budget_bytes=2e5,
    ),
    CacheEvictionEvent(interval=7, server_id=2, client_id=1),
    QueryWindowEvent(
        interval=2, client_id=1, server_id=3, queries=12, coldstart=True,
        end_bytes=9e5,
    ),
)


class TestEventTrace:
    def test_append_only_order_preserved(self):
        trace = EventTrace()
        for event in ALL_EVENTS:
            trace.record(event)
        assert len(trace) == len(ALL_EVENTS)
        assert trace.events == ALL_EVENTS
        assert list(trace) == list(ALL_EVENTS)

    def test_counts_and_filtering(self):
        trace = EventTrace()
        for event in ALL_EVENTS:
            trace.record(event)
        counts = trace.counts_by_kind()
        assert counts["migration"] == 1
        assert sum(counts.values()) == len(ALL_EVENTS)
        assert trace.of_kind("cold_start") == [ALL_EVENTS[1]]

    def test_every_event_round_trips_through_dict(self):
        for event in ALL_EVENTS:
            payload = event.as_dict()
            assert payload["kind"] == type(event).kind
            assert event_from_dict(payload) == event

    def test_event_from_dict_rejects_unknowns(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "nope", "interval": 0})
        with pytest.raises(ValueError):
            event_from_dict(
                {"kind": "cache_eviction", "interval": 0, "server_id": 1,
                 "client_id": 2, "extra": True}
            )


def _loaded_telemetry() -> Telemetry:
    t = Telemetry.create()
    t.registry.counter("sim.cold_start", {"outcome": "hit"}).inc(3)
    t.registry.gauge("sim.steps").set(9)
    t.registry.histogram("query.latency_seconds", (0.1, 1.0)).observe(0.4)
    for event in ALL_EVENTS:
        t.trace.record(event)
    return t


class TestExport:
    def test_snapshot_shape(self):
        t = _loaded_telemetry()
        doc = snapshot(t.registry, t.trace, meta={"run": "x"})
        assert doc["schema"] == SCHEMA
        assert doc["meta"] == {"run": "x"}
        assert {"counters", "gauges", "histograms"} <= set(doc["metrics"])
        assert len(doc["events"]) == len(ALL_EVENTS)

    def test_dumps_is_byte_deterministic(self):
        a = _loaded_telemetry()
        b = _loaded_telemetry()
        assert a.dumps() == b.dumps()
        # Recording order of distinct metrics must not matter.
        c = Telemetry.create()
        c.registry.histogram("query.latency_seconds", (0.1, 1.0)).observe(0.4)
        c.registry.gauge("sim.steps").set(9)
        c.registry.counter("sim.cold_start", {"outcome": "hit"}).inc(3)
        for event in ALL_EVENTS:
            c.trace.record(event)
        assert c.dumps() == a.dumps()

    def test_write_and_read_round_trip(self, tmp_path):
        t = _loaded_telemetry()
        path = write_snapshot(
            tmp_path / "snap" / "run.telemetry.json", t.registry, t.trace
        )
        doc = read_snapshot(path)
        assert doc == t.snapshot()
        rebuilt = [event_from_dict(e) for e in doc["events"]]
        assert tuple(rebuilt) == ALL_EVENTS

    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            read_snapshot(path)

    def test_dumps_without_trace_omits_events(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        doc = json.loads(dumps_snapshot(reg))
        assert "events" not in doc

    def test_metrics_csv_is_deterministic_and_complete(self):
        t = _loaded_telemetry()
        text = metrics_csv(t.registry)
        assert text == metrics_csv(t.registry)
        lines = text.strip().splitlines()
        assert lines[0] == "kind,name,labels,field,value"
        # 1 counter + 1 gauge + histogram (2 buckets + overflow + sum + count)
        assert len(lines) == 1 + 1 + 1 + 5

    def test_summarize_mentions_all_sections(self):
        t = _loaded_telemetry()
        text = "\n".join(summarize_snapshot(t.snapshot(meta={"run": "x"})))
        for needle in (
            "meta:", "counters (1):", "gauges (1):", "histograms (1):",
            "events (6):", "sim.cold_start{outcome=hit}", "migration: 1",
        ):
            assert needle in text

    def test_summarize_empty_snapshot(self):
        assert summarize_snapshot({"schema": SCHEMA, "metrics": {}}) == [
            "(empty snapshot)"
        ]
