"""Hypothesis property tests for the metrics registry.

Invariants pinned here:

* counters are monotone and equal the sum of their increments;
* a histogram's bucket counts always sum to its observation count, and
  its ``sum`` is the exact (float) running total of observations;
* merging two registries that recorded disjoint halves of an operation
  stream equals one registry that recorded the whole stream interleaved.
"""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.telemetry import Histogram, MetricsRegistry

amounts = st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False)
observations = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)

# Small pools keep collision (same metric touched from both halves) likely.
metric_names = st.sampled_from(["a", "b", "c"])
label_sets = st.sampled_from([None, {"k": "x"}, {"k": "y"}])

counter_ops = st.tuples(
    st.just("counter"), metric_names, label_sets, amounts
)
histogram_ops = st.tuples(
    st.just("histogram"), metric_names, label_sets, observations
)
ops_lists = st.lists(st.one_of(counter_ops, histogram_ops), max_size=60)

BUCKETS = (-10.0, 0.0, 10.0, 1e3)


def apply(registry: MetricsRegistry, op) -> None:
    kind, name, labels, value = op
    if kind == "counter":
        registry.counter(f"c.{name}", labels).inc(value)
    else:
        registry.histogram(f"h.{name}", BUCKETS, labels).observe(value)


class TestCounterProperties:
    @given(st.lists(amounts, max_size=50))
    @settings(max_examples=100)
    def test_monotone_and_equals_sum(self, increments):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        running = 0.0
        for amount in increments:
            before = counter.value
            counter.inc(amount)
            running += amount
            assert counter.value >= before  # never decreases
        assert counter.value == running  # same float additions, same result


class TestHistogramProperties:
    @given(st.lists(observations, max_size=50))
    @settings(max_examples=100)
    def test_count_sum_invariants(self, values):
        hist = Histogram("h", BUCKETS)
        running = 0.0
        for value in values:
            hist.observe(value)
            running += value
        assert sum(hist.counts) == hist.count == len(values)
        assert hist.sum == running
        if values:
            assert min(values) <= hist.mean <= max(values) or math.isclose(
                hist.mean, running / len(values)
            )

    @given(observations)
    def test_observation_lands_in_first_covering_bucket(self, value):
        hist = Histogram("h", BUCKETS)
        hist.observe(value)
        expected = len(BUCKETS)
        for i, bound in enumerate(BUCKETS):
            if value <= bound:
                expected = i
                break
        assert hist.counts[expected] == 1


class TestMergeProperties:
    @given(ops_lists, st.lists(st.booleans(), max_size=60))
    @settings(max_examples=100)
    def test_merge_of_halves_equals_interleaved(self, ops, coin_flips):
        """Split one op stream across two registries; merging them must
        reproduce the registry that saw every op in order."""
        left, right, whole = (
            MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        )
        for i, op in enumerate(ops):
            goes_left = coin_flips[i] if i < len(coin_flips) else True
            apply(left if goes_left else right, op)
            apply(whole, op)
        merged = left.merge(right)
        # Float addition is not associative in general, so compare with a
        # tolerance on values and exactly on structure/counts.
        got = merged.as_dict()
        want = whole.as_dict()
        assert [c["name"] for c in got["counters"]] == [
            c["name"] for c in want["counters"]
        ]
        for mine, theirs in zip(got["counters"], want["counters"]):
            assert mine["labels"] == theirs["labels"]
            assert math.isclose(
                mine["value"], theirs["value"], rel_tol=1e-9, abs_tol=1e-6
            )
        assert [h["name"] for h in got["histograms"]] == [
            h["name"] for h in want["histograms"]
        ]
        for mine, theirs in zip(got["histograms"], want["histograms"]):
            assert mine["labels"] == theirs["labels"]
            assert mine["counts"] == theirs["counts"]  # exact
            assert mine["count"] == theirs["count"]
            assert math.isclose(
                mine["sum"], theirs["sum"], rel_tol=1e-9, abs_tol=1e-6
            )

    @given(ops_lists)
    @settings(max_examples=50)
    def test_merge_into_empty_is_identity(self, ops):
        source, target = MetricsRegistry(), MetricsRegistry()
        for op in ops:
            apply(source, op)
        target.merge(source)
        assert target.as_dict() == source.as_dict()
