"""Order-independence of the registry merge used by the sharded runner.

Shard results arrive in whatever order the worker pool yields them, so
the merge that folds their registries must be a pure function of the
*set* of inputs: every permutation has to export byte-identical JSON and
CSV.  Pairwise :meth:`MetricsRegistry.merge` is order-dependent by
design (last gauge write wins, floats fold left to right) — these tests
pin :func:`merge_registries` as the safe alternative and document the
hazard it fixes.
"""

import itertools

import numpy as np
import pytest

from repro.telemetry import (
    EventTrace,
    MetricsRegistry,
    dumps_snapshot,
    merge_registries,
    metrics_csv,
)

BUCKETS = (0.1, 1.0, 10.0)


def make_shard_registry(seed: int) -> MetricsRegistry:
    """A registry shaped like one shard's output, with awkward floats."""
    rng = np.random.default_rng(seed)
    registry = MetricsRegistry()
    registry.counter("query.completed").inc(int(rng.integers(1, 500)))
    registry.counter("migration.bytes").inc(float(rng.uniform(0, 1e9)) + 0.1)
    registry.counter(
        "sim.cold_start", {"outcome": "hit"}
    ).inc(int(rng.integers(0, 9)) + 1)
    registry.gauge("sim.steps").set(int(rng.integers(1, 12)))
    registry.gauge("sim.num_clients").set(int(rng.integers(1, 40)))
    registry.gauge(
        "overload.queue_depth", {"server": str(seed)}
    ).set(int(rng.integers(0, 8)))
    histogram = registry.histogram("query.latency_seconds", BUCKETS)
    for _ in range(int(rng.integers(1, 30))):
        histogram.observe(float(rng.uniform(0.01, 20.0)))
    return registry


@pytest.fixture()
def shards():
    return [make_shard_registry(seed) for seed in range(5)]


RULES = {"sim.steps": "max"}


class TestPermutationInvariance:
    def test_json_export_identical_for_every_permutation(self, shards):
        baseline = None
        for permutation in itertools.permutations(shards):
            merged = merge_registries(permutation, RULES)
            text = dumps_snapshot(merged, EventTrace())
            if baseline is None:
                baseline = text
            assert text == baseline

    def test_csv_export_identical_for_every_permutation(self, shards):
        baseline = None
        for permutation in itertools.permutations(shards):
            text = metrics_csv(merge_registries(permutation, RULES))
            if baseline is None:
                baseline = text
            assert text == baseline

    def test_pairwise_merge_is_the_hazard_being_fixed(self, shards):
        # The legacy fold is gauge-order-dependent: merging A<-B and
        # B<-A disagree whenever gauge values differ.  This is exactly
        # why the sharded runner must not use it.
        a, b = shards[0], shards[1]
        assert a.value("sim.steps") != b.value("sim.steps")
        ab = MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba = MetricsRegistry()
        ba.merge(b)
        ba.merge(a)
        assert ab.value("sim.steps") != ba.value("sim.steps")
        order_free = merge_registries([a, b], RULES)
        assert order_free.value("sim.steps") == max(
            a.value("sim.steps"), b.value("sim.steps")
        )


class TestMergeSemantics:
    def test_counters_sum_exactly(self, shards):
        merged = merge_registries(shards)
        assert merged.value("query.completed") == sum(
            s.value("query.completed") for s in shards
        )

    def test_gauge_rules(self, shards):
        steps = [s.value("sim.steps") for s in shards]
        assert merge_registries(shards, {"sim.steps": "max"}).value(
            "sim.steps"
        ) == max(steps)
        assert merge_registries(shards, {"sim.steps": "min"}).value(
            "sim.steps"
        ) == min(steps)
        assert merge_registries(shards).value("sim.steps") == sum(steps)

    def test_labelled_series_stay_disjoint(self, shards):
        merged = merge_registries(shards, RULES)
        series = dict(
            (labels["server"], value)
            for labels, value in merged.series("overload.queue_depth")
        )
        assert sorted(series) == [str(seed) for seed in range(5)]
        for seed, shard in enumerate(shards):
            assert series[str(seed)] == shard.value(
                "overload.queue_depth", {"server": str(seed)}
            )

    def test_histograms_sum_bucket_by_bucket(self, shards):
        merged = merge_registries(shards)
        histogram = merged.get("query.latency_seconds")
        parts = [s.get("query.latency_seconds") for s in shards]
        assert histogram.count == sum(p.count for p in parts)
        for i, tally in enumerate(histogram.counts):
            assert tally == sum(p.counts[i] for p in parts)

    def test_empty_input_gives_empty_registry(self):
        merged = merge_registries([])
        assert list(merged.metrics()) == []

    def test_single_input_roundtrips(self, shards):
        merged = merge_registries([shards[0]])
        assert metrics_csv(merged) == metrics_csv(shards[0])


class TestMergeValidation:
    def test_kind_mismatch_rejected(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1.0)
        with pytest.raises(TypeError, match="kind mismatch"):
            merge_registries([a, b])

    def test_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds"):
            merge_registries([a, b])

    def test_unknown_gauge_rule_rejected(self):
        with pytest.raises(ValueError, match="gauge rule"):
            merge_registries([], {"sim.steps": "median"})
        with pytest.raises(ValueError, match="gauge rule"):
            merge_registries([], default_gauge_rule="average")
