"""Smoke tests: the example scripts must keep running end to end.

The heavier examples (smart-city simulation, GPU-aware partitioning) are
exercised through the same library calls by other tests and benchmarks;
here the fast ones run verbatim so documentation and code cannot drift.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example: {path}"
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "optimal plan" in out
        assert "upload schedule" in out

    def test_fractional_migration(self, capsys):
        out = run_example("fractional_migration.py", capsys)
        assert "inception" in out
        assert "vs full migration" in out

    def test_collaborative_inference(self, capsys):
        out = run_example("collaborative_inference.py", capsys)
        assert "identical to local: True" in out

    @pytest.mark.slow
    def test_cognitive_assistance(self, capsys):
        out = run_example("cognitive_assistance.py", capsys)
        assert "peak after hand-off" in out

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 6
        for script in scripts:
            source = script.read_text()
            assert source.startswith("#!/usr/bin/env python3"), script.name
            assert '"""' in source, script.name
            assert "def main()" in source, script.name


class TestTopLevelApi:
    def test_headline_imports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_quickstart_snippet_runs(self):
        from repro import (
            DNNPartitioner,
            ExecutionProfile,
            PerDNNConfig,
            build_model,
            odroid_xu4,
            titan_xp_server,
        )

        config = PerDNNConfig()
        graph = build_model("mobilenet")
        profile = ExecutionProfile.build(graph, odroid_xu4(), titan_xp_server())
        partitioner = DNNPartitioner(
            profile, config.network.uplink_bps, config.network.downlink_bps
        )
        result = partitioner.partition(server_slowdown=1.0)
        assert result.plan.latency < partitioner.local_latency()
