"""Tests for the synthetic dataset generators and their statistics."""

import numpy as np
import pytest

from repro.geo.geometry import BoundingBox
from repro.trajectories.stats import dataset_statistics
from repro.trajectories.synthetic import (
    SyntheticMobilityConfig,
    generate_dataset,
    geolife_like,
    kaist_like,
)


@pytest.fixture(scope="module")
def kaist():
    return kaist_like(np.random.default_rng(3), num_users=10, duration_steps=200)


@pytest.fixture(scope="module")
def geolife():
    return geolife_like(np.random.default_rng(3), num_users=15, duration_steps=300)


class TestGenerators:
    def test_kaist_shape(self, kaist):
        assert kaist.num_users == 10
        assert kaist.interval_seconds == 30.0
        assert all(len(t) == 200 for t in kaist.trajectories)

    def test_points_inside_region(self, kaist):
        box = kaist.bbox
        # GPS noise may poke slightly outside the clamped positions.
        slack = 25.0
        wide = BoundingBox(
            box.min_x - slack, box.min_y - slack,
            box.max_x + slack, box.max_y + slack,
        )
        for point in kaist.all_points():
            assert wide.contains((point[0], point[1]))

    def test_deterministic_under_seed(self):
        a = kaist_like(np.random.default_rng(9), num_users=3, duration_steps=50)
        b = kaist_like(np.random.default_rng(9), num_users=3, duration_steps=50)
        for ta, tb in zip(a.trajectories, b.trajectories):
            assert np.allclose(ta.points, tb.points)

    def test_different_seeds_differ(self):
        a = kaist_like(np.random.default_rng(1), num_users=3, duration_steps=50)
        b = kaist_like(np.random.default_rng(2), num_users=3, duration_steps=50)
        assert not np.allclose(a.trajectories[0].points, b.trajectories[0].points)

    def test_speed_regimes_match_paper(self, kaist, geolife):
        kaist_stats = dataset_statistics(kaist)
        geolife_stats = dataset_statistics(geolife.subsample(4))
        # KAIST walkers ~0.5 m/s, Geolife mixed modes several m/s.
        assert 0.2 < kaist_stats.average_speed_mps < 1.2
        assert geolife_stats.average_speed_mps > 2.0
        assert (
            geolife_stats.cell_changes_per_step
            > kaist_stats.cell_changes_per_step
        )

    def test_config_validation(self):
        box = BoundingBox(0, 0, 100, 100)
        with pytest.raises(ValueError, match="sum to 1"):
            SyntheticMobilityConfig(
                name="bad", bbox=box, num_users=1, interval_seconds=10,
                duration_steps=10, num_pois=5,
                mode_speeds=((1.0, 0.5),), mean_dwell_seconds=10,
                destination_scale=50,
            )
        with pytest.raises(ValueError, match="invalid"):
            SyntheticMobilityConfig(
                name="bad", bbox=box, num_users=0, interval_seconds=10,
                duration_steps=10, num_pois=5,
                mode_speeds=((1.0, 1.0),), mean_dwell_seconds=10,
                destination_scale=50,
            )

    def test_generate_dataset_custom_config(self, rng):
        config = SyntheticMobilityConfig(
            name="custom", bbox=BoundingBox(0, 0, 500, 500),
            num_users=2, interval_seconds=10.0, duration_steps=30,
            num_pois=6, mode_speeds=((2.0, 1.0),),
            mean_dwell_seconds=30.0, destination_scale=200.0,
        )
        dataset = generate_dataset(config, rng)
        assert dataset.num_users == 2
        assert dataset.name == "custom"


class TestStatistics:
    def test_fields_populated(self, kaist):
        stats = dataset_statistics(kaist)
        assert stats.num_users == 10
        assert stats.visited_cells > 0
        assert stats.region_km == (1.5, 2.0)
        assert 0.0 <= stats.cell_changes_per_step <= 1.0
        assert stats.moving_speed_mps >= stats.average_speed_mps * 0.5
