"""Tests for heterogeneous (per-client model) simulations."""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.dnn.models import tiny_branchy_dnn, tiny_linear_dnn
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def mixed_partitioners():
    client, server = odroid_xu4(), titan_xp_server()
    out = []
    for graph in (tiny_linear_dnn(), tiny_branchy_dnn()):
        profile = ExecutionProfile.build(graph, client, server)
        out.append(DNNPartitioner(profile, 35e6, 50e6))
    return out


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(12), num_users=8, duration_steps=120)


class TestHeterogeneousSimulation:
    def test_round_robin_model_assignment(self, dataset, mixed_partitioners):
        settings = SimulationSettings(
            policy=MigrationPolicy.PERDNN, max_steps=25, seed=2,
            use_contention_estimator=False,
        )
        result = run_large_scale(dataset, mixed_partitioners, settings)
        per_model = result.extras["per_model_queries"]
        assert set(per_model) == {"tiny_linear_dnn", "tiny_branchy_dnn"}
        assert all(count > 0 for count in per_model.values())
        assert sum(per_model.values()) == result.total_queries
        assert result.model == "tiny_branchy_dnn+tiny_linear_dnn"

    def test_single_partitioner_still_works(self, dataset, mixed_partitioners):
        settings = SimulationSettings(
            policy=MigrationPolicy.NONE, max_steps=20, seed=2,
            use_contention_estimator=False,
        )
        result = run_large_scale(dataset, mixed_partitioners[0], settings)
        assert result.model == "tiny_linear_dnn"
        assert list(result.extras["per_model_queries"]) == ["tiny_linear_dnn"]

    def test_singleton_list_equivalent_to_scalar(self, dataset, mixed_partitioners):
        settings = SimulationSettings(
            policy=MigrationPolicy.NONE, max_steps=20, seed=2,
            use_contention_estimator=False,
        )
        scalar = run_large_scale(dataset, mixed_partitioners[0], settings)
        as_list = run_large_scale(dataset, [mixed_partitioners[0]], settings)
        assert scalar.total_queries == as_list.total_queries
        assert scalar.hits == as_list.hits

    def test_empty_pool_rejected(self, dataset):
        settings = SimulationSettings(
            policy=MigrationPolicy.NONE, max_steps=5, seed=2,
            use_contention_estimator=False,
        )
        with pytest.raises(ValueError):
            run_large_scale(dataset, [], settings)

    def test_migration_ships_each_clients_own_model(
        self, dataset, mixed_partitioners
    ):
        settings = SimulationSettings(
            policy=MigrationPolicy.PERDNN, max_steps=25, seed=2,
            use_contention_estimator=False,
        )
        result = run_large_scale(dataset, mixed_partitioners, settings)
        # Migrated bytes never exceed what the largest model would need
        # per (client, target) pair; with mixed models the totals differ
        # from an all-largest-model run.
        homogeneous = run_large_scale(
            dataset, mixed_partitioners[0], settings
        )
        assert result.migrated_bytes != homogeneous.migrated_bytes


class TestMasterPartitionerResolution:
    def test_mapping_requires_client_id(self, mixed_partitioners):
        from repro.core.config import PerDNNConfig
        from repro.core.master import MasterServer
        from repro.geo.hexgrid import HexGrid
        from repro.geo.wifi import EdgeServerRegistry

        registry = EdgeServerRegistry(HexGrid(50.0))
        master = MasterServer(
            registry=registry,
            partitioner={0: mixed_partitioners[0]},
            config=PerDNNConfig(),
            rng=np.random.default_rng(0),
            policy=MigrationPolicy.NONE,
        )
        with pytest.raises(ValueError):
            master.partitioner_for(None)
        assert master.partitioner_for(0) is mixed_partitioners[0]
