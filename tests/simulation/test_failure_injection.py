"""Failure-injection and edge-condition tests for the simulator.

These push the system into unfriendly regimes — aggressive TTL eviction,
zero migration budgets, cell-oscillating clients, degenerate traces — and
check the invariants hold (accounting stays consistent, no crashes, the
expected degradations appear).
"""

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.geo.geometry import BoundingBox
from repro.geo.hexgrid import HexCell, HexGrid
from repro.mobility.trajectory import Trajectory, TrajectoryDataset
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(33), num_users=8, duration_steps=140)


def run(dataset, partitioner, *, config=None, **settings_kwargs):
    defaults = dict(
        policy=MigrationPolicy.PERDNN, migration_radius_m=100.0,
        max_steps=30, seed=4,
    )
    defaults.update(settings_kwargs)
    settings = SimulationSettings(**defaults)
    return run_large_scale(dataset, partitioner, settings, config=config)


class TestAggressiveTTL:
    def test_ttl_one_still_consistent(self, dataset, tiny_partitioner):
        config = PerDNNConfig(ttl_intervals=1, migration_radius_m=100.0)
        result = run(dataset, tiny_partitioner, config=config)
        assert result.hits + result.misses == (
            result.server_changes + result.num_clients
        )
        assert result.coldstart_queries <= result.total_queries

    def test_short_ttl_never_beats_long_ttl(self, dataset, tiny_partitioner):
        short = run(
            dataset, tiny_partitioner,
            config=PerDNNConfig(ttl_intervals=1, migration_radius_m=100.0),
        )
        long = run(
            dataset, tiny_partitioner,
            config=PerDNNConfig(ttl_intervals=10, migration_radius_m=100.0),
        )
        assert short.hit_ratio <= long.hit_ratio + 0.05


class TestZeroBudget:
    def test_zero_crowded_budget_blocks_all_migration(
        self, dataset, tiny_partitioner
    ):
        full = run(dataset, tiny_partitioner)
        blocked = run(
            dataset, tiny_partitioner,
            crowded_servers=frozenset(range(full.num_servers)),
            crowded_byte_budget=0.0,
        )
        assert blocked.migrated_bytes == 0.0
        assert blocked.uplink.total_bytes == 0.0
        # Without proactive bytes, hits can only come from the client's own
        # still-cached uploads (revisits), never exceeding the full run.
        assert blocked.hit_ratio <= full.hit_ratio


class TestHitThreshold:
    def test_lower_hit_threshold_counts_more_hits(self, dataset, tiny_partitioner):
        strict = run(
            dataset, tiny_partitioner,
            config=PerDNNConfig(hit_byte_fraction=1.0, migration_radius_m=100.0),
        )
        lenient = run(
            dataset, tiny_partitioner,
            config=PerDNNConfig(hit_byte_fraction=0.3, migration_radius_m=100.0),
        )
        assert lenient.hits >= strict.hits


class TestOscillatingClient:
    @pytest.fixture
    def ping_pong_dataset(self):
        """Clients bouncing between two adjacent cells every interval."""
        grid = HexGrid(50.0)
        a = grid.center(HexCell(0, 0))
        b = grid.center(HexCell(2, 0))
        points = np.array([a, b] * 20)
        trajectories = tuple(
            Trajectory(user, 30.0, points + user) for user in range(4)
        )
        return TrajectoryDataset(
            name="ping-pong",
            interval_seconds=30.0,
            bbox=BoundingBox(-500, -500, 500, 500),
            trajectories=trajectories,
        )

    def test_baseline_thrashes(self, ping_pong_dataset, tiny_partitioner):
        result = run(
            ping_pong_dataset, tiny_partitioner,
            policy=MigrationPolicy.NONE, use_contention_estimator=False,
        )
        # Every interval is a server change: constant cold starts.
        assert result.misses == result.server_changes + result.num_clients
        assert result.hit_ratio == 0.0

    def test_perdnn_caches_both_cells(self, ping_pong_dataset, tiny_partitioner):
        result = run(
            ping_pong_dataset, tiny_partitioner,
            use_contention_estimator=False,
        )
        # After warm-up, both cells hold the layers within TTL: the client
        # upload persists at each revisited server, so most bounces hit.
        assert result.hit_ratio > 0.5


class TestDegenerateTraces:
    def test_single_point_traces_are_skipped(self, tiny_partitioner):
        grid = HexGrid(50.0)
        ok_points = np.tile(grid.center(HexCell(0, 0)), (10, 1))
        trajectories = (
            Trajectory(0, 30.0, np.array([grid.center(HexCell(1, 0))])),
            Trajectory(1, 30.0, ok_points),
        )
        dataset = TrajectoryDataset(
            name="degenerate",
            interval_seconds=30.0,
            bbox=BoundingBox(-500, -500, 500, 500),
            trajectories=trajectories,
        )
        result = run(
            dataset, tiny_partitioner,
            policy=MigrationPolicy.NONE, use_contention_estimator=False,
            replay_fraction=0.5,
        )
        assert result.num_clients == 1  # the single-point trace dropped

    def test_stationary_client_has_one_cold_start(self, tiny_partitioner):
        grid = HexGrid(50.0)
        points = np.tile(grid.center(HexCell(0, 0)), (20, 1))
        dataset = TrajectoryDataset(
            name="stationary",
            interval_seconds=30.0,
            bbox=BoundingBox(-500, -500, 500, 500),
            trajectories=(Trajectory(0, 30.0, points),),
        )
        result = run(
            dataset, tiny_partitioner,
            policy=MigrationPolicy.NONE, use_contention_estimator=False,
        )
        assert result.misses == 1
        assert result.server_changes == 0
