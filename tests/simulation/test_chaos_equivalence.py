"""The headline robustness invariant, pinned end to end.

A sharded run with deterministically injected worker failures — chaos
kills, hangs hitting the per-shard timeout, retries, even a mid-run
interrupt resumed from checkpoint — must export *the same telemetry
bytes* as a clean run at the same seed and shard size.  Failures are
execution noise; the simulated world never sees them.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.faults import WorkerChaos, get_profile
from repro.overload import OverloadConfig, SheddingPolicy
from repro.simulation.large_scale import SimulationSettings
from repro.simulation.sharding import run_large_scale_sharded
from repro.simulation.supervisor import ShardError, SupervisorConfig
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(3), num_users=14, duration_steps=60)


def make_settings(**kwargs):
    kwargs.setdefault("policy", MigrationPolicy.PERDNN)
    kwargs.setdefault("max_steps", 4)
    kwargs.setdefault("seed", 3)
    return SimulationSettings(**kwargs)


def run_sharded(dataset, partitioner, settings, **kwargs):
    kwargs.setdefault("shard_size", 4)
    return run_large_scale_sharded(dataset, partitioner, settings, **kwargs)


#: Kills every shard's first attempt, lets every retry through: full
#: failure coverage with a deterministic, flake-free outcome.
KILL_ALL_ONCE = WorkerChaos(seed=7, kill_rate=1.0, max_injections_per_shard=1)


class TestChaosInvariant:
    @pytest.fixture(scope="class")
    def clean(self, dataset, tiny_partitioner):
        return run_sharded(dataset, tiny_partitioner, make_settings())

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_kill_every_shard_once_bytes_identical(
        self, dataset, tiny_partitioner, clean, workers
    ):
        supervision = SupervisorConfig(
            chaos=KILL_ALL_ONCE, backoff_base_seconds=0.0
        )
        chaotic = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            workers=workers, supervision=supervision,
        )
        assert chaotic.telemetry.dumps() == clean.telemetry.dumps()
        info = chaotic.extras["sharding"]
        assert info["retries"] == info["planned_shards"]
        assert info["failed_shards"] == []

    def test_chaos_with_faults_and_overload(self, dataset, tiny_partitioner):
        # Worker-level chaos composes with in-world fault injection and
        # overload protection without perturbing either.
        settings = make_settings(
            faults=get_profile("churn"),
            overload=OverloadConfig(policy=SheddingPolicy.REDIRECT),
        )
        clean = run_sharded(dataset, tiny_partitioner, settings)
        chaotic = run_sharded(
            dataset, tiny_partitioner, settings, workers=2,
            supervision=SupervisorConfig(
                chaos=KILL_ALL_ONCE, backoff_base_seconds=0.0
            ),
        )
        assert chaotic.telemetry.dumps() == clean.telemetry.dumps()

    def test_chaos_with_spill_and_remote(
        self, dataset, tiny_partitioner, clean, shard_worker
    ):
        # The full stack at once: dataset spill, a mixed local/remote
        # fleet, and chaos killing every shard's first attempt.  A chaos
        # injection inside the remote listener kills only its disposable
        # handler process; the supervisor sees the dropped connection,
        # retries, and the merged bytes never move.
        chaotic = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            workers=2, remote_workers=[shard_worker], spill_datasets=True,
            supervision=SupervisorConfig(
                chaos=KILL_ALL_ONCE, backoff_base_seconds=0.0,
                max_attempts=5,
            ),
        )
        assert chaotic.telemetry.dumps() == clean.telemetry.dumps()
        info = chaotic.extras["sharding"]
        assert info["retries"] >= info["planned_shards"]
        assert info["failed_shards"] == []

    def test_chaos_with_reference_migrate(self, dataset, tiny_partitioner, clean):
        # Chaos retries must stay byte-stable on the scalar migration
        # tail too — supervision and the migrate toggle are orthogonal.
        from repro.core.master import reference_migrate

        with reference_migrate():
            chaotic = run_sharded(
                dataset, tiny_partitioner, make_settings(),
                workers=2,
                supervision=SupervisorConfig(
                    chaos=KILL_ALL_ONCE, backoff_base_seconds=0.0
                ),
            )
        assert chaotic.telemetry.dumps() == clean.telemetry.dumps()

    def test_hang_with_timeout_bytes_identical(
        self, dataset, tiny_partitioner, clean
    ):
        supervision = SupervisorConfig(
            chaos=WorkerChaos(
                seed=5, hang_rate=1.0, hang_seconds=60.0,
                max_injections_per_shard=1,
            ),
            timeout_seconds=2.0,
            backoff_base_seconds=0.0,
        )
        chaotic = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            workers=2, supervision=supervision,
        )
        assert chaotic.telemetry.dumps() == clean.telemetry.dumps()

    def test_interrupt_then_resume_bytes_identical(
        self, dataset, tiny_partitioner, clean, tmp_path
    ):
        # A poison shard aborts the run mid-way (completed shards are
        # already spilled); resuming without chaos finishes the rest and
        # must reproduce the clean bytes exactly.
        checkpoint = tmp_path / "ckpt"
        with pytest.raises(ShardError):
            run_sharded(
                dataset, tiny_partitioner, make_settings(),
                checkpoint_dir=checkpoint,
                supervision=SupervisorConfig(
                    chaos=WorkerChaos(always_kill=(1,)),
                    max_attempts=2, backoff_base_seconds=0.0,
                ),
            )
        resumed = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint, resume=True,
        )
        assert resumed.telemetry.dumps() == clean.telemetry.dumps()
        info = resumed.extras["sharding"]
        assert info["resumed_shards"]  # something really was skipped
        assert 1 not in info["resumed_shards"]


class TestPartialMerge:
    def test_conservation_over_surviving_shards(
        self, dataset, tiny_partitioner
    ):
        clean = run_sharded(dataset, tiny_partitioner, make_settings())
        supervision = SupervisorConfig(
            chaos=WorkerChaos(always_kill=(1,)),
            max_attempts=2, backoff_base_seconds=0.0, allow_partial=True,
        )
        partial = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            workers=2, supervision=supervision,
        )
        info = partial.extras["sharding"]
        assert info["failed_shards"] == [1]
        assert info["shards"] == info["planned_shards"] - 1
        # Every planned client is accounted for: merged or reported lost.
        assert (
            sum(info["clients_per_shard"]) + info["failed_clients"]
            == clean.num_clients
        )
        assert partial.num_clients == sum(info["clients_per_shard"])
        # Surviving shards contribute exactly their clean per-shard load.
        clean_per_shard = clean.extras["sharding"]["clients_per_shard"]
        expected = [
            count for index, count in enumerate(clean_per_shard)
            if index != 1
        ]
        assert info["clients_per_shard"] == expected

    def test_fail_fast_without_allow_partial(self, dataset, tiny_partitioner):
        supervision = SupervisorConfig(
            chaos=WorkerChaos(always_kill=(0,)),
            max_attempts=2, backoff_base_seconds=0.0,
        )
        with pytest.raises(ShardError) as excinfo:
            run_sharded(
                dataset, tiny_partitioner, make_settings(),
                workers=2, supervision=supervision,
            )
        assert excinfo.value.shard_index == 0
        assert len(excinfo.value.failures) == 2
