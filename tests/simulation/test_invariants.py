"""Invariant tests for the simulation core (ISSUE 1 satellite).

Accounting identities the §4.B metrics rest on:

* ``hit_ratio`` is well-defined (0.0) when nothing ever associated;
* cold hits + cold misses == total new associations;
* the PerDNN policy never does worse on hit ratio than no migration.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import (
    LargeScaleResult,
    SimulationSettings,
    run_large_scale,
)
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(44), num_users=7, duration_steps=100)


def run(dataset, partitioner, policy, **kwargs):
    settings = SimulationSettings(
        policy=policy, migration_radius_m=100.0, max_steps=25, seed=9, **kwargs
    )
    return run_large_scale(dataset, partitioner, settings)


class TestHitRatioGuards:
    def test_zero_associations_is_zero_not_nan(self):
        result = LargeScaleResult(policy="none", dataset="d", model="m")
        assert result.hits == result.misses == 0
        assert result.hit_ratio == 0.0  # no ZeroDivisionError

    def test_hit_ratio_bounded(self, dataset, tiny_partitioner):
        for policy in (
            MigrationPolicy.NONE,
            MigrationPolicy.PERDNN,
            MigrationPolicy.OPTIMAL,
        ):
            result = run(dataset, tiny_partitioner, policy)
            assert 0.0 <= result.hit_ratio <= 1.0


class TestAssociationAccounting:
    @pytest.mark.parametrize(
        "policy",
        [MigrationPolicy.NONE, MigrationPolicy.PERDNN, MigrationPolicy.OPTIMAL],
    )
    def test_cold_outcomes_equal_new_associations(
        self, dataset, tiny_partitioner, policy
    ):
        result = run(dataset, tiny_partitioner, policy)
        registry = result.telemetry.registry
        associations = int(registry.value("sim.associations"))
        assert associations > 0
        assert result.hits + result.misses == associations
        # New associations are each client's first plus every server change.
        assert associations == result.server_changes + result.num_clients
        # The event trace tells the same story as the counters.
        assert len(result.telemetry.trace.of_kind("association")) == associations
        assert len(result.telemetry.trace.of_kind("cold_start")) == associations

    def test_coldstart_queries_subset_of_total(self, dataset, tiny_partitioner):
        result = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        assert 0 <= result.coldstart_queries <= result.total_queries


class TestPolicyOrdering:
    def test_perdnn_hit_ratio_at_least_no_migration(
        self, dataset, tiny_partitioner
    ):
        baseline = run(dataset, tiny_partitioner, MigrationPolicy.NONE)
        perdnn = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        assert perdnn.hit_ratio >= baseline.hit_ratio
        # On this trace proactive migration genuinely helps.
        assert perdnn.hit_ratio > 0.0
        assert baseline.hit_ratio == 0.0  # IONN keeps nothing ahead of moves

    def test_optimal_dominates_perdnn(self, dataset, tiny_partitioner):
        perdnn = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        optimal = run(dataset, tiny_partitioner, MigrationPolicy.OPTIMAL)
        assert optimal.hit_ratio == 1.0
        assert optimal.hit_ratio >= perdnn.hit_ratio


class TestTrafficConservation:
    def test_every_byte_sent_is_received(self, dataset, tiny_partitioner):
        result = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        assert result.uplink is not None and result.downlink is not None
        assert result.uplink.total_bytes == pytest.approx(
            result.downlink.total_bytes
        )
        # The shared registry's backhaul counter agrees with the meter.
        backhaul = result.telemetry.registry.value("net.backhaul_bytes")
        assert backhaul == pytest.approx(result.uplink.total_bytes)
