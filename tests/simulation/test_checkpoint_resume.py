"""Checkpoint spill, streaming merge, resume, and the fingerprint guard.

The checkpoint directory is a faithful, byte-deterministic externalized
form of the per-shard results: merging streamed from disk must equal the
in-memory merge exactly, a resumed run must equal an uninterrupted one,
and a checkpoint written under different settings must be rejected
before any shard is reused.
"""

import json

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.simulation.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    ShardRecord,
    run_fingerprint,
)
from repro.simulation.large_scale import SimulationSettings
from repro.simulation.sharding import run_large_scale_sharded
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(3), num_users=14, duration_steps=60)


def make_settings(**kwargs):
    kwargs.setdefault("policy", MigrationPolicy.PERDNN)
    kwargs.setdefault("max_steps", 4)
    kwargs.setdefault("seed", 3)
    return SimulationSettings(**kwargs)


def run_sharded(dataset, partitioner, settings, **kwargs):
    kwargs.setdefault("shard_size", 4)
    return run_large_scale_sharded(dataset, partitioner, settings, **kwargs)


class TestCheckpointedMerge:
    def test_streamed_merge_matches_in_memory(
        self, dataset, tiny_partitioner, tmp_path
    ):
        settings = make_settings()
        in_memory = run_sharded(dataset, tiny_partitioner, settings)
        checkpointed = run_sharded(
            dataset, tiny_partitioner, settings,
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert (
            checkpointed.telemetry.dumps() == in_memory.telemetry.dumps()
        )
        assert checkpointed.extras["partition_cache"] == (
            in_memory.extras["partition_cache"]
        )
        assert checkpointed.uplink == in_memory.uplink
        assert checkpointed.downlink == in_memory.downlink

    def test_shard_files_and_manifest_written(
        self, dataset, tiny_partitioner, tmp_path
    ):
        checkpoint = tmp_path / "ckpt"
        result = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint,
        )
        shards = result.extras["sharding"]["planned_shards"]
        names = sorted(p.name for p in checkpoint.iterdir())
        assert "MANIFEST.json" in names
        assert [n for n in names if n.startswith("shard-")] == [
            f"shard-{i:05d}.json" for i in range(shards)
        ]
        manifest = json.loads((checkpoint / "MANIFEST.json").read_text())
        assert manifest["schema"] == CHECKPOINT_SCHEMA
        assert manifest["num_shards"] == shards

    def test_full_resume_skips_every_shard(
        self, dataset, tiny_partitioner, tmp_path
    ):
        checkpoint = tmp_path / "ckpt"
        first = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint,
        )
        resumed = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint, resume=True,
        )
        assert resumed.telemetry.dumps() == first.telemetry.dumps()
        info = resumed.extras["sharding"]
        assert info["resumed_shards"] == list(
            range(info["planned_shards"])
        )

    def test_corrupt_shard_file_is_rerun(
        self, dataset, tiny_partitioner, tmp_path
    ):
        checkpoint = tmp_path / "ckpt"
        first = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint,
        )
        (checkpoint / "shard-00001.json").write_text("{torn write")
        resumed = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint, resume=True,
        )
        assert resumed.telemetry.dumps() == first.telemetry.dumps()
        assert 1 not in resumed.extras["sharding"]["resumed_shards"]

    def test_record_events_false_roundtrip(
        self, dataset, tiny_partitioner, tmp_path
    ):
        # NullEventTrace shards must survive the spill/reload cycle: the
        # merged result still has empty events and identical metrics.
        settings = make_settings()
        lean = run_sharded(
            dataset, tiny_partitioner, settings, record_events=False
        )
        checkpoint = tmp_path / "ckpt"
        checkpointed = run_sharded(
            dataset, tiny_partitioner, settings, record_events=False,
            checkpoint_dir=checkpoint,
        )
        assert checkpointed.telemetry.dumps() == lean.telemetry.dumps()
        assert list(checkpointed.telemetry.trace) == []
        resumed = run_sharded(
            dataset, tiny_partitioner, settings, record_events=False,
            checkpoint_dir=checkpoint, resume=True,
        )
        assert resumed.telemetry.dumps() == lean.telemetry.dumps()


class TestGuards:
    def test_stale_checkpoint_rejected(
        self, dataset, tiny_partitioner, tmp_path
    ):
        checkpoint = tmp_path / "ckpt"
        run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint,
        )
        with pytest.raises(ValueError, match="stale checkpoint"):
            run_sharded(
                dataset, tiny_partitioner, make_settings(seed=99),
                checkpoint_dir=checkpoint, resume=True,
            )
        with pytest.raises(ValueError, match="stale checkpoint"):
            run_sharded(
                dataset, tiny_partitioner, make_settings(),
                shard_size=5, checkpoint_dir=checkpoint, resume=True,
            )

    def test_fresh_run_rejects_used_directory(
        self, dataset, tiny_partitioner, tmp_path
    ):
        checkpoint = tmp_path / "ckpt"
        run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint,
        )
        with pytest.raises(ValueError, match="already holds a run"):
            run_sharded(
                dataset, tiny_partitioner, make_settings(),
                checkpoint_dir=checkpoint,
            )

    def test_resume_without_manifest_rejected(
        self, dataset, tiny_partitioner, tmp_path
    ):
        with pytest.raises(ValueError, match="nothing to resume"):
            run_sharded(
                dataset, tiny_partitioner, make_settings(),
                checkpoint_dir=tmp_path / "empty", resume=True,
            )

    def test_unusable_checkpoint_dir_rejected(
        self, dataset, tiny_partitioner, tmp_path
    ):
        occupied = tmp_path / "occupied"
        occupied.write_text("a file, not a directory")
        with pytest.raises(ValueError, match="not a dir|not .*writable"):
            run_sharded(
                dataset, tiny_partitioner, make_settings(),
                checkpoint_dir=occupied,
            )


class TestFingerprint:
    def make_inputs(self, dataset):
        settings = make_settings()
        config = PerDNNConfig(migration_radius_m=settings.migration_radius_m)
        return dict(
            dataset=dataset, settings=settings, config=config,
            shard_size=4, model_names=["tiny"], record_events=True,
            fast_simulate=True, fast_predict=True,
        )

    def test_stable(self, dataset):
        inputs = self.make_inputs(dataset)
        assert run_fingerprint(**inputs) == run_fingerprint(**inputs)

    @pytest.mark.parametrize(
        "change",
        [
            {"shard_size": 8},
            {"record_events": False},
            {"fast_simulate": False},
            {"fast_predict": False},
            {"model_names": ["other"]},
        ],
    )
    def test_sensitive_to_every_input(self, dataset, change):
        inputs = self.make_inputs(dataset)
        baseline = run_fingerprint(**inputs)
        assert run_fingerprint(**{**inputs, **change}) != baseline

    def test_sensitive_to_settings_and_data(self, dataset):
        inputs = self.make_inputs(dataset)
        baseline = run_fingerprint(**inputs)
        changed = dict(inputs, settings=make_settings(seed=4))
        assert run_fingerprint(**changed) != baseline
        other_data = kaist_like(
            np.random.default_rng(4), num_users=14, duration_steps=60
        )
        assert run_fingerprint(**dict(inputs, dataset=other_data)) != baseline


class TestShardRecordRoundtrip:
    def test_json_roundtrip_is_exact(self, dataset, tiny_partitioner, tmp_path):
        # Spill one run, reload every record, and compare documents:
        # JSON float round-tripping must be lossless.
        checkpoint = tmp_path / "ckpt"
        result = run_sharded(
            dataset, tiny_partitioner, make_settings(),
            checkpoint_dir=checkpoint,
        )
        store = CheckpointStore(checkpoint)
        for index in range(result.extras["sharding"]["planned_shards"]):
            record = store.load_shard(index)
            assert isinstance(record, ShardRecord)
            assert record.index == index
            again = ShardRecord.from_doc(record.to_doc())
            assert again.to_doc() == record.to_doc()

    def test_from_doc_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            ShardRecord.from_doc({"schema": "bogus/9"})
