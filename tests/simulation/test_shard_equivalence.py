"""Equivalence pins for the sharded city-scale simulator.

Three layers of same-seed byte-identity:

* the sharded run is a pure function of ``(dataset, settings,
  shard_size)`` — worker counts 1, 2, and 4 export identical telemetry
  snapshots, with faults and overload protection enabled too;
* the struct-of-arrays fast path and the scalar reference loop
  (:func:`repro.simulation.large_scale.reference_simulate`) agree byte
  for byte, sharded and unsharded, across every subsystem combination;
* dropping the event trace (``record_events=False``) changes events
  only — every counter and histogram stays identical.

Plus the decomposition invariants of :func:`plan_shards` and the
validation surface of :func:`run_large_scale_sharded`.
"""

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.faults import get_profile
from repro.overload import OverloadConfig, SheddingPolicy
from repro.simulation.large_scale import (
    SimulationSettings,
    fast_simulate_enabled,
    reference_simulate,
    run_large_scale,
    set_fast_simulate,
)
from repro.simulation.sharding import (
    plan_shards,
    run_large_scale_sharded,
    shard_seed,
)
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(3), num_users=18, duration_steps=60)


def make_settings(**kwargs):
    kwargs.setdefault("policy", MigrationPolicy.PERDNN)
    kwargs.setdefault("max_steps", 5)
    kwargs.setdefault("seed", 3)
    return SimulationSettings(**kwargs)


SUBSYSTEMS = {
    "plain": {},
    "faults": {"faults": get_profile("churn")},
    "overload": {"overload": OverloadConfig(policy=SheddingPolicy.REDIRECT)},
    "both": {
        "faults": get_profile("flash-crowd"),
        "overload": OverloadConfig(policy=SheddingPolicy.DEGRADE),
    },
}


def run_sharded(dataset, partitioner, settings, **kwargs):
    kwargs.setdefault("shard_size", 4)
    return run_large_scale_sharded(dataset, partitioner, settings, **kwargs)


class TestWorkerInvariance:
    @pytest.mark.parametrize("subsystem", sorted(SUBSYSTEMS))
    def test_workers_1_2_4_byte_identical(
        self, dataset, tiny_partitioner, subsystem
    ):
        settings = make_settings(**SUBSYSTEMS[subsystem])
        dumps = {}
        results = {}
        for workers in (1, 2, 4):
            result = run_sharded(
                dataset, tiny_partitioner, settings, workers=workers
            )
            dumps[workers] = result.telemetry.dumps()
            results[workers] = result
        assert dumps[1] == dumps[2] == dumps[4]
        reference = results[1]
        for workers in (2, 4):
            other = results[workers]
            assert other.total_queries == reference.total_queries
            assert other.hits == reference.hits
            assert other.misses == reference.misses
            assert other.migrations == reference.migrations
            assert other.num_clients == reference.num_clients
            assert other.num_servers == reference.num_servers
            assert other.server_changes == reference.server_changes
            assert other.steps == reference.steps
            assert other.availability == reference.availability
            assert other.shed_queries == reference.shed_queries
            assert other.redirected_queries == reference.redirected_queries
            assert other.local_fallback_queries == (
                reference.local_fallback_queries
            )

    @pytest.mark.parametrize("shard_size", [2, 5, 1000])
    def test_shard_sizes_internally_consistent(
        self, dataset, tiny_partitioner, shard_size
    ):
        # Every decomposition granularity must itself be worker-invariant
        # (shard_size=1000 collapses to a single shard).
        settings = make_settings()
        single = run_sharded(
            dataset, tiny_partitioner, settings,
            shard_size=shard_size, workers=1,
        )
        multi = run_sharded(
            dataset, tiny_partitioner, settings,
            shard_size=shard_size, workers=2,
        )
        assert single.telemetry.dumps() == multi.telemetry.dumps()
        assert single.extras["sharding"]["shards"] == (
            multi.extras["sharding"]["shards"]
        )


class TestFastReferenceIdentity:
    @pytest.mark.parametrize("subsystem", sorted(SUBSYSTEMS))
    def test_sharded_fast_vs_reference(
        self, dataset, tiny_partitioner, subsystem
    ):
        settings = make_settings(**SUBSYSTEMS[subsystem])
        fast = run_sharded(dataset, tiny_partitioner, settings, workers=2)
        with reference_simulate():
            reference = run_sharded(
                dataset, tiny_partitioner, settings, workers=2
            )
        assert fast.telemetry.dumps() == reference.telemetry.dumps()

    @pytest.mark.parametrize("subsystem", sorted(SUBSYSTEMS))
    def test_unsharded_fast_vs_reference(
        self, dataset, tiny_partitioner, subsystem
    ):
        # The scalar reference path must stay alive and equivalent for
        # the plain runner too, with every subsystem combination.
        settings = make_settings(**SUBSYSTEMS[subsystem])
        fast = run_large_scale(dataset, tiny_partitioner, settings)
        with reference_simulate():
            reference = run_large_scale(dataset, tiny_partitioner, settings)
        assert fast.telemetry.dumps() == reference.telemetry.dumps()

    def test_toggle_roundtrip(self):
        assert fast_simulate_enabled()
        previous = set_fast_simulate(False)
        assert previous is True
        assert not fast_simulate_enabled()
        with reference_simulate():
            assert not fast_simulate_enabled()
        set_fast_simulate(True)
        assert fast_simulate_enabled()


class TestEventTraceOption:
    def test_record_events_false_keeps_metrics(self, dataset, tiny_partitioner):
        settings = make_settings()
        full = run_sharded(dataset, tiny_partitioner, settings, workers=1)
        lean = run_sharded(
            dataset, tiny_partitioner, settings, workers=1,
            record_events=False,
        )
        assert len(list(full.telemetry.trace)) > 0
        assert len(list(lean.telemetry.trace)) == 0
        full_snapshot = full.telemetry.snapshot()
        lean_snapshot = lean.telemetry.snapshot()
        assert lean_snapshot["events"] == []
        assert lean_snapshot["metrics"] == full_snapshot["metrics"]
        assert lean.total_queries == full.total_queries


class TestChaosIdentity:
    def test_chaos_kills_do_not_change_bytes(self, dataset, tiny_partitioner):
        # Worker kills force retries in fresh processes; the retried
        # shard re-runs the same deterministic seed, so the merged
        # snapshot must match an undisturbed run byte for byte.
        from repro.faults import WorkerChaos
        from repro.simulation.supervisor import SupervisorConfig

        settings = make_settings(faults=get_profile("churn"))
        calm = run_sharded(dataset, tiny_partitioner, settings, workers=2)
        chaotic = run_sharded(
            dataset, tiny_partitioner, settings, workers=2,
            supervision=SupervisorConfig(
                max_attempts=3,
                chaos=WorkerChaos(seed=11, kill_rate=1.0,
                                  max_injections_per_shard=1),
            ),
        )
        assert chaotic.extras["sharding"]["retries"] > 0
        assert calm.telemetry.dumps() == chaotic.telemetry.dumps()

    def test_chaos_fast_vs_reference(self, dataset, tiny_partitioner):
        # Batched-vs-scalar identity must hold under chaos too: the
        # supervision layer and the fast path are orthogonal.
        from repro.faults import WorkerChaos
        from repro.simulation.supervisor import SupervisorConfig

        settings = make_settings(faults=get_profile("churn"))
        supervision = SupervisorConfig(
            max_attempts=3,
            chaos=WorkerChaos(seed=11, kill_rate=1.0,
                              max_injections_per_shard=1),
        )
        fast = run_sharded(
            dataset, tiny_partitioner, settings, workers=2,
            supervision=supervision,
        )
        with reference_simulate():
            reference = run_sharded(
                dataset, tiny_partitioner, settings, workers=2,
                supervision=supervision,
            )
        assert fast.telemetry.dumps() == reference.telemetry.dumps()


class TestModelBroadcast:
    def test_explicit_models_match_default_training(
        self, dataset, tiny_partitioner
    ):
        # The broadcast blob carries models trained once in the parent;
        # handing the identically-trained models in explicitly must not
        # change a byte (same rng order as the entry point's own
        # training).
        from repro.core.config import PerDNNConfig
        from repro.simulation.large_scale import (
            train_default_estimator,
            train_default_predictor,
        )

        settings = make_settings()
        config = PerDNNConfig(migration_radius_m=settings.migration_radius_m)
        rng = np.random.default_rng(settings.seed)
        train, _ = dataset.split_time(settings.replay_fraction)
        predictor = train_default_predictor(
            train, config.prediction_history, rng
        )
        estimator = train_default_estimator(tiny_partitioner, rng)
        implicit = run_sharded(dataset, tiny_partitioner, settings, workers=2)
        explicit = run_sharded(
            dataset, tiny_partitioner, settings, workers=2,
            predictor=predictor, contention_estimator=estimator,
        )
        assert implicit.telemetry.dumps() == explicit.telemetry.dumps()

    def test_model_cache_hit_is_byte_identical(
        self, dataset, tiny_partitioner, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "models"
        settings = make_settings()
        trained = run_sharded(
            dataset, tiny_partitioner, settings,
            model_cache_dir=cache_dir,
        )
        cached_blobs = list(cache_dir.glob("models-*.pkl"))
        assert len(cached_blobs) == 1
        # Prove the second run loads instead of training: training must
        # never be reached.
        import repro.simulation.sharding as sharding

        def boom(*args, **kwargs):
            raise AssertionError("cache hit should skip training")

        monkeypatch.setattr(sharding, "train_default_predictor", boom)
        monkeypatch.setattr(sharding, "train_default_estimator", boom)
        cached = run_sharded(
            dataset, tiny_partitioner, settings,
            model_cache_dir=cache_dir,
        )
        assert trained.telemetry.dumps() == cached.telemetry.dumps()

    def test_model_cache_keys_on_seed(
        self, dataset, tiny_partitioner, tmp_path
    ):
        cache_dir = tmp_path / "models"
        run_sharded(
            dataset, tiny_partitioner, make_settings(seed=3),
            model_cache_dir=cache_dir,
        )
        run_sharded(
            dataset, tiny_partitioner, make_settings(seed=4),
            model_cache_dir=cache_dir,
        )
        assert len(list(cache_dir.glob("models-*.pkl"))) == 2

    def test_explicit_models_bypass_cache(
        self, dataset, tiny_partitioner, tmp_path
    ):
        from repro.core.config import PerDNNConfig
        from repro.simulation.large_scale import (
            train_default_estimator,
            train_default_predictor,
        )

        settings = make_settings()
        config = PerDNNConfig(migration_radius_m=settings.migration_radius_m)
        rng = np.random.default_rng(settings.seed)
        train, _ = dataset.split_time(settings.replay_fraction)
        predictor = train_default_predictor(
            train, config.prediction_history, rng
        )
        estimator = train_default_estimator(tiny_partitioner, rng)
        cache_dir = tmp_path / "models"
        run_sharded(
            dataset, tiny_partitioner, settings,
            predictor=predictor, contention_estimator=estimator,
            model_cache_dir=cache_dir,
        )
        # Caller-supplied models are not the default-trained pair, so
        # nothing may be cached under the default fingerprint.
        assert list(cache_dir.glob("models-*.pkl")) == []


class TestShardPlan:
    def test_partition_is_exact(self, dataset, tiny_partitioner):
        settings = make_settings()
        config = PerDNNConfig(migration_radius_m=settings.migration_radius_m)
        shards = plan_shards(dataset, config, settings, shard_size=4)
        covered = [i for s in shards for i in s.trajectory_indices]
        assert sorted(covered) == list(range(len(dataset.trajectories)))
        assert len(set(covered)) == len(covered)
        assert [s.index for s in shards] == list(range(len(shards)))
        # Greedy packing: every shard except possibly the last reaches
        # the target usable-client count.
        for shard in shards[:-1]:
            assert shard.num_usable >= 4

    def test_plan_depends_only_on_inputs(self, dataset, tiny_partitioner):
        settings = make_settings()
        config = PerDNNConfig(migration_radius_m=settings.migration_radius_m)
        a = plan_shards(dataset, config, settings, shard_size=4)
        b = plan_shards(dataset, config, settings, shard_size=4)
        assert a == b

    def test_shard_seed_is_deterministic(self):
        assert shard_seed(3, 0) == shard_seed(3, 0)
        assert shard_seed(3, 0) != shard_seed(3, 1)
        assert shard_seed(3, 1) != shard_seed(4, 1)

    def test_shard_seed_uses_full_seed(self):
        # Regression: an earlier revision masked the run seed with
        # 0xFFFFFFFF, colliding seeds that differ only above bit 32.
        for index in range(4):
            assert shard_seed(2**32 + 5, index) != shard_seed(5, index)
        # And a pinned low-seed value: feeding the full seed must not
        # change the derivation for seeds below 2**32 (SeedSequence sees
        # the same entropy word), so existing snapshots stay valid.
        assert shard_seed(3, 0) == int(
            np.random.SeedSequence([3, 0]).generate_state(1, np.uint32)[0]
        )

    def test_shard_size_must_be_positive(self, dataset):
        settings = make_settings()
        config = PerDNNConfig()
        with pytest.raises(ValueError, match="shard_size"):
            plan_shards(dataset, config, settings, shard_size=0)


class TestMigrationToggle:
    @pytest.mark.parametrize("subsystem", ["plain", "faults"])
    def test_fast_vs_reference_migrate(
        self, dataset, tiny_partitioner, subsystem
    ):
        # The array-form migration tail and the per-client scalar pass
        # must agree byte for byte, sharded, with and without faults.
        from repro.core.master import reference_migrate

        settings = make_settings(**SUBSYSTEMS[subsystem])
        fast = run_sharded(dataset, tiny_partitioner, settings, workers=2)
        with reference_migrate():
            reference = run_sharded(
                dataset, tiny_partitioner, settings, workers=2
            )
        assert fast.telemetry.dumps() == reference.telemetry.dumps()

    def test_toggle_roundtrip(self):
        from repro.core.master import (
            fast_migrate_enabled,
            reference_migrate,
            set_fast_migrate,
        )

        assert fast_migrate_enabled()
        previous = set_fast_migrate(False)
        assert previous is True
        assert not fast_migrate_enabled()
        set_fast_migrate(True)
        with reference_migrate():
            assert not fast_migrate_enabled()
        assert fast_migrate_enabled()


class TestDatasetSpill:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_spill_matches_in_memory(
        self, dataset, tiny_partitioner, workers
    ):
        settings = make_settings(faults=get_profile("churn"))
        in_memory = run_sharded(
            dataset, tiny_partitioner, settings, workers=1
        )
        spilled = run_sharded(
            dataset, tiny_partitioner, settings,
            workers=workers, spill_datasets=True,
        )
        assert spilled.telemetry.dumps() == in_memory.telemetry.dumps()
        assert spilled.extras["sharding"]["spill_datasets"] is True
        assert in_memory.extras["sharding"]["spill_datasets"] is False

    def test_spill_scratch_is_cleaned_up(self, dataset, tiny_partitioner):
        import glob
        import os
        import tempfile

        pattern = os.path.join(
            tempfile.gettempdir(), "repro-shard-spill-*"
        )
        before = set(glob.glob(pattern))
        run_sharded(
            dataset, tiny_partitioner, make_settings(),
            workers=2, spill_datasets=True,
        )
        assert set(glob.glob(pattern)) == before

    def test_spill_with_checkpoint_dir(
        self, dataset, tiny_partitioner, tmp_path
    ):
        # Spill composes with checkpointing: datasets land under the
        # checkpoint directory, and the merged bytes stay pinned.
        settings = make_settings()
        plain = run_sharded(dataset, tiny_partitioner, settings, workers=1)
        spilled = run_sharded(
            dataset, tiny_partitioner, settings, workers=2,
            spill_datasets=True, checkpoint_dir=tmp_path / "ckpt",
        )
        assert spilled.telemetry.dumps() == plain.telemetry.dumps()


class TestRemoteDispatch:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_remote_and_mixed_match_local(
        self, dataset, tiny_partitioner, shard_worker, workers
    ):
        # Local-only, loopback-remote, and a mixed fleet must export the
        # same bytes at every worker count: dispatch is pure transport.
        settings = make_settings(faults=get_profile("churn"))
        local = run_sharded(
            dataset, tiny_partitioner, settings, workers=1
        )
        remote = run_sharded(
            dataset, tiny_partitioner, settings,
            workers=workers, remote_workers=[shard_worker],
        )
        assert remote.telemetry.dumps() == local.telemetry.dumps()
        assert remote.extras["sharding"]["remote_workers"] == [shard_worker]

    def test_remote_with_spill_hydrates_datasets(
        self, dataset, tiny_partitioner, shard_worker
    ):
        # Spilled jobs are hydrated executor-side before hitting the
        # wire, so the listener never reads the driver's spill files.
        settings = make_settings()
        local = run_sharded(dataset, tiny_partitioner, settings, workers=1)
        mixed = run_sharded(
            dataset, tiny_partitioner, settings,
            workers=2, remote_workers=[shard_worker], spill_datasets=True,
        )
        assert mixed.telemetry.dumps() == local.telemetry.dumps()

    def test_unreachable_worker_surfaces_as_crash(self):
        # A connect failure must flow through the supervisor's normal
        # crash path: an already-readable handle whose receive raises.
        import socket

        from repro.simulation.remote import RemoteExecutor, _DeadAttempt

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        executor = RemoteExecutor(
            f"127.0.0.1:{port}", connect_timeout=0.5
        )
        handle = executor.launch(None, None, 1, None)
        assert isinstance(handle, _DeadAttempt)
        assert "unreachable" in handle.crash_detail()
        with pytest.raises(EOFError):
            handle.receive()
        handle.finish()

    def test_parse_address(self):
        from repro.simulation.remote import DEFAULT_PORT, parse_address

        assert parse_address("10.0.0.2:7100") == ("10.0.0.2", 7100)
        assert parse_address("edge-host") == ("edge-host", DEFAULT_PORT)
        with pytest.raises(ValueError, match="host:port"):
            parse_address("edge-host:notaport")
        with pytest.raises(ValueError, match="port out of range"):
            parse_address("edge-host:70000")

    def test_frame_roundtrip_and_truncation(self):
        import socket

        from repro.simulation.remote import recv_frame, send_frame

        a, b = socket.socketpair()
        try:
            send_frame(a, {"shard": 3, "payload": list(range(10))})
            assert recv_frame(b) == {"shard": 3, "payload": list(range(10))}
            # A peer dying mid-frame surfaces as EOFError (crash
            # semantics), not a hang or a partial object.
            a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\xff")
            a.close()
            with pytest.raises(EOFError):
                recv_frame(b)
        finally:
            b.close()


class TestValidation:
    def test_workers_must_be_positive(self, dataset, tiny_partitioner):
        with pytest.raises(ValueError, match="workers"):
            run_large_scale_sharded(
                dataset, tiny_partitioner, make_settings(), workers=0
            )

    def test_prebuilt_schedule_rejected(self, dataset, tiny_partitioner):
        # Schedules are bound to one concrete server set; shards each
        # build their own from a profile.
        profile = get_profile("churn")
        schedule = profile.build((0, 1, 2), seed=1, horizon=5)
        settings = make_settings(faults=schedule)
        with pytest.raises(ValueError, match="FaultProfile"):
            run_large_scale_sharded(dataset, tiny_partitioner, settings)

    def test_empty_partitioner_pool_rejected(self, dataset):
        with pytest.raises(ValueError, match="partitioner"):
            run_large_scale_sharded(dataset, [], make_settings())

    def test_shard_size_rejected_before_training(self, dataset, tiny_partitioner):
        with pytest.raises(ValueError, match="shard_size"):
            run_large_scale_sharded(
                dataset, tiny_partitioner, make_settings(), shard_size=0
            )

    def test_resume_requires_checkpoint_dir(self, dataset, tiny_partitioner):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_large_scale_sharded(
                dataset, tiny_partitioner, make_settings(), resume=True
            )

    def test_bad_invocations_fail_fast(self, dataset, tiny_partitioner, tmp_path):
        # The whole point of validating before training: a bad call must
        # return in milliseconds, not after predictor/estimator fits.
        import time

        bad_dir = tmp_path / "file-not-dir"
        bad_dir.write_text("occupied")
        start = time.perf_counter()
        for invocation in (
            dict(workers=0),
            dict(shard_size=-1),
            dict(resume=True),
            dict(checkpoint_dir=bad_dir),
        ):
            with pytest.raises(ValueError):
                run_large_scale_sharded(
                    dataset, tiny_partitioner, make_settings(), **invocation
                )
        assert time.perf_counter() - start < 0.5
