"""Same-seed runs must be byte-identical across the vectorized rewrite.

The flat-array forest traversal, batched slowdown estimation, and the
planning prefetch in ``run_large_scale`` are wall-clock optimizations
only: a run under :func:`repro.ml.tree.reference_predict` (the original
node-walk path, scalar estimation) has to export the exact same
telemetry bytes as the default vectorized run.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.ml.tree import reference_predict
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(3), num_users=6, duration_steps=80)


def run(dataset, partitioner, reference=False, **kwargs):
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=12, seed=3, **kwargs
    )
    if reference:
        with reference_predict():
            return run_large_scale(dataset, partitioner, settings)
    return run_large_scale(dataset, partitioner, settings)


class TestFastReferenceIdentity:
    def test_telemetry_bytes_identical(self, dataset, tiny_partitioner):
        fast = run(dataset, tiny_partitioner)
        reference = run(dataset, tiny_partitioner, reference=True)
        assert fast.telemetry is not None
        assert reference.telemetry is not None
        assert fast.telemetry.dumps() == reference.telemetry.dumps()

    def test_headline_metrics_identical(self, dataset, tiny_partitioner):
        fast = run(dataset, tiny_partitioner)
        reference = run(dataset, tiny_partitioner, reference=True)
        assert fast.hits == reference.hits
        assert fast.misses == reference.misses
        assert fast.migrations == reference.migrations
        assert fast.migrated_bytes == reference.migrated_bytes


class TestPartitionCacheExtras:
    def test_summary_reports_plan_cache(self, dataset, tiny_profile):
        # Fresh partitioner: a cold plan cache must record at least one
        # re-plan, and the ratio must match the raw counts.
        from repro.partitioning.partitioner import DNNPartitioner

        partitioner = DNNPartitioner(
            tiny_profile, uplink_bps=35e6, downlink_bps=50e6
        )
        result = run(dataset, partitioner)
        cache = result.extras["partition_cache"]
        total = cache["hits"] + cache["misses"]
        assert cache["misses"] > 0
        assert total > 0
        assert cache["hit_ratio"] == pytest.approx(cache["hits"] / total)

    def test_cache_stats_are_per_run_deltas(self, dataset, tiny_profile):
        # A partitioner shared across runs accumulates counters; each
        # result must report only its own run's delta.  A re-run over an
        # already-warm cache re-plans nothing.
        from repro.partitioning.partitioner import DNNPartitioner

        partitioner = DNNPartitioner(
            tiny_profile, uplink_bps=35e6, downlink_bps=50e6
        )
        first = run(dataset, partitioner)
        second = run(dataset, partitioner)
        assert second.extras["partition_cache"]["misses"] == 0
        assert (
            second.extras["partition_cache"]["hits"]
            == first.extras["partition_cache"]["hits"]
            + first.extras["partition_cache"]["misses"]
        )
