"""Tests for the large-scale simulator (Fig 9 / §4.B.4 machinery).

These use a small synthetic dataset and the tiny model so each run takes
well under a second; the paper-scale runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def dataset():
    return kaist_like(np.random.default_rng(21), num_users=8, duration_steps=120)


def run(dataset, partitioner, policy, radius=100.0, **kwargs):
    settings = SimulationSettings(
        policy=policy,
        migration_radius_m=radius,
        max_steps=30,
        seed=5,
        **kwargs,
    )
    return run_large_scale(dataset, partitioner, settings)


class TestPolicies:
    def test_baseline_has_zero_hit_ratio(self, dataset, tiny_partitioner):
        result = run(dataset, tiny_partitioner, MigrationPolicy.NONE)
        assert result.hits == 0
        assert result.misses > 0
        assert result.hit_ratio == 0.0
        assert result.migrations == 0

    def test_optimal_has_full_hit_ratio(self, dataset, tiny_partitioner):
        result = run(dataset, tiny_partitioner, MigrationPolicy.OPTIMAL)
        assert result.misses == 0
        assert result.hit_ratio == 1.0

    def test_perdnn_between_baseline_and_optimal(self, dataset, tiny_partitioner):
        baseline = run(dataset, tiny_partitioner, MigrationPolicy.NONE)
        perdnn = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        optimal = run(dataset, tiny_partitioner, MigrationPolicy.OPTIMAL)
        assert 0.0 < perdnn.hit_ratio <= 1.0
        assert perdnn.migrations > 0
        assert (
            baseline.coldstart_queries
            <= perdnn.coldstart_queries
            <= optimal.coldstart_queries
        )

    def test_larger_radius_increases_hit_ratio(self, dataset, tiny_partitioner):
        small = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN, radius=50.0)
        large = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN, radius=150.0)
        assert large.hit_ratio >= small.hit_ratio
        assert large.migrated_bytes >= small.migrated_bytes

    def test_migration_produces_backhaul_traffic(self, dataset, tiny_partitioner):
        baseline = run(dataset, tiny_partitioner, MigrationPolicy.NONE)
        perdnn = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        assert baseline.uplink.total_bytes == 0.0
        assert perdnn.uplink.total_bytes > 0.0
        assert perdnn.uplink.total_bytes == pytest.approx(
            perdnn.downlink.total_bytes
        )
        assert perdnn.uplink.total_bytes == pytest.approx(perdnn.migrated_bytes)

    def test_fractional_budget_reduces_traffic(self, dataset, tiny_partitioner):
        full = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        crowded = frozenset(range(full.num_servers))
        limited = run(
            dataset, tiny_partitioner, MigrationPolicy.PERDNN,
            crowded_servers=crowded, crowded_byte_budget=1000.0,
        )
        assert limited.migrated_bytes < full.migrated_bytes
        assert limited.uplink.peak_mbps <= full.uplink.peak_mbps


class TestAccounting:
    def test_same_seed_reproducible(self, dataset, tiny_partitioner):
        a = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        b = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        assert a.hits == b.hits
        assert a.total_queries == b.total_queries
        assert a.migrated_bytes == b.migrated_bytes

    def test_step_cap_respected(self, dataset, tiny_partitioner):
        result = run(dataset, tiny_partitioner, MigrationPolicy.NONE)
        assert result.steps <= 30

    def test_runs_to_trace_end_without_cap(self, dataset, tiny_partitioner):
        settings = SimulationSettings(
            policy=MigrationPolicy.NONE, max_steps=None, seed=5,
            use_contention_estimator=False,
        )
        result = run_large_scale(dataset, tiny_partitioner, settings)
        replay_steps = max(
            len(t) for t in dataset.split_time(0.4)[1].trajectories
        )
        assert result.steps == replay_steps

    def test_counts_are_consistent(self, dataset, tiny_partitioner):
        result = run(dataset, tiny_partitioner, MigrationPolicy.PERDNN)
        # Every client's first association plus later server changes.
        assert result.hits + result.misses == result.server_changes + result.num_clients
        assert result.coldstart_queries <= result.total_queries

    def test_without_estimator_runs(self, dataset, tiny_partitioner):
        result = run(
            dataset, tiny_partitioner, MigrationPolicy.PERDNN,
            use_contention_estimator=False,
        )
        assert result.total_queries > 0
