"""Unit pins for the shard supervision layer.

The supervisor must turn worker misbehaviour — exceptions, abrupt
process death, hangs — into typed, deterministic outcomes: retries with
capped-exponential backoff, quarantine after the attempt budget, a
:class:`ShardError` that names the shard and every failure, and partial
degradation under ``allow_partial``.  The chaos schedule itself must be
a pure function of ``(seed, shard, attempt)``.
"""

from dataclasses import dataclass

import pytest

from repro.faults import (
    CHAOS_HANG,
    CHAOS_KILL,
    CHAOS_NONE,
    WorkerChaos,
)
from repro.simulation.supervisor import (
    CAUSE_CRASH,
    CAUSE_ERROR,
    CAUSE_TIMEOUT,
    ShardError,
    ShardFailure,
    SupervisorConfig,
    retry_delay,
    supervise,
)


@dataclass(frozen=True)
class Job:
    index: int
    payload: int = 0


def ok_runner(job):
    return job.index * 10


class TestRetryDelay:
    def test_capped_exponential(self):
        assert retry_delay(1, 0.05, 2.0) == 0.05
        assert retry_delay(2, 0.05, 2.0) == 0.1
        assert retry_delay(3, 0.05, 2.0) == 0.2
        assert retry_delay(10, 0.05, 2.0) == 2.0  # capped

    def test_rejects_zeroth_retry(self):
        with pytest.raises(ValueError):
            retry_delay(0, 0.05, 2.0)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = SupervisorConfig()
        assert config.max_attempts == 3
        assert not config.needs_processes

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(timeout_seconds=0.0),
            dict(timeout_seconds=-1.0),
            dict(backoff_base_seconds=-0.1),
            dict(backoff_cap_seconds=-0.1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)

    def test_needs_processes(self):
        assert SupervisorConfig(timeout_seconds=1.0).needs_processes
        assert SupervisorConfig(
            chaos=WorkerChaos(kill_rate=0.5)
        ).needs_processes
        # A no-op chaos schedule never forces process isolation.
        assert not SupervisorConfig(chaos=WorkerChaos()).needs_processes


class TestChaosSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerChaos(kill_rate=1.5)
        with pytest.raises(ValueError):
            WorkerChaos(hang_rate=-0.1)
        with pytest.raises(ValueError):
            WorkerChaos(kill_rate=0.6, hang_rate=0.6)
        with pytest.raises(ValueError):
            WorkerChaos(hang_seconds=0.0)

    def test_deterministic_and_seed_sensitive(self):
        a = WorkerChaos(seed=1, kill_rate=0.5, hang_rate=0.3,
                        max_injections_per_shard=100)
        b = WorkerChaos(seed=1, kill_rate=0.5, hang_rate=0.3,
                        max_injections_per_shard=100)
        c = WorkerChaos(seed=2, kill_rate=0.5, hang_rate=0.3,
                        max_injections_per_shard=100)
        draws_a = [a.action(s, t) for s in range(8) for t in range(4)]
        draws_b = [b.action(s, t) for s in range(8) for t in range(4)]
        draws_c = [c.action(s, t) for s in range(8) for t in range(4)]
        assert draws_a == draws_b
        assert draws_a != draws_c
        assert {CHAOS_KILL, CHAOS_HANG} <= set(draws_a)

    def test_injection_cap_is_stateless(self):
        chaos = WorkerChaos(seed=0, kill_rate=1.0, max_injections_per_shard=1)
        # Attempt 0 is sabotaged, every later attempt passes — evaluated
        # in any order (no shared state between calls).
        assert chaos.action(3, 2) == CHAOS_NONE
        assert chaos.action(3, 0) == CHAOS_KILL
        assert chaos.action(3, 1) == CHAOS_NONE

    def test_always_kill_ignores_cap(self):
        chaos = WorkerChaos(always_kill=(2,), max_injections_per_shard=0)
        assert chaos.action(2, 0) == CHAOS_KILL
        assert chaos.action(2, 5) == CHAOS_KILL
        assert chaos.action(1, 0) == CHAOS_NONE
        assert not chaos.is_noop

    def test_noop_detection(self):
        assert WorkerChaos().is_noop
        assert WorkerChaos(kill_rate=1.0, max_injections_per_shard=0).is_noop
        assert not WorkerChaos(kill_rate=0.1).is_noop


class TestInProcessSupervision:
    def test_all_succeed(self):
        jobs = [Job(i) for i in range(4)]
        results, report = supervise(jobs, ok_runner)
        assert results == {0: 0, 1: 10, 2: 20, 3: 30}
        assert report.retries == 0
        assert report.quarantined == ()
        assert report.failures == {}

    def test_flaky_shard_retried(self):
        attempts = {}

        def flaky(job):
            attempts[job.index] = attempts.get(job.index, 0) + 1
            if job.index == 1 and attempts[job.index] < 3:
                raise RuntimeError("transient")
            return job.index

        jobs = [Job(i) for i in range(3)]
        config = SupervisorConfig(max_attempts=3, backoff_base_seconds=0.0)
        results, report = supervise(jobs, flaky, config=config)
        assert results == {0: 0, 1: 1, 2: 2}
        assert report.retries == 2
        assert [f.cause for f in report.failures[1]] == [CAUSE_ERROR] * 2
        assert report.quarantined == ()

    def test_quarantine_raises_shard_error(self):
        def poison(job):
            if job.index == 1:
                raise RuntimeError("boom")
            return job.index

        config = SupervisorConfig(max_attempts=2, backoff_base_seconds=0.0)
        with pytest.raises(ShardError) as excinfo:
            supervise([Job(0), Job(1)], poison, config=config)
        error = excinfo.value
        assert error.shard_index == 1
        assert error.cause == CAUSE_ERROR
        assert len(error.failures) == 2
        assert "boom" in str(error)
        assert "quarantined" in str(error)

    def test_allow_partial_drops_poison_shard(self):
        def poison(job):
            if job.index == 1:
                raise RuntimeError("boom")
            return job.index

        config = SupervisorConfig(
            max_attempts=2, backoff_base_seconds=0.0, allow_partial=True
        )
        results, report = supervise([Job(i) for i in range(3)], poison,
                                    config=config)
        assert results == {0: 0, 2: 2}
        assert report.quarantined == (1,)
        assert len(report.failures[1]) == 2

    def test_on_result_and_keep_results(self):
        seen = []
        results, _ = supervise(
            [Job(0), Job(1)], ok_runner,
            on_result=lambda index, result: seen.append((index, result)),
            keep_results=False,
        )
        assert seen == [(0, 0), (1, 10)]
        assert results == {0: None, 1: None}

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            supervise([], ok_runner, workers=0)


def chaos_runner(job):
    return job.index * 10


class TestProcessSupervision:
    def test_chaos_kill_retried_to_success(self):
        chaos = WorkerChaos(seed=0, kill_rate=1.0, max_injections_per_shard=1)
        config = SupervisorConfig(chaos=chaos, backoff_base_seconds=0.0)
        jobs = [Job(i) for i in range(3)]
        results, report = supervise(jobs, chaos_runner, workers=2,
                                    config=config)
        assert results == {0: 0, 1: 10, 2: 20}
        assert report.retries == 3
        for history in report.failures.values():
            assert [f.cause for f in history] == [CAUSE_CRASH]
            assert "57" in history[0].detail  # chaos exit code surfaced

    def test_chaos_always_kill_quarantines(self):
        chaos = WorkerChaos(always_kill=(0,))
        config = SupervisorConfig(
            chaos=chaos, max_attempts=2, backoff_base_seconds=0.0
        )
        with pytest.raises(ShardError) as excinfo:
            supervise([Job(0)], chaos_runner, workers=1, config=config)
        assert excinfo.value.shard_index == 0
        assert excinfo.value.cause == CAUSE_CRASH

    def test_hang_hits_timeout_and_recovers(self):
        chaos = WorkerChaos(
            seed=0, hang_rate=1.0, hang_seconds=60.0,
            max_injections_per_shard=1,
        )
        config = SupervisorConfig(
            chaos=chaos, timeout_seconds=0.5, backoff_base_seconds=0.0
        )
        results, report = supervise([Job(0)], chaos_runner, workers=1,
                                    config=config)
        assert results == {0: 0}
        assert [f.cause for f in report.failures[0]] == [CAUSE_TIMEOUT]

    def test_process_mode_matches_inprocess_results(self):
        jobs = [Job(i) for i in range(5)]
        inproc, _ = supervise(jobs, chaos_runner)
        proc, _ = supervise(jobs, chaos_runner, workers=3,
                            config=SupervisorConfig(timeout_seconds=30.0))
        assert inproc == proc


class TestShardFailure:
    def test_describe(self):
        failure = ShardFailure(2, 0, CAUSE_CRASH, "exit 57")
        assert failure.describe() == "attempt 1: crash (exit 57)"
        bare = ShardFailure(2, 1, CAUSE_TIMEOUT, "")
        assert bare.describe() == "attempt 2: timeout"
