"""Shared fixtures for the simulation test tree."""

import multiprocessing

import pytest


def _listener_main(conn):
    from repro.simulation.remote import serve

    serve("127.0.0.1", 0, on_ready=lambda host, port: conn.send((host, port)))


@pytest.fixture(scope="package")
def shard_worker():
    """A loopback ``repro shard-worker`` listener; yields its address.

    Runs in a non-daemon fork-context process (the listener itself forks
    a disposable handler per request, which daemonic processes may not
    do).  One listener serves every test in the package — each shard
    attempt is its own connection, so tests never interfere.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("loopback shard worker requires the fork start method")
    ctx = multiprocessing.get_context("fork")
    receiver, sender = ctx.Pipe(duplex=False)
    process = ctx.Process(target=_listener_main, args=(sender,))
    process.start()
    sender.close()
    host, port = receiver.recv()
    receiver.close()
    yield f"{host}:{port}"
    process.terminate()
    process.join(timeout=10)
