"""Tests for the query/upload integration loop."""

import numpy as np
import pytest

from repro.partitioning.uploading import UploadChunk, UploadSchedule
from repro.simulation.query_loop import run_query_window


def make_schedule(
    chunk_bytes: list[float], latencies: list[float]
) -> UploadSchedule:
    """Hand-built schedule: len(latencies) == len(chunk_bytes) + 1."""
    chunks = tuple(
        UploadChunk(
            indices=(i,), layer_names=(f"L{i}",), nbytes=b,
            efficiency=1.0, benefit=1.0,
        )
        for i, b in enumerate(chunk_bytes)
    )
    return UploadSchedule(chunks=chunks, latencies=tuple(latencies))


class TestRunQueryWindow:
    def test_fixed_latency_query_count(self):
        schedule = make_schedule([], [1.0])
        outcome = run_query_window(
            schedule, start_bytes=0.0, uplink_bps=8.0,
            duration=10.0, query_gap=0.5,
        )
        # Period 1.5 s, first completes at 1.0: completions at 1, 2.5, 4, ...
        assert outcome.count == 7

    def test_no_queries_fit(self):
        schedule = make_schedule([], [5.0])
        outcome = run_query_window(schedule, 0.0, 8.0, 4.0, 0.5)
        assert outcome.count == 0

    def test_upload_progress_reduces_latency(self):
        # 80 bytes at 8 bps -> chunk completes at t = 80 s.
        schedule = make_schedule([80.0], [10.0, 1.0])
        fast = run_query_window(
            schedule, start_bytes=80.0, uplink_bps=8.0,
            duration=100.0, query_gap=0.0, uploading=False,
        )
        slow = run_query_window(
            schedule, start_bytes=0.0, uplink_bps=8.0,
            duration=100.0, query_gap=0.0, uploading=True,
        )
        assert fast.count > slow.count
        # The slow run must still speed up after the upload finishes.
        late_latencies = [q.latency for q in slow.queries if q.start_time > 80]
        assert late_latencies and all(l == 1.0 for l in late_latencies)

    def test_uploading_false_freezes_progress(self):
        schedule = make_schedule([80.0], [10.0, 1.0])
        outcome = run_query_window(
            schedule, start_bytes=0.0, uplink_bps=8.0,
            duration=50.0, query_gap=0.0, uploading=False,
        )
        assert outcome.end_bytes == 0.0
        assert all(q.latency == 10.0 for q in outcome.queries)

    def test_end_bytes_capped_at_total(self):
        schedule = make_schedule([10.0], [1.0, 0.5])
        outcome = run_query_window(schedule, 0.0, 8e6, 10.0, 0.5)
        assert outcome.end_bytes == 10.0

    def test_first_gap_delays_first_query(self):
        schedule = make_schedule([], [1.0])
        without = run_query_window(schedule, 0.0, 8.0, 3.0, 10.0)
        with_gap = run_query_window(schedule, 0.0, 8.0, 3.0, 10.0, first_gap=2.5)
        assert without.count == 1
        assert with_gap.count == 0

    def test_records_are_chronological(self):
        schedule = make_schedule([40.0], [2.0, 1.0])
        outcome = run_query_window(schedule, 0.0, 8.0, 30.0, 0.5)
        starts = [q.start_time for q in outcome.queries]
        assert starts == sorted(starts)
        received = [q.received_bytes for q in outcome.queries]
        assert received == sorted(received)

    def test_validation(self):
        schedule = make_schedule([], [1.0])
        with pytest.raises(ValueError):
            run_query_window(schedule, -1.0, 8.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            run_query_window(schedule, 0.0, 8.0, -1.0, 0.5)


class TestFastSteadyState:
    """The fast steady-state path must agree with the scalar loop on the
    count, the end bytes, and every telemetry byte."""

    def _registries(self):
        from repro.telemetry import MetricsRegistry

        return MetricsRegistry(), MetricsRegistry()

    @pytest.mark.parametrize("duration", [0.0, 4.0, 10.0, 63.7])
    @pytest.mark.parametrize("start_fraction", [0.0, 0.5, 1.0])
    def test_window_count_matches_scalar(self, duration, start_fraction):
        from repro.telemetry import metrics_csv

        schedule = make_schedule([80.0], [1.0, 0.25])
        start = start_fraction * schedule.total_bytes
        slow_metrics, fast_metrics = self._registries()
        # uploading=False keeps received bytes constant -> fast-eligible.
        slow = run_query_window(
            schedule, start, 8.0, duration, 0.5,
            uploading=False, telemetry=slow_metrics,
        )
        fast = run_query_window(
            schedule, start, 8.0, duration, 0.5,
            uploading=False, telemetry=fast_metrics, fast=True,
        )
        assert fast.count == slow.count
        assert fast.end_bytes == slow.end_bytes
        assert fast.queries == ()
        assert metrics_csv(fast_metrics) == metrics_csv(slow_metrics)

    @pytest.mark.parametrize("start_bytes", [0.0, 24.0])
    @pytest.mark.parametrize("uplink_bps", [8.0, 64.0, 1000.0])
    def test_upload_in_progress_matches_scalar(self, start_bytes, uplink_bps):
        from repro.telemetry import metrics_csv

        schedule = make_schedule([40.0, 40.0], [1.0, 0.5, 0.25])
        slow_metrics, fast_metrics = self._registries()
        # Bytes move during this window, so the fast path runs the exact
        # per-query integration — just without materializing records.
        slow = run_query_window(
            schedule, start_bytes, uplink_bps, 100.0, 0.5,
            telemetry=slow_metrics,
        )
        fast = run_query_window(
            schedule, start_bytes, uplink_bps, 100.0, 0.5,
            telemetry=fast_metrics, fast=True,
        )
        assert fast.queries == ()
        assert fast.count == slow.count > 0
        assert fast.end_bytes == slow.end_bytes
        assert metrics_csv(fast_metrics) == metrics_csv(slow_metrics)

    def test_queue_wait_recorded_identically(self):
        from repro.telemetry import metrics_csv

        schedule = make_schedule([], [1.0])
        slow_metrics, fast_metrics = self._registries()
        slow = run_query_window(
            schedule, 0.0, 8.0, 10.0, 0.5,
            queue_wait=1.25, telemetry=slow_metrics,
        )
        fast = run_query_window(
            schedule, 0.0, 8.0, 10.0, 0.5,
            queue_wait=1.25, telemetry=fast_metrics, fast=True,
        )
        assert fast.count == slow.count
        assert metrics_csv(fast_metrics) == metrics_csv(slow_metrics)

    def test_local_window_matches_scalar(self):
        from repro.simulation.query_loop import run_local_window
        from repro.telemetry import metrics_csv

        for record_fallback in (True, False):
            slow_metrics, fast_metrics = self._registries()
            slow = run_local_window(
                0.8, 30.0, 0.5, telemetry=slow_metrics,
                record_fallback=record_fallback,
            )
            fast = run_local_window(
                0.8, 30.0, 0.5, telemetry=fast_metrics,
                record_fallback=record_fallback, fast=True,
            )
            assert fast.count == slow.count
            assert metrics_csv(fast_metrics) == metrics_csv(slow_metrics)

    def test_memo_is_reused(self):
        schedule = make_schedule([], [1.0])
        memo = {}
        first = run_query_window(
            schedule, 0.0, 8.0, 10.0, 0.5, fast=True, count_memo=memo,
        )
        assert len(memo) == 1
        second = run_query_window(
            schedule, 0.0, 8.0, 10.0, 0.5, fast=True, count_memo=memo,
        )
        assert len(memo) == 1
        assert first.count == second.count
