"""Merge edge cases: empty datasets, unusable shards, streaming folds.

The sharded merge must behave at the degenerate ends — no trajectories
at all, shards whose every trajectory is too short to replay — and the
registry fold must accept a lazy generator of registries (the streaming
checkpoint path) with byte-identical results to a materialized list.
"""

import numpy as np
import pytest

from repro.core.master import MigrationPolicy
from repro.geo.geometry import BoundingBox
from repro.mobility.trajectory import Trajectory, TrajectoryDataset
from repro.simulation.large_scale import SimulationSettings
from repro.simulation.sharding import plan_shards, run_large_scale_sharded
from repro.core.config import PerDNNConfig
from repro.telemetry import MetricsRegistry, merge_registries
from repro.trajectories.synthetic import kaist_like


def make_settings(**kwargs):
    kwargs.setdefault("policy", MigrationPolicy.NONE)
    kwargs.setdefault("max_steps", 4)
    kwargs.setdefault("seed", 3)
    return SimulationSettings(**kwargs)


def single_point_dataset(num_users: int) -> TrajectoryDataset:
    """Every trajectory has one point: zero usable replay clients."""
    rng = np.random.default_rng(7)
    trajectories = tuple(
        Trajectory(
            user_id=i,
            interval_seconds=30.0,
            points=rng.uniform(0.0, 500.0, size=(1, 2)),
        )
        for i in range(num_users)
    )
    return TrajectoryDataset(
        name="single-point",
        interval_seconds=30.0,
        bbox=BoundingBox(0.0, 0.0, 500.0, 500.0),
        trajectories=trajectories,
    )


class TestDegenerateDatasets:
    def test_zero_trajectory_dataset(self, tiny_partitioner):
        dataset = TrajectoryDataset(
            name="empty",
            interval_seconds=30.0,
            bbox=BoundingBox(0.0, 0.0, 100.0, 100.0),
            trajectories=(),
        )
        assert plan_shards(
            dataset, PerDNNConfig(), make_settings(), shard_size=4
        ) == []
        result = run_large_scale_sharded(
            dataset, tiny_partitioner, make_settings(), shard_size=4
        )
        assert result.num_clients == 0
        assert result.num_servers == 0
        assert result.total_queries == 0
        info = result.extras["sharding"]
        assert info["shards"] == 0
        assert info["clients_per_shard"] == []
        # The merged telemetry still exports cleanly.
        assert result.telemetry.dumps()

    def test_all_trajectories_unusable(self, tiny_partitioner):
        # One-point trajectories survive planning (grouped by their only
        # point) but no shard has a replayable client.
        dataset = single_point_dataset(6)
        shards = plan_shards(
            dataset, PerDNNConfig(), make_settings(), shard_size=4
        )
        assert sum(s.num_usable for s in shards) == 0
        assert sum(len(s.trajectory_indices) for s in shards) == 6
        result = run_large_scale_sharded(
            dataset, tiny_partitioner, make_settings(), shard_size=4
        )
        assert result.num_clients == 0
        assert result.total_queries == 0
        assert result.telemetry.dumps()

    def test_all_unusable_never_closes_a_shard_early(self):
        # With zero usable clients the greedy packer never reaches
        # shard_size, so the whole population lands in one trailing shard
        # regardless of how many cells it spans.
        dataset = single_point_dataset(9)
        shards = plan_shards(
            dataset, PerDNNConfig(), make_settings(), shard_size=2
        )
        assert len(shards) == 1
        assert shards[0].num_usable == 0
        assert sorted(shards[0].trajectory_indices) == list(range(9))

    def test_one_cell_larger_than_shard_size(self, tiny_partitioner):
        # Cells are atomic: a single home cell holding more clients than
        # shard_size becomes one oversized shard, never split.
        rng = np.random.default_rng(19)
        trajectories = tuple(
            Trajectory(
                user_id=i,
                interval_seconds=30.0,
                points=np.array([[10.0, 10.0]])
                + rng.uniform(0.0, 1.0, size=(6, 2)).cumsum(axis=0),
            )
            for i in range(10)
        )
        dataset = TrajectoryDataset(
            name="one-cell",
            interval_seconds=30.0,
            bbox=BoundingBox(0.0, 0.0, 100.0, 100.0),
            trajectories=trajectories,
        )
        shards = plan_shards(
            dataset, PerDNNConfig(), make_settings(), shard_size=4
        )
        assert len(shards) == 1
        assert len(shards[0].trajectory_indices) == 10
        assert len(shards[0].cells) == 1
        assert shards[0].num_usable == 10
        result = run_large_scale_sharded(
            dataset, tiny_partitioner, make_settings(), shard_size=4
        )
        assert result.num_clients == 10
        assert result.extras["sharding"]["shards"] == 1

    def test_mixed_usable_and_unusable_worker_invariant(
        self, tiny_partitioner
    ):
        # Sprinkle unusable trajectories into a real dataset: the worker
        # invariance and client accounting must still hold.
        base = kaist_like(
            np.random.default_rng(3), num_users=10, duration_steps=60
        )
        rng = np.random.default_rng(11)
        stubs = tuple(
            Trajectory(
                user_id=100 + i,
                interval_seconds=base.interval_seconds,
                points=rng.uniform(0.0, 400.0, size=(1, 2)),
            )
            for i in range(3)
        )
        dataset = TrajectoryDataset(
            name=base.name,
            interval_seconds=base.interval_seconds,
            bbox=base.bbox,
            trajectories=base.trajectories + stubs,
        )
        settings = make_settings(policy=MigrationPolicy.PERDNN)
        single = run_large_scale_sharded(
            dataset, tiny_partitioner, settings, shard_size=4, workers=1
        )
        multi = run_large_scale_sharded(
            dataset, tiny_partitioner, settings, shard_size=4, workers=2
        )
        assert single.telemetry.dumps() == multi.telemetry.dumps()
        assert single.num_clients == 10  # stubs planned but not replayed
        info = single.extras["sharding"]
        assert sum(info["clients_per_shard"]) == 10


def build_registry(seed: int) -> MetricsRegistry:
    rng = np.random.default_rng(seed)
    registry = MetricsRegistry()
    for i in range(3):
        registry.counter("requests", {"server": str(i)}).inc(
            float(rng.integers(1, 100))
        )
    registry.gauge("depth").set(float(rng.uniform(0, 10)))
    histogram = registry.histogram("latency", (0.1, 1.0, 10.0))
    for value in rng.uniform(0.0, 12.0, size=20):
        histogram.observe(float(value))
    return registry


class TestStreamingMerge:
    def test_generator_input_matches_list(self):
        materialized = [build_registry(seed) for seed in range(5)]
        from_list = merge_registries(materialized)
        from_generator = merge_registries(
            build_registry(seed) for seed in range(5)
        )
        assert from_list.as_dict() == from_generator.as_dict()

    def test_single_pass_consumption(self):
        # The fold must pull each registry exactly once, releasing it
        # before the next is produced (the checkpoint path streams shard
        # files through here).
        produced = []

        def lazy():
            for seed in range(4):
                produced.append(seed)
                yield build_registry(seed)

        merged = merge_registries(lazy())
        assert produced == [0, 1, 2, 3]
        assert merged.value("requests", {"server": "0"}) > 0

    def test_empty_iterable(self):
        merged = merge_registries(iter([]))
        assert len(merged) == 0

    def test_kind_mismatch_detected_streamingly(self):
        a = MetricsRegistry()
        a.counter("metric").inc()
        b = MetricsRegistry()
        b.gauge("metric").set(1.0)
        with pytest.raises(TypeError, match="kind mismatch"):
            merge_registries(iter([a, b]))

    def test_bucket_mismatch_detected_streamingly(self):
        a = MetricsRegistry()
        a.histogram("latency", (0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("latency", (0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            merge_registries(iter([a, b]))

    def test_gauge_rules_still_apply(self):
        registries = []
        for value in (3.0, 7.0, 5.0):
            registry = MetricsRegistry()
            registry.gauge("steps").set(value)
            registries.append(registry)
        merged = merge_registries(
            iter(registries), gauge_rules={"steps": "max"}
        )
        assert merged.value("steps") == 7.0
        with pytest.raises(ValueError, match="unknown gauge rule"):
            merge_registries(iter([]), default_gauge_rule="median")
