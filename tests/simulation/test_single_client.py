"""Tests for the single-client handoff experiments (Fig 1/7, Table II)."""

import pytest

from repro.simulation.single_client import (
    simulate_handoff,
    upload_window_throughput,
)


class TestSimulateHandoff:
    def test_ionn_latency_spikes_at_switch(self, tiny_partitioner, default_config):
        result = simulate_handoff(
            tiny_partitioner, default_config,
            num_queries=30, switch_after=15, premigrated_bytes=0.0,
        )
        assert result.num_queries == 30
        # The first query and the first query after the switch both run at
        # the cold (local) latency — the Fig 1 spike.
        assert result.latencies[15] == pytest.approx(result.latencies[0])
        # Just before the switch the client was faster than cold.
        assert result.latencies[14] <= result.latencies[15]

    def test_full_premigration_removes_spike(
        self, tiny_partitioner, default_config
    ):
        total = tiny_partitioner.partition(1.0).schedule.total_bytes
        result = simulate_handoff(
            tiny_partitioner, default_config,
            num_queries=30, switch_after=15, premigrated_bytes=total,
        )
        best = tiny_partitioner.partition(1.0).plan.latency
        assert result.peak_latency_after_switch == pytest.approx(best)

    def test_more_premigration_never_worse(self, tiny_partitioner, default_config):
        total = tiny_partitioner.partition(1.0).schedule.total_bytes
        peaks = [
            simulate_handoff(
                tiny_partitioner, default_config,
                premigrated_bytes=fraction * total,
            ).peak_latency_after_switch
            for fraction in (0.0, 0.5, 1.0)
        ]
        assert peaks[0] >= peaks[1] >= peaks[2]

    def test_latencies_recover_after_switch(self, tiny_partitioner, default_config):
        result = simulate_handoff(
            tiny_partitioner, default_config, num_queries=40, switch_after=10
        )
        # By the end of the run the upload completed: final latency is best.
        best = tiny_partitioner.partition(1.0).plan.latency
        assert result.latencies[-1] == pytest.approx(best)

    def test_validation(self, tiny_partitioner, default_config):
        with pytest.raises(ValueError):
            simulate_handoff(tiny_partitioner, default_config, num_queries=0)
        with pytest.raises(ValueError):
            simulate_handoff(
                tiny_partitioner, default_config,
                num_queries=10, switch_after=10,
            )


class TestUploadWindowThroughput:
    def test_hit_at_least_miss(self, tiny_partitioner, default_config):
        result = upload_window_throughput(tiny_partitioner, default_config)
        assert result.hit_queries >= result.miss_queries
        assert result.upload_seconds > 0

    def test_upload_time_is_bytes_over_uplink(
        self, tiny_partitioner, default_config
    ):
        result = upload_window_throughput(tiny_partitioner, default_config)
        total = tiny_partitioner.partition(1.0).schedule.total_bytes
        expected = total * 8.0 / default_config.network.uplink_bps
        assert result.upload_seconds == pytest.approx(expected)

    def test_contention_reduces_throughput(self, tiny_partitioner, default_config):
        idle = upload_window_throughput(tiny_partitioner, default_config, 1.0)
        # Under heavy contention the plan offloads less and the hit case
        # cannot beat the idle hit case.
        busy = upload_window_throughput(tiny_partitioner, default_config, 8.0)
        assert busy.hit_queries <= idle.hit_queries
