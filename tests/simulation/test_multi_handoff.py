"""Tests for multi-server hand-off chains and interval selection."""

import numpy as np
import pytest

from repro.simulation.multi_handoff import simulate_handoff_chain


class TestHandoffChain:
    def test_structure(self, tiny_partitioner, default_config):
        result = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(10, 10, 10),
            premigrated_fractions=(0.0, 0.0, 0.0),
        )
        assert result.num_visits == 3
        assert result.total_queries == 30
        assert result.visit_boundaries == (0, 10, 20)
        assert len(result.peak_per_visit) == 3

    def test_cold_chain_spikes_every_visit(self, tiny_partitioner, default_config):
        result = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(15, 15, 15),
            premigrated_fractions=(0.0, 0.0, 0.0),
        )
        # Every visit starts at the cold (zero-bytes-received) latency —
        # weightless layers are instantly available, so this can sit just
        # below the fully-local time.
        schedule = tiny_partitioner.partition(1.0).schedule
        cold = schedule.latency_after_bytes(0.0)
        for boundary in result.visit_boundaries:
            assert result.latencies[boundary] == pytest.approx(cold)
        assert cold > schedule.latencies[-1]

    def test_warm_chain_never_spikes(self, tiny_partitioner, default_config):
        result = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(15, 15, 15),
            premigrated_fractions=(0.0, 1.0, 1.0),
        )
        best = tiny_partitioner.partition(1.0).plan.latency
        # Visits 2 and 3 start fully migrated: no spike at their boundaries.
        assert result.peak_per_visit[1] == pytest.approx(best)
        assert result.peak_per_visit[2] == pytest.approx(best)
        assert result.peak_per_visit[0] > best

    def test_mixed_fractions_order_peaks(self, tiny_partitioner, default_config):
        result = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(12, 12, 12),
            premigrated_fractions=(0.0, 0.5, 1.0),
        )
        peaks = result.peak_per_visit
        assert peaks[0] >= peaks[1] >= peaks[2]

    def test_contended_visit_is_slower(self, tiny_partitioner, default_config):
        calm = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(10,), premigrated_fractions=(1.0,),
            server_slowdowns=(1.0,),
        )
        busy = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(10,), premigrated_fractions=(1.0,),
            server_slowdowns=(8.0,),
        )
        assert busy.peak_per_visit[0] >= calm.peak_per_visit[0]

    def test_fully_warm_chain_is_flat(self, tiny_partitioner, default_config):
        result = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(8, 8, 8),
            premigrated_fractions=(1.0, 1.0, 1.0),
        )
        best = tiny_partitioner.partition(1.0).plan.latency
        # Every server already holds the full prefix: the whole chain runs
        # at the steady-state plan latency with no spikes anywhere.
        assert all(lat == pytest.approx(best) for lat in result.latencies)
        assert result.peak_per_visit == pytest.approx((best,) * 3)

    def test_latencies_non_increasing_within_each_visit(
        self, tiny_partitioner, default_config
    ):
        result = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(20, 20),
            premigrated_fractions=(0.0, 0.3),
        )
        boundaries = list(result.visit_boundaries) + [result.total_queries]
        for start, end in zip(boundaries, boundaries[1:]):
            visit = result.latencies[start:end]
            # Bytes only accumulate while the client sits on one server, so
            # per-query latency can only fall (or plateau) within a visit.
            assert all(a >= b - 1e-9 for a, b in zip(visit, visit[1:]))

    def test_single_visit_chain(self, tiny_partitioner, default_config):
        result = simulate_handoff_chain(
            tiny_partitioner, default_config,
            queries_per_visit=(6,), premigrated_fractions=(0.5,),
        )
        assert result.num_visits == 1
        assert result.visit_boundaries == (0,)
        assert len(result.latencies) == 6
        assert result.peak_per_visit[0] == result.latencies[0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(queries_per_visit=(5,), premigrated_fractions=(0.0, 1.0)),
            dict(queries_per_visit=(0,), premigrated_fractions=(0.0,)),
            dict(queries_per_visit=(5,), premigrated_fractions=(1.5,)),
            dict(
                queries_per_visit=(5,),
                premigrated_fractions=(0.5,),
                server_slowdowns=(1.0, 2.0),
            ),
        ],
    )
    def test_validation(self, tiny_partitioner, default_config, kwargs):
        with pytest.raises(ValueError):
            simulate_handoff_chain(tiny_partitioner, default_config, **kwargs)


class TestIntervalSelection:
    def test_select_prediction_interval(self):
        from repro.geo.hexgrid import HexGrid
        from repro.geo.wifi import EdgeServerRegistry
        from repro.mobility.evaluation import select_prediction_interval
        from repro.trajectories.synthetic import geolife_like

        rng = np.random.default_rng(9)
        dataset = geolife_like(rng, num_users=20, duration_steps=300)
        registry = EdgeServerRegistry.from_visited_points(
            HexGrid(50.0), dataset.all_points()
        )
        best, candidates = select_prediction_interval(
            dataset, registry, factors=(3, 4, 6), rng=rng,
            predictor_epochs=30,
        )
        assert len(candidates) == 3
        assert best in candidates
        assert best.ratio == max(c.ratio for c in candidates)
        # Futility falls monotonically with the interval.
        futiles = [c.futile_ratio for c in candidates]
        assert futiles == sorted(futiles, reverse=True)

    def test_requires_factors(self):
        from repro.geo.hexgrid import HexGrid
        from repro.geo.wifi import EdgeServerRegistry
        from repro.mobility.evaluation import select_prediction_interval
        from repro.trajectories.synthetic import kaist_like

        rng = np.random.default_rng(0)
        dataset = kaist_like(rng, num_users=3, duration_steps=50)
        registry = EdgeServerRegistry.from_visited_points(
            HexGrid(50.0), dataset.all_points()
        )
        with pytest.raises(ValueError):
            select_prediction_interval(dataset, registry, (), rng)
