"""Shared fixtures: seeded RNGs, small models, profiles, partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PerDNNConfig
from repro.dnn.models import tiny_branchy_dnn, tiny_linear_dnn
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def client_device():
    return odroid_xu4()


@pytest.fixture(scope="session")
def server_device():
    return titan_xp_server()


@pytest.fixture(scope="session")
def tiny_graph():
    return tiny_linear_dnn()


@pytest.fixture(scope="session")
def branchy_graph():
    return tiny_branchy_dnn()


@pytest.fixture(scope="session")
def tiny_profile(tiny_graph, client_device, server_device):
    return ExecutionProfile.build(tiny_graph, client_device, server_device)


@pytest.fixture(scope="session")
def branchy_profile(branchy_graph, client_device, server_device):
    return ExecutionProfile.build(branchy_graph, client_device, server_device)


@pytest.fixture(scope="session")
def default_config():
    return PerDNNConfig()


@pytest.fixture(scope="session")
def tiny_partitioner(tiny_profile):
    return DNNPartitioner(tiny_profile, uplink_bps=35e6, downlink_bps=50e6)
