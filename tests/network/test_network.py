"""Tests for link speeds, transfer arithmetic, and traffic metering."""

import pytest

from repro.network.links import LAB_WIFI, NetworkSpeed
from repro.network.traffic import TrafficMeter
from repro.network.transfer import transfer_seconds, transferable_bytes


class TestLinks:
    def test_lab_wifi_matches_paper(self):
        assert LAB_WIFI.downlink_bps == 50e6
        assert LAB_WIFI.uplink_bps == 35e6

    def test_from_mbps(self):
        speed = NetworkSpeed.from_mbps(downlink=100, uplink=20)
        assert speed.downlink_bps == 100e6
        assert speed.uplink_bps == 20e6

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            NetworkSpeed(0.0, 1.0)


class TestTransfer:
    def test_paper_upload_time(self):
        # Inception (~128 MB decimal) at 35 Mbps: the paper's 29.3 s.
        assert transfer_seconds(128e6, 35e6) == pytest.approx(29.26, abs=0.05)

    def test_inverse_relationship(self):
        nbytes = 1e6
        seconds = transfer_seconds(nbytes, 35e6)
        assert transferable_bytes(seconds, 35e6) == pytest.approx(nbytes)

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_seconds(-1, 1)
        with pytest.raises(ValueError):
            transfer_seconds(1, 0)
        with pytest.raises(ValueError):
            transferable_bytes(-1, 1)


class TestTrafficMeter:
    def test_record_updates_both_directions(self):
        meter = TrafficMeter(interval_seconds=10.0)
        meter.record(interval=0, source=1, destination=2, nbytes=1000.0)
        assert meter.uplink_bytes(1, 0) == 1000.0
        assert meter.downlink_bytes(2, 0) == 1000.0
        assert meter.uplink_bytes(2, 0) == 0.0

    def test_peak_mbps_computation(self):
        meter = TrafficMeter(interval_seconds=10.0)
        meter.record(0, 1, 2, 12.5e6)  # 12.5 MB in 10 s = 10 Mbps
        summary = meter.uplink_summary()
        assert summary.peak_mbps == pytest.approx(10.0)
        assert summary.peak_server == 1
        assert summary.peak_interval == 0

    def test_peaks_accumulate_within_interval(self):
        meter = TrafficMeter(interval_seconds=1.0)
        meter.record(0, 1, 2, 1e6)
        meter.record(0, 1, 3, 1e6)
        assert meter.uplink_summary().peak_mbps == pytest.approx(16.0)

    def test_server_peaks_are_per_server_maxima(self):
        meter = TrafficMeter(interval_seconds=1.0)
        meter.record(0, 1, 2, 2e6)
        meter.record(1, 1, 2, 1e6)
        summary = meter.uplink_summary()
        assert summary.server_peaks_mbps[1] == pytest.approx(16.0)

    def test_fraction_under_threshold(self):
        meter = TrafficMeter(interval_seconds=1.0)
        meter.record(0, 1, 2, 100e6)  # server 1 peaks at 800 Mbps
        meter.record(0, 3, 4, 1e6)  # server 3 peaks at 8 Mbps
        summary = meter.uplink_summary()
        assert summary.fraction_of_servers_under(100.0) == pytest.approx(0.5)

    def test_fraction_with_no_traffic(self):
        meter = TrafficMeter(interval_seconds=1.0)
        assert meter.uplink_summary().fraction_of_servers_under(1.0) == 1.0

    def test_top_servers_ranking(self):
        meter = TrafficMeter(interval_seconds=1.0)
        meter.record(0, 1, 9, 3e6)
        meter.record(0, 2, 9, 5e6)
        meter.record(0, 3, 9, 1e6)
        assert meter.uplink_summary().top_servers(2) == [2, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficMeter(0.0)
        meter = TrafficMeter(1.0)
        with pytest.raises(ValueError):
            meter.record(0, 1, 1, 10.0)
        with pytest.raises(ValueError):
            meter.record(0, 1, 2, -1.0)

    def test_total_bytes(self):
        meter = TrafficMeter(1.0)
        meter.record(0, 1, 2, 10.0)
        meter.record(1, 2, 1, 30.0)
        assert meter.uplink_summary().total_bytes == 40.0
        assert meter.downlink_summary().total_bytes == 40.0
