"""Tests for trajectory containers."""

import numpy as np
import pytest

from repro.geo.geometry import BoundingBox
from repro.mobility.trajectory import Trajectory, TrajectoryDataset


def straight_line(n: int = 10, speed: float = 2.0, dt: float = 10.0) -> Trajectory:
    xs = np.arange(n) * speed * dt
    points = np.stack([xs, np.zeros(n)], axis=1)
    return Trajectory(user_id=0, interval_seconds=dt, points=points)


class TestTrajectory:
    def test_speeds(self):
        trajectory = straight_line(speed=2.0)
        assert np.allclose(trajectory.speeds(), 2.0)
        assert trajectory.average_speed() == pytest.approx(2.0)

    def test_single_point_speed_zero(self):
        trajectory = Trajectory(0, 1.0, np.zeros((1, 2)))
        assert trajectory.average_speed() == 0.0

    def test_subsample(self):
        trajectory = straight_line(n=10, dt=10.0)
        half = trajectory.subsample(2)
        assert len(half) == 5
        assert half.interval_seconds == 20.0
        assert np.allclose(half.points, trajectory.points[::2])

    def test_subsample_validation(self):
        with pytest.raises(ValueError):
            straight_line().subsample(0)

    def test_windows_shapes_and_alignment(self):
        trajectory = straight_line(n=8)
        X, y = trajectory.windows(3)
        assert X.shape == (5, 3, 2)
        assert y.shape == (5, 2)
        assert np.allclose(X[0], trajectory.points[:3])
        assert np.allclose(y[0], trajectory.points[3])

    def test_windows_too_short(self):
        X, y = straight_line(n=3).windows(5)
        assert len(X) == 0 and len(y) == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Trajectory(0, 1.0, np.zeros((3, 3)))
        with pytest.raises(ValueError):
            Trajectory(0, 0.0, np.zeros((3, 2)))


@pytest.fixture
def dataset():
    trajectories = tuple(
        Trajectory(i, 10.0, np.cumsum(np.full((20, 2), float(i + 1)), axis=0))
        for i in range(4)
    )
    return TrajectoryDataset(
        name="test",
        interval_seconds=10.0,
        bbox=BoundingBox(0, 0, 1000, 1000),
        trajectories=trajectories,
    )


class TestTrajectoryDataset:
    def test_interval_consistency_enforced(self, dataset):
        with pytest.raises(ValueError):
            TrajectoryDataset(
                name="bad",
                interval_seconds=5.0,
                bbox=dataset.bbox,
                trajectories=dataset.trajectories,
            )

    def test_all_points_stacks_everything(self, dataset):
        assert dataset.all_points().shape == (4 * 20, 2)

    def test_split_users_is_a_partition(self, dataset, rng):
        train, test = dataset.split_users(0.25, rng)
        assert train.num_users + test.num_users == dataset.num_users
        train_ids = {t.user_id for t in train.trajectories}
        test_ids = {t.user_id for t in test.trajectories}
        assert not train_ids & test_ids

    def test_split_time_preserves_users(self, dataset):
        train, test = dataset.split_time(0.4)
        assert train.num_users == test.num_users == dataset.num_users
        for full, head, tail in zip(
            dataset.trajectories, train.trajectories, test.trajectories
        ):
            assert len(head) + len(tail) == len(full)
            assert np.allclose(
                np.concatenate([head.points, tail.points]), full.points
            )

    def test_split_time_validation(self, dataset):
        with pytest.raises(ValueError):
            dataset.split_time(0.0)

    def test_subsample_dataset(self, dataset):
        half = dataset.subsample(2)
        assert half.interval_seconds == 20.0
        assert all(len(t) == 10 for t in half.trajectories)

    def test_average_speed_positive(self, dataset):
        assert dataset.average_speed() > 0.0
