"""Tests for transportation-mode-aware prediction."""

import numpy as np
import pytest

from repro.geo.geometry import BoundingBox
from repro.mobility.modes import (
    ModeAwareSVRPredictor,
    ModeThresholds,
    window_speeds,
)
from repro.mobility.trajectory import Trajectory, TrajectoryDataset


class TestModeThresholds:
    def test_classification(self):
        thresholds = ModeThresholds(walk_max=2.0, bike_max=6.0)
        assert thresholds.classify(0.5) == "walk"
        assert thresholds.classify(3.0) == "bike"
        assert thresholds.classify(10.0) == "vehicle"

    def test_boundaries(self):
        thresholds = ModeThresholds(walk_max=2.0, bike_max=6.0)
        assert thresholds.classify(2.0) == "bike"
        assert thresholds.classify(6.0) == "vehicle"


class TestWindowSpeeds:
    def test_constant_velocity(self):
        window = np.array([[[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]]])
        speeds = window_speeds(window, interval_seconds=5.0)
        assert speeds[0] == pytest.approx(2.0)

    def test_stationary(self):
        window = np.zeros((1, 4, 2))
        assert window_speeds(window, 10.0)[0] == 0.0


def multi_mode_dataset(rng: np.random.Generator) -> TrajectoryDataset:
    """Half the users walk (1 m/s), half drive (10 m/s), straight lines."""
    trajectories = []
    for user in range(16):
        speed = 1.0 if user % 2 == 0 else 10.0
        start = rng.uniform(1000, 9000, size=2)
        direction = rng.uniform(-1, 1, size=2)
        direction /= np.hypot(*direction)
        points = start + np.outer(np.arange(40) * speed * 20.0, direction)
        trajectories.append(Trajectory(user, 20.0, points))
    return TrajectoryDataset(
        name="multi-mode",
        interval_seconds=20.0,
        bbox=BoundingBox(-20000, -20000, 30000, 30000),
        trajectories=tuple(trajectories),
    )


class TestModeAwareSVRPredictor:
    def test_learns_both_modes(self, rng):
        dataset = multi_mode_dataset(rng)
        predictor = ModeAwareSVRPredictor(
            min_mode_samples=50, epochs=600, rng=rng
        ).fit(dataset)
        assert predictor.mode_counts_["walk"] > 0
        assert predictor.mode_counts_["vehicle"] > 0
        errors = []
        for trajectory in dataset.trajectories[:6]:
            window = trajectory.points[:5]
            predicted = np.array(predictor.predict_point(window))
            actual = trajectory.points[5]
            errors.append(float(np.hypot(*(predicted - actual))))
        # Vehicle legs move 200 m per step; predictions must be far more
        # accurate than that on average.
        assert np.mean(errors) < 60.0

    def test_sparse_modes_fall_back_to_global(self, rng):
        dataset = multi_mode_dataset(rng)
        predictor = ModeAwareSVRPredictor(
            min_mode_samples=10_000, epochs=50, rng=rng
        ).fit(dataset)
        assert predictor._per_mode == {}
        # Still predicts via the global model.
        window = dataset.trajectories[0].points[:5]
        assert len(predictor.predict_point(window)) == 2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ModeAwareSVRPredictor().predict_points(np.zeros((1, 5, 2)))

    def test_window_shape_validation(self, rng):
        predictor = ModeAwareSVRPredictor(epochs=10, rng=rng)
        predictor.fit(multi_mode_dataset(rng))
        with pytest.raises(ValueError):
            predictor.predict_points(np.zeros((1, 3, 2)))

    def test_empty_dataset_rejected(self, rng):
        dataset = TrajectoryDataset(
            name="short",
            interval_seconds=20.0,
            bbox=BoundingBox(0, 0, 100, 100),
            trajectories=(Trajectory(0, 20.0, np.zeros((2, 2))),),
        )
        with pytest.raises(ValueError):
            ModeAwareSVRPredictor(rng=rng).fit(dataset)
