"""Tests for the Markov, SVR, and LSTM mobility predictors."""

import numpy as np
import pytest

from repro.geo.geometry import BoundingBox
from repro.geo.hexgrid import HexGrid
from repro.mobility.lstm import LSTMPredictor
from repro.mobility.markov import MarkovPredictor
from repro.mobility.svr import SVRPredictor
from repro.mobility.trajectory import Trajectory, TrajectoryDataset


def constant_velocity_dataset(
    rng: np.random.Generator, users: int = 12, n: int = 40
) -> TrajectoryDataset:
    """Users moving in straight lines: next = 2*p[-1] - p[-2] exactly."""
    trajectories = []
    for user in range(users):
        start = rng.uniform(100, 900, size=2)
        velocity = rng.uniform(-30, 30, size=2)
        points = start + np.outer(np.arange(n), velocity)
        trajectories.append(Trajectory(user, 20.0, points))
    return TrajectoryDataset(
        name="cv",
        interval_seconds=20.0,
        bbox=BoundingBox(-5000, -5000, 5000, 5000),
        trajectories=tuple(trajectories),
    )


class TestSVRPredictor:
    def test_learns_constant_velocity(self, rng):
        dataset = constant_velocity_dataset(rng)
        predictor = SVRPredictor(history=5, rng=rng).fit(dataset)
        trajectory = dataset.trajectories[0]
        window = trajectory.points[:5]
        predicted = predictor.predict_point(window)
        actual = trajectory.points[5]
        assert np.hypot(*(np.array(predicted) - actual)) < 15.0

    def test_batch_prediction_shape(self, rng):
        dataset = constant_velocity_dataset(rng)
        predictor = SVRPredictor(history=5, rng=rng).fit(dataset)
        windows = np.stack([t.points[:5] for t in dataset.trajectories[:3]])
        assert predictor.predict_points(windows).shape == (3, 2)

    def test_window_shape_validation(self, rng):
        dataset = constant_velocity_dataset(rng)
        predictor = SVRPredictor(history=5, rng=rng).fit(dataset)
        with pytest.raises(ValueError):
            predictor.predict_point(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            predictor.predict_points(np.zeros((2, 4, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SVRPredictor().predict_points(np.zeros((1, 5, 2)))

    def test_fit_requires_long_enough_traces(self, rng):
        dataset = constant_velocity_dataset(rng, n=3)
        with pytest.raises(ValueError):
            SVRPredictor(history=5, rng=rng).fit(dataset)


class TestLSTMPredictor:
    def test_learns_constant_velocity(self, rng):
        dataset = constant_velocity_dataset(rng)
        predictor = LSTMPredictor(history=5, epochs=60, rng=rng).fit(dataset)
        trajectory = dataset.trajectories[0]
        predicted = predictor.predict_point(trajectory.points[:5])
        actual = trajectory.points[5]
        assert np.hypot(*(np.array(predicted) - actual)) < 80.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LSTMPredictor().predict_points(np.zeros((1, 5, 2)))


class TestMarkovPredictor:
    @pytest.fixture
    def grid(self):
        return HexGrid(50.0)

    def cyclic_dataset(self, grid) -> TrajectoryDataset:
        """Users repeatedly walking A -> B -> C -> A between cell centres."""
        from repro.geo.hexgrid import HexCell

        centers = [
            grid.center(HexCell(0, 0)),
            grid.center(HexCell(2, 0)),
            grid.center(HexCell(0, 2)),
        ]
        points = np.array(centers * 10)
        return TrajectoryDataset(
            name="cycle",
            interval_seconds=20.0,
            bbox=BoundingBox(-1000, -1000, 1000, 1000),
            trajectories=(Trajectory(0, 20.0, points),),
        )

    def test_learns_deterministic_cycle(self, grid):
        from repro.geo.hexgrid import HexCell

        dataset = self.cyclic_dataset(grid)
        predictor = MarkovPredictor(grid).fit(dataset)
        recent = [HexCell(0, 0), HexCell(2, 0)]
        ranked = predictor.predict_cells(recent, top_k=1)
        assert ranked[0][0] == HexCell(0, 2)
        assert ranked[0][1] > 0.9

    def test_unseen_context_falls_back_to_unconditional(self, grid):
        from repro.geo.hexgrid import HexCell

        dataset = self.cyclic_dataset(grid)
        predictor = MarkovPredictor(grid).fit(dataset)
        ranked = predictor.predict_cells([HexCell(50, 50)], top_k=3)
        assert len(ranked) == 3  # the three cells of the cycle
        assert sum(p for _, p in ranked) == pytest.approx(1.0)

    def test_probabilities_descending(self, grid, rng):
        from repro.trajectories.synthetic import kaist_like

        dataset = kaist_like(rng, num_users=5, duration_steps=100)
        predictor = MarkovPredictor(grid).fit(dataset)
        cells = predictor.cells_of_points(dataset.trajectories[0].points[:5])
        ranked = predictor.predict_cells(cells, top_k=5)
        probabilities = [p for _, p in ranked]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_top_k_validation(self, grid):
        predictor = MarkovPredictor(grid)
        with pytest.raises(ValueError):
            predictor.predict_cells([], top_k=0)

    def test_parameter_validation(self, grid):
        with pytest.raises(ValueError):
            MarkovPredictor(grid, max_order=0)
        with pytest.raises(ValueError):
            MarkovPredictor(grid, subsequence_ratio=0.0)

    def test_empty_model_returns_nothing(self, grid):
        predictor = MarkovPredictor(grid)
        assert predictor.predict_cells([], top_k=2) == []
