"""Tests for the mobility evaluation harness (Table III / Fig 6 machinery)."""

import numpy as np
import pytest

from repro.geo.hexgrid import HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.mobility.evaluation import (
    benefit_cost_ratio,
    evaluate_predictor,
    futile_prediction_ratio,
    point_prediction_mae,
    sliding_windows,
)
from repro.mobility.markov import MarkovPredictor
from repro.mobility.predictor import PointPredictor
from repro.mobility.svr import SVRPredictor
from repro.trajectories.synthetic import kaist_like


@pytest.fixture(scope="module")
def small_world():
    rng = np.random.default_rng(77)
    dataset = kaist_like(rng, num_users=8, duration_steps=150)
    grid = HexGrid(50.0)
    registry = EdgeServerRegistry.from_visited_points(grid, dataset.all_points())
    train, test = dataset.split_users(0.35, rng)
    return dataset, grid, registry, train, test


class PerfectOracle(PointPredictor):
    """Test double that 'predicts' using the ground-truth next point."""

    name = "oracle"

    def __init__(self, history: int = 5):
        self.history = history
        self._lookup: dict = {}

    def fit(self, dataset):
        for trajectory in dataset.trajectories:
            X, y = trajectory.windows(self.history)
            for window, target in zip(X, y):
                self._lookup[window.tobytes()] = target
        return self

    def predict_points(self, windows):
        return np.stack([self._lookup[w.tobytes()] for w in windows])


class TestSlidingWindows:
    def test_window_counts(self, small_world):
        dataset, *_ = small_world
        X, y = sliding_windows(dataset, history=5)
        expected = sum(max(0, len(t) - 5) for t in dataset.trajectories)
        assert len(X) == len(y) == expected

    def test_empty_for_long_history(self, small_world):
        dataset, *_ = small_world
        X, y = sliding_windows(dataset, history=10_000)
        assert len(X) == 0


class TestEvaluatePredictor:
    def test_oracle_scores_perfect_top1(self, small_world):
        dataset, grid, registry, train, test = small_world
        oracle = PerfectOracle().fit(test)
        accuracy = evaluate_predictor(oracle, test, registry)
        assert accuracy.top_k_accuracy[1] == pytest.approx(100.0)
        assert accuracy.mae_meters == pytest.approx(0.0)

    def test_top2_at_least_top1(self, small_world):
        _, grid, registry, train, test = small_world
        rng = np.random.default_rng(5)
        predictor = SVRPredictor(rng=rng).fit(train)
        accuracy = evaluate_predictor(predictor, test, registry)
        assert accuracy.top_k_accuracy[2] >= accuracy.top_k_accuracy[1]
        assert 0 <= accuracy.top_k_accuracy[1] <= 100.0
        assert accuracy.evaluated_windows > 0

    def test_markov_accuracy_bounds(self, small_world):
        _, grid, registry, train, test = small_world
        predictor = MarkovPredictor(grid).fit(train)
        accuracy = evaluate_predictor(predictor, test, registry)
        assert accuracy.mae_meters is None
        assert 0 <= accuracy.top_k_accuracy[2] <= 100.0

    def test_unsupported_predictor_type(self, small_world):
        from repro.mobility.predictor import MobilityPredictor

        class Weird(MobilityPredictor):
            def fit(self, dataset):
                return self

        _, _, registry, _, test = small_world
        with pytest.raises(TypeError):
            evaluate_predictor(Weird(), test, registry)

    def test_point_prediction_mae(self, small_world):
        *_, test = small_world
        oracle = PerfectOracle().fit(test)
        assert point_prediction_mae(oracle, test, history=5) == pytest.approx(0.0)


class TestFutileAndBenefit:
    def test_futile_ratio_bounds(self, small_world):
        dataset, grid, *_ = small_world
        ratio = futile_prediction_ratio(dataset, grid)
        assert 0.0 <= ratio <= 1.0

    def test_slow_walkers_are_mostly_futile(self, small_world):
        """Campus walkers usually stay in their 50 m cell for 30 s."""
        dataset, grid, *_ = small_world
        assert futile_prediction_ratio(dataset, grid) > 0.5

    def test_longer_interval_reduces_futility(self, small_world):
        dataset, grid, *_ = small_world
        short = futile_prediction_ratio(dataset, grid)
        long = futile_prediction_ratio(dataset.subsample(4), grid)
        assert long < short

    def test_benefit_cost_formula(self):
        assert benefit_cost_ratio(0.5, 0.5) == pytest.approx(0.25)
        assert benefit_cost_ratio(1.0, 0.0) == 1.0
        with pytest.raises(ValueError):
            benefit_cost_ratio(1.5, 0.0)
        with pytest.raises(ValueError):
            benefit_cost_ratio(0.5, -0.1)
