"""Tests for execution-time estimators and the Fig 4 harness."""

import numpy as np
import pytest

from repro.dnn.layer import LayerKind
from repro.estimation.estimator import (
    ContentionEstimator,
    LLPerLoadEstimator,
    LLWithLoadEstimator,
    RFWithLoadEstimator,
)
from repro.estimation.evaluation import compare_estimators
from repro.estimation.features import (
    FEATURE_NAMES,
    build_matrix,
    layer_features,
    sample_features,
)
from repro.profiling.gpu_stats import GpuStats
from repro.profiling.profiler import generate_contention_dataset


@pytest.fixture(scope="module")
def dataset(tiny_graph, server_device):
    rng = np.random.default_rng(11)
    train = generate_contention_dataset(
        tiny_graph, server_device, rng,
        client_counts=(1, 4, 8, 12), rounds_per_count=15,
    )
    test = generate_contention_dataset(
        tiny_graph, server_device, rng,
        client_counts=(1, 4, 8, 12), rounds_per_count=5,
    )
    return train, test


class TestFeatures:
    def test_layer_feature_vector(self, tiny_graph):
        info = tiny_graph.info("conv0")
        features = layer_features(info)
        assert features.tolist() == [
            float(info.flops),
            float(info.input_bytes),
            float(info.output_bytes),
            float(info.weight_bytes),
        ]

    def test_sample_features_with_and_without_load(self, dataset):
        train, _ = dataset
        sample = train[0]
        with_load = sample_features(sample, with_load=True)
        without = sample_features(sample, with_load=False)
        assert len(with_load) == len(FEATURE_NAMES)
        assert len(without) == 4
        assert np.allclose(with_load[:4], without)

    def test_build_matrix_shapes(self, dataset):
        train, _ = dataset
        X, y = build_matrix(train)
        assert X.shape == (len(train), len(FEATURE_NAMES))
        assert y.shape == (len(train),)

    def test_build_matrix_rejects_empty(self):
        with pytest.raises(ValueError):
            build_matrix([])


class TestEstimatorFamilies:
    def test_all_estimators_predict_positive_times(self, dataset, rng):
        train, test = dataset
        for estimator in (
            LLPerLoadEstimator(),
            LLWithLoadEstimator(),
            RFWithLoadEstimator(rng=rng),
        ):
            estimator.fit(train)
            predictions = estimator.predict_batch(test[:50])
            assert predictions.shape == (50,)
            assert np.all(np.isfinite(predictions))

    def test_rf_tracks_load(self, dataset, rng):
        """RF predictions must grow with the observed load."""
        train, _ = dataset
        estimator = RFWithLoadEstimator(rng=rng).fit(train)
        info = train[0].info
        light = GpuStats(5.0, 3.0, 40.0, 1)
        heavy = GpuStats(95.0, 60.0, 80.0, 12)
        assert estimator.predict(info, heavy) > estimator.predict(info, light)

    def test_rf_feature_importances(self, dataset, rng):
        train, _ = dataset
        estimator = RFWithLoadEstimator(rng=rng).fit(train)
        importances = estimator.feature_importances(LayerKind.CONV)
        assert importances.shape == (len(FEATURE_NAMES),)
        assert importances.sum() == pytest.approx(1.0)

    def test_unknown_kind_raises(self, dataset, rng, tiny_graph):
        train, _ = dataset
        estimator = RFWithLoadEstimator(rng=rng).fit(train)
        pool_info = next(
            i for i in tiny_graph.infos() if i.kind is LayerKind.GLOBAL_POOL_AVG
        )
        with pytest.raises(KeyError):
            estimator.predict(pool_info, GpuStats.idle())

    def test_ll_per_load_uses_nearest_bucket(self, dataset):
        train, _ = dataset
        estimator = LLPerLoadEstimator().fit(train)
        info = train[0].info
        # 5 clients is not a trained bucket; nearest (4) must be used, i.e.
        # prediction equals the 4-client prediction.
        stats5 = GpuStats(50.0, 30.0, 60.0, 5)
        stats4 = GpuStats(50.0, 30.0, 60.0, 4)
        assert estimator.predict(info, stats5) == estimator.predict(info, stats4)


class TestComparison:
    def test_fig4_shape(self, dataset, rng):
        """GPU-load-aware estimation must beat plain LL under heavy load
        (Fig 4's core claim).  On this small graph either load-aware family
        may win a given seed, so the assertion aggregates over heavy loads
        and takes the better load-aware model."""
        train, test = dataset
        comparison = compare_estimators(train, test, rng)
        heavy = [c for c in comparison.client_counts if c >= 8]
        ll = sum(comparison.mae_by_estimator["LL"][c] for c in heavy)
        rf = sum(
            comparison.mae_by_estimator["RF w/ server load info"][c]
            for c in heavy
        )
        ll_load = sum(
            comparison.mae_by_estimator["LL w/ server load info"][c]
            for c in heavy
        )
        assert min(rf, ll_load) < ll

    def test_importances_reported(self, dataset, rng):
        train, test = dataset
        comparison = compare_estimators(train, test, rng)
        assert set(comparison.feature_importances) == set(FEATURE_NAMES)
        workload = sum(
            v for k, v in comparison.feature_importances.items()
            if k in ("num_clients", "kernel_utilization",
                     "memory_utilization", "temperature")
        )
        # The paper's finding: workload features dominate.
        assert workload > 0.5

    def test_to_rows_layout(self, dataset, rng):
        train, test = dataset
        comparison = compare_estimators(train, test, rng)
        rows = comparison.to_rows()
        assert rows[0][0] == "clients"
        assert len(rows) == 1 + len(comparison.client_counts)


class TestContentionEstimator:
    def test_predicts_higher_slowdown_under_load(self, dataset, rng):
        train, _ = dataset
        estimator = ContentionEstimator(rng=rng).fit(train)
        light = GpuStats(5.0, 3.0, 40.0, 1)
        heavy = GpuStats(95.0, 60.0, 80.0, 12)
        assert estimator.predict_slowdown(heavy) > estimator.predict_slowdown(light)
        assert estimator.predict_slowdown(light) >= 1.0

    def test_predict_time_scales_base(self, dataset, rng):
        train, _ = dataset
        estimator = ContentionEstimator(rng=rng).fit(train)
        stats = GpuStats(50.0, 30.0, 60.0, 4)
        assert estimator.predict_time(2e-3, stats) == pytest.approx(
            2e-3 * estimator.predict_slowdown(stats)
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ContentionEstimator().predict_slowdown(GpuStats.idle())

    def test_rejects_degenerate_samples(self):
        with pytest.raises(ValueError):
            ContentionEstimator().fit([])
