"""Batched estimator paths must agree with the scalar paths element-wise.

``predict_slowdown_batch`` and the ``predict_batch`` overrides replace
per-sample Python loops in the planning hot path; every element has to
match what the scalar call would have produced (bit-for-bit for the
forest paths, which same-seed simulation identity depends on).
"""

import numpy as np
import pytest

from repro.estimation.estimator import (
    ContentionEstimator,
    LLPerLoadEstimator,
    LLWithLoadEstimator,
    RFWithLoadEstimator,
)
from repro.profiling.gpu_stats import GpuStats
from repro.profiling.profiler import ContentionSample, generate_contention_dataset


@pytest.fixture(scope="module")
def dataset(branchy_graph, server_device):
    rng = np.random.default_rng(42)
    train = generate_contention_dataset(
        branchy_graph, server_device, rng,
        client_counts=(1, 2, 4, 8), rounds_per_count=4,
    )
    test = generate_contention_dataset(
        branchy_graph, server_device, rng,
        client_counts=(1, 2, 4, 8), rounds_per_count=2,
    )
    return train, test


@pytest.fixture(scope="module")
def contention_estimator(dataset):
    train, _ = dataset
    return ContentionEstimator(
        n_estimators=8, max_depth=5, rng=np.random.default_rng(0)
    ).fit(train)


class TestContentionEstimatorBatch:
    def test_batch_matches_scalar_bitwise(self, contention_estimator, dataset):
        _, test = dataset
        stats_list = [sample.stats for sample in test]
        batch = contention_estimator.predict_slowdown_batch(stats_list)
        scalar = [
            contention_estimator.predict_slowdown(stats)
            for stats in stats_list
        ]
        assert batch.shape == (len(stats_list),)
        assert np.array_equal(batch, np.array(scalar))

    def test_clamp_applies_per_element(self, dataset):
        # Train on sub-unity slowdowns so the raw forest output sits below
        # 1.0: both paths must clamp each element up to the 1.0 floor.
        train, test = dataset
        fast_samples = [
            ContentionSample(
                info=s.info,
                stats=s.stats,
                base_time=s.base_time,
                measured_time=0.5 * s.base_time,
            )
            for s in train
        ]
        estimator = ContentionEstimator(
            n_estimators=6, max_depth=4, rng=np.random.default_rng(1)
        ).fit(fast_samples)
        stats_list = [sample.stats for sample in test[:20]]
        batch = estimator.predict_slowdown_batch(stats_list)
        assert np.all(batch == 1.0)
        for i, stats in enumerate(stats_list):
            assert batch[i] == estimator.predict_slowdown(stats)

    def test_empty_batch(self, contention_estimator):
        out = contention_estimator.predict_slowdown_batch([])
        assert out.shape == (0,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ContentionEstimator().predict_slowdown_batch(
                [GpuStats(10.0, 10.0, 40.0, 1)]
            )


class TestExecutionTimeEstimatorBatch:
    def test_rf_batch_matches_scalar_bitwise(self, dataset):
        train, test = dataset
        estimator = RFWithLoadEstimator(
            n_estimators=6, max_depth=6, rng=np.random.default_rng(2)
        ).fit(train)
        batch = estimator.predict_batch(test)
        scalar = [estimator.predict(s.info, s.stats) for s in test]
        assert np.array_equal(batch, np.array(scalar))

    @pytest.mark.parametrize(
        "estimator_cls", [LLWithLoadEstimator, LLPerLoadEstimator]
    )
    def test_ll_batch_matches_scalar(self, dataset, estimator_cls):
        train, test = dataset
        estimator = estimator_cls().fit(train)
        batch = estimator.predict_batch(test)
        scalar = np.array(
            [estimator.predict(s.info, s.stats) for s in test]
        )
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0.0)

    def test_batch_preserves_sample_order(self, dataset):
        # Mixed layer kinds scatter through per-kind model groups; the
        # output must land back in input order.
        train, test = dataset
        estimator = RFWithLoadEstimator(
            n_estimators=4, max_depth=4, rng=np.random.default_rng(3)
        ).fit(train)
        shuffled = list(reversed(test))
        assert np.array_equal(
            estimator.predict_batch(shuffled),
            estimator.predict_batch(test)[::-1],
        )
