"""Cache-equivalence of the partitioner's quantized-slowdown memoization.

The large-scale simulator calls ``partition`` for every client every
interval; correctness of the memoization means (a) a slowdown and its
quantized key are indistinguishable (same cached object), and (b) results
on opposite sides of a quantum boundary differ only when the optimal plan
actually changes — never because of stale cache contents.
"""

import numpy as np
import pytest

from repro.partitioning.partitioner import DNNPartitioner
from repro.partitioning.shortest_path import optimal_plan


@pytest.fixture
def partitioner(tiny_profile):
    return DNNPartitioner(tiny_profile, 35e6, 50e6)


class TestQuantize:
    def test_quantize_is_idempotent(self, partitioner):
        rng = np.random.default_rng(17)
        for slowdown in rng.uniform(0.5, 8.0, size=100):
            key = partitioner.quantize(slowdown)
            assert partitioner.quantize(key) == key

    def test_quantize_clamps_below_one(self, partitioner):
        assert partitioner.quantize(0.1) == 1.0
        assert partitioner.quantize(-3.0) == 1.0

    def test_private_alias_still_works(self, partitioner):
        assert partitioner._quantize(1.7) == partitioner.quantize(1.7)


class TestCacheEquivalence:
    def test_partition_of_quantized_is_same_object(self, partitioner):
        """For random slowdowns, partition(s) is partition(quantize(s))."""
        rng = np.random.default_rng(23)
        for slowdown in rng.uniform(0.5, 8.0, size=200):
            direct = partitioner.partition(slowdown)
            via_key = partitioner.partition(partitioner.quantize(slowdown))
            assert direct is via_key
            assert direct.slowdown == partitioner.quantize(slowdown)

    def test_same_bucket_same_object(self, partitioner):
        quantum = partitioner._quantum
        base = 2.0  # a bucket centre
        for offset in (-0.49, -0.25, 0.0, 0.25, 0.49):
            result = partitioner.partition(base + offset * quantum)
            assert result is partitioner.partition(base)

    def test_cached_results_are_never_stale(self, partitioner):
        """Each cached result equals a fresh computation at its key: the
        plan is the true optimum for that bucket's scaled costs."""
        keys = [1.0 + 0.25 * i for i in range(16)]
        for key in keys:
            cached = partitioner.partition(key)
            fresh_costs = partitioner._base_costs.scaled_server(key)
            fresh_plan = optimal_plan(fresh_costs)
            assert cached.plan.server_indices == fresh_plan.server_indices
            assert cached.plan.latency == pytest.approx(fresh_plan.latency)

    def test_hit_miss_counters(self, partitioner):
        assert partitioner.cache_hits == 0
        assert partitioner.cache_misses == 0
        assert partitioner.cache_hit_ratio == 0.0
        partitioner.partition(1.0)
        assert (partitioner.cache_hits, partitioner.cache_misses) == (0, 1)
        partitioner.partition(1.0)
        partitioner.partition(1.1)  # quantizes to the same 1.0 bucket
        assert (partitioner.cache_hits, partitioner.cache_misses) == (2, 1)
        partitioner.partition(2.0)
        assert (partitioner.cache_hits, partitioner.cache_misses) == (2, 2)
        assert partitioner.cache_hit_ratio == pytest.approx(0.5)

    def test_degraded_shares_counters(self, partitioner):
        partitioner.partition(1.0)
        partitioner.degraded(1.0, inflation=2.0)  # new 2.0 bucket: miss
        partitioner.degraded(1.0, inflation=2.0)  # cached now: hit
        assert (partitioner.cache_hits, partitioner.cache_misses) == (1, 2)

    def test_across_boundary_differs_only_when_plan_changes(self, partitioner):
        """Walk adjacent quantum buckets: either the optimal plan changed
        (different server layer set) or the cached artefacts are
        structurally identical apart from the slowdown key."""
        keys = [1.0 + 0.25 * i for i in range(20)]
        results = [partitioner.partition(k) for k in keys]
        changes = 0
        for before, after in zip(results, results[1:]):
            assert before is not after  # distinct buckets, distinct entries
            if before.plan.server_indices == after.plan.server_indices:
                # Plan unchanged => same uploaded content (the greedy chunk
                # *order* may shift, as efficiency depends on server speed).
                assert (
                    before.schedule.total_bytes == after.schedule.total_bytes
                )
                uploaded_before = {
                    name
                    for chunk in before.schedule.chunks
                    for name in chunk.layer_names
                }
                uploaded_after = {
                    name
                    for chunk in after.schedule.chunks
                    for name in chunk.layer_names
                }
                assert uploaded_before == uploaded_after
            else:
                changes += 1
        # Over a 1x..5.75x sweep the tiny model's plan must actually move
        # at least once (otherwise this test exercises nothing).
        assert changes >= 1
