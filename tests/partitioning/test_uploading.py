"""Tests for the efficiency-greedy upload schedule and fractional selection."""

import numpy as np
import pytest

from repro.partitioning.fractional import select_fraction
from repro.partitioning.neurosurgeon import neurosurgeon_plan
from repro.partitioning.shortest_path import optimal_plan
from repro.partitioning.uploading import build_upload_schedule


@pytest.fixture(scope="module")
def planned(tiny_profile):
    from repro.partitioning.execution_graph import ExecutionCosts

    costs = ExecutionCosts.build(
        tiny_profile.graph,
        tiny_profile.client_times,
        tiny_profile.server_times,
        35e6,
        50e6,
    )
    plan = optimal_plan(costs)
    schedule = build_upload_schedule(costs, plan)
    return costs, plan, schedule


class TestSchedule:
    def test_covers_exactly_the_server_layers(self, planned):
        _, plan, schedule = planned
        scheduled = [n for c in schedule.chunks for n in c.layer_names]
        assert sorted(scheduled) == sorted(plan.server_layers)
        assert len(scheduled) == len(set(scheduled))  # no duplicates

    def test_total_bytes_matches_plan(self, planned):
        costs, plan, schedule = planned
        assert schedule.total_bytes == pytest.approx(
            plan.server_weight_bytes(costs)
        )

    def test_latencies_monotone_nonincreasing(self, planned):
        _, _, schedule = planned
        latencies = schedule.latencies
        assert all(a >= b - 1e-12 for a, b in zip(latencies, latencies[1:]))

    def test_endpoints(self, planned):
        costs, plan, schedule = planned
        assert schedule.latencies[0] == pytest.approx(costs.local_latency())
        assert schedule.latencies[-1] == pytest.approx(plan.latency)

    def test_latency_after_bytes_steps(self, planned):
        _, _, schedule = planned
        # Zero-byte chunks (weightless layers) are instantly available, so
        # at 0 received bytes the latency is the stage after the leading
        # zero-byte chunks.
        free = 0
        while free < len(schedule.chunks) and schedule.chunks[free].nbytes == 0:
            free += 1
        assert schedule.latency_after_bytes(0.0) == schedule.latencies[free]
        assert schedule.latency_after_bytes(schedule.total_bytes) == (
            schedule.latencies[-1]
        )
        # Just before the first paying chunk completes, its stage has not
        # been reached yet.
        first = schedule.chunks[free].nbytes
        assert first > 0
        assert (
            schedule.latency_after_bytes(first * 0.5)
            == schedule.latencies[free]
        )
        assert schedule.latency_after_bytes(first) == schedule.latencies[free + 1]

    def test_cumulative_bytes(self, planned):
        _, _, schedule = planned
        cumulative = schedule.cumulative_bytes()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(schedule.total_bytes)

    def test_empty_plan_yields_empty_schedule(self, tiny_profile):
        from repro.partitioning.execution_graph import ExecutionCosts
        from repro.partitioning.shortest_path import constrained_plan

        costs = ExecutionCosts.build(
            tiny_profile.graph,
            tiny_profile.client_times,
            tiny_profile.server_times,
            35e6,
            50e6,
        )
        plan = constrained_plan(costs, frozenset())
        schedule = build_upload_schedule(costs, plan)
        assert schedule.chunks == ()
        assert schedule.latencies == (pytest.approx(costs.local_latency()),)

    def test_subdivision_respects_cap(self, planned):
        costs, plan, _ = planned
        cap = 50_000.0
        schedule = build_upload_schedule(costs, plan, max_chunk_bytes=cap)
        for chunk in schedule.chunks:
            assert chunk.nbytes <= cap or len(chunk.indices) == 1

    def test_subdivision_preserves_coverage_and_endpoints(self, planned):
        costs, plan, coarse = planned
        fine = build_upload_schedule(costs, plan, max_chunk_bytes=50_000.0)
        assert fine.total_bytes == pytest.approx(coarse.total_bytes)
        assert fine.latencies[-1] == pytest.approx(coarse.latencies[-1])
        assert len(fine.chunks) >= len(coarse.chunks)

    def test_invalid_cap_rejected(self, planned):
        costs, plan, _ = planned
        with pytest.raises(ValueError):
            build_upload_schedule(costs, plan, max_chunk_bytes=0.0)

    def test_efficiency_ordering_on_inception_like_structure(self):
        """Compute-dense front layers must be scheduled before a huge fc."""
        from repro.dnn.models import inception_21k
        from repro.partitioning.execution_graph import ExecutionCosts
        from repro.profiling.hardware import odroid_xu4, titan_xp_server
        from repro.profiling.profiler import ExecutionProfile

        profile = ExecutionProfile.build(
            inception_21k(), odroid_xu4(), titan_xp_server()
        )
        costs = ExecutionCosts.build(
            profile.graph, profile.client_times, profile.server_times,
            35e6, 50e6,
        )
        plan = optimal_plan(costs)
        schedule = build_upload_schedule(costs, plan)
        position = {
            name: i
            for i, chunk in enumerate(schedule.chunks)
            for name in chunk.layer_names
        }
        # The 21k-way classifier is the least efficient payload: last chunk.
        assert position["fc1"] == len(schedule.chunks) - 1
        assert position["conv1/7x7_s2"] == 0


class TestFractionalSelection:
    def test_full_budget_selects_everything(self, planned):
        _, _, schedule = planned
        selection = select_fraction(schedule, schedule.total_bytes)
        assert selection.fraction_of_bytes == pytest.approx(1.0)
        assert selection.latency == pytest.approx(schedule.latencies[-1])
        assert selection.latency_penalty == pytest.approx(0.0)

    def test_zero_budget_selects_only_free_chunks(self, planned):
        costs, _, schedule = planned
        selection = select_fraction(schedule, 0.0)
        assert all(chunk.nbytes == 0 for chunk in selection.chunks)
        assert selection.nbytes == 0.0

    def test_partial_budget_prefix(self, planned):
        _, _, schedule = planned
        free = 0
        while schedule.chunks[free].nbytes == 0:
            free += 1
        budget = schedule.chunks[free].nbytes
        selection = select_fraction(schedule, budget)
        assert selection.chunks == schedule.chunks[: free + 1]
        assert selection.latency == schedule.latencies[free + 1]

    def test_negative_budget_rejected(self, planned):
        _, _, schedule = planned
        with pytest.raises(ValueError):
            select_fraction(schedule, -1.0)

    def test_penalty_decreases_with_budget(self, planned):
        _, _, schedule = planned
        budgets = np.linspace(0, schedule.total_bytes, 6)
        penalties = [select_fraction(schedule, b).latency_penalty for b in budgets]
        assert all(a >= b - 1e-12 for a, b in zip(penalties, penalties[1:]))


class TestNeurosurgeon:
    def test_never_beats_optimal(self, planned):
        costs, plan, _ = planned
        baseline = neurosurgeon_plan(costs)
        assert baseline.latency >= plan.latency - 1e-12

    def test_single_contiguous_split(self, planned):
        costs, _, _ = planned
        baseline = neurosurgeon_plan(costs)
        placements = [p.value for p in baseline.placements]
        # Once the plan switches to the server it never switches back.
        if "server" in placements:
            first = placements.index("server")
            assert all(p == "server" for p in placements[first:])

    def test_prefers_local_when_network_is_terrible(self, tiny_profile):
        from repro.partitioning.execution_graph import ExecutionCosts

        costs = ExecutionCosts.build(
            tiny_profile.graph,
            tiny_profile.client_times,
            tiny_profile.server_times,
            uplink_bps=1.0,  # ~infinitely slow network
            downlink_bps=1.0,
        )
        baseline = neurosurgeon_plan(costs)
        assert not baseline.offloads_anything
        assert baseline.latency == pytest.approx(costs.local_latency())
