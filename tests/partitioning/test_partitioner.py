"""Tests for the DNNPartitioner facade (caching, quantization)."""

import pytest

from repro.partitioning.partitioner import DNNPartitioner


class TestPartitioner:
    def test_caches_by_quantized_slowdown(self, tiny_profile):
        partitioner = DNNPartitioner(tiny_profile, 35e6, 50e6)
        a = partitioner.partition(1.05)
        b = partitioner.partition(1.10)  # same 0.25 bucket
        assert a is b
        c = partitioner.partition(1.6)
        assert c is not a

    def test_slowdown_below_one_clamped(self, tiny_profile):
        partitioner = DNNPartitioner(tiny_profile, 35e6, 50e6)
        assert partitioner.partition(0.2) is partitioner.partition(1.0)

    def test_higher_slowdown_never_faster(self, tiny_profile):
        partitioner = DNNPartitioner(tiny_profile, 35e6, 50e6)
        lat1 = partitioner.partition(1.0).plan.latency
        lat4 = partitioner.partition(4.0).plan.latency
        assert lat4 >= lat1 - 1e-12

    def test_higher_slowdown_offloads_less(self, tiny_profile):
        partitioner = DNNPartitioner(tiny_profile, 35e6, 50e6)
        few = len(partitioner.partition(8.0).plan.server_indices)
        many = len(partitioner.partition(1.0).plan.server_indices)
        assert few <= many

    def test_local_latency(self, tiny_profile):
        partitioner = DNNPartitioner(tiny_profile, 35e6, 50e6)
        assert partitioner.local_latency() == pytest.approx(
            sum(tiny_profile.client_times.values())
        )

    def test_invalid_quantum_rejected(self, tiny_profile):
        with pytest.raises(ValueError):
            DNNPartitioner(tiny_profile, 35e6, 50e6, slowdown_quantum=0.0)

    def test_max_chunk_bytes_forwarded(self, tiny_profile):
        coarse = DNNPartitioner(
            tiny_profile, 35e6, 50e6, max_chunk_bytes=None
        ).partition(1.0)
        fine = DNNPartitioner(
            tiny_profile, 35e6, 50e6, max_chunk_bytes=10_000.0
        ).partition(1.0)
        assert len(fine.schedule.chunks) >= len(coarse.schedule.chunks)

    def test_graph_property(self, tiny_profile):
        partitioner = DNNPartitioner(tiny_profile, 35e6, 50e6)
        assert partitioner.graph is tiny_profile.graph
