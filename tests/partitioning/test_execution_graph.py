"""Tests for ExecutionCosts: cut bytes, bandwidth arithmetic."""

import numpy as np
import pytest

from repro.partitioning.execution_graph import ExecutionCosts


@pytest.fixture
def costs(tiny_profile):
    return ExecutionCosts.build(
        tiny_profile.graph,
        tiny_profile.client_times,
        tiny_profile.server_times,
        uplink_bps=35e6,
        downlink_bps=50e6,
    )


class TestBuild:
    def test_arrays_aligned_with_topo_order(self, costs, tiny_graph):
        assert costs.layer_names == tuple(tiny_graph.topo_order)
        assert costs.num_layers == len(tiny_graph)
        assert costs.cut_bytes.shape == (costs.num_layers + 1,)

    def test_boundary_zero_is_input_tensor(self, costs, tiny_graph):
        input_bytes = tiny_graph.info(tiny_graph.input_name).output_bytes
        assert costs.cut_bytes[0] == input_bytes

    def test_final_boundary_is_result_tensor(self, costs, tiny_graph):
        out_bytes = tiny_graph.info(tiny_graph.output_name).output_bytes
        assert costs.cut_bytes[-1] == out_bytes

    def test_chain_cut_equals_layer_output(self, costs, tiny_graph):
        # In a linear chain, the tensor alive across boundary i is exactly
        # the output of layer i-1.
        order = tiny_graph.topo_order
        for i in range(1, costs.num_layers):
            expected = tiny_graph.info(order[i - 1]).output_bytes
            assert costs.cut_bytes[i] == expected

    def test_skip_connection_widens_cut(self, branchy_profile):
        costs = ExecutionCosts.build(
            branchy_profile.graph,
            branchy_profile.client_times,
            branchy_profile.server_times,
            35e6,
            50e6,
        )
        graph = branchy_profile.graph
        order = graph.topo_order
        # Across the boundary inside the left branch, both the stem output
        # (consumed later by `right`/`join`) and the left-branch tensor are
        # alive -> the cut must exceed any single tensor there.
        left_conv = order.index("left")
        stem_out = graph.info("stem/relu").output_bytes
        assert costs.cut_bytes[left_conv + 1] > stem_out

    def test_rejects_non_positive_bandwidth(self, tiny_profile):
        with pytest.raises(ValueError):
            ExecutionCosts.build(
                tiny_profile.graph,
                tiny_profile.client_times,
                tiny_profile.server_times,
                0.0,
                50e6,
            )


class TestHelpers:
    def test_upload_download_seconds(self, costs):
        assert costs.upload_seconds(35e6 / 8) == pytest.approx(1.0)
        assert costs.download_seconds(50e6 / 8) == pytest.approx(1.0)

    def test_local_latency_is_client_sum(self, costs):
        assert costs.local_latency() == pytest.approx(costs.client_times.sum())

    def test_scaled_server(self, costs):
        scaled = costs.scaled_server(2.0)
        assert np.allclose(scaled.server_times, 2.0 * costs.server_times)
        assert np.allclose(scaled.client_times, costs.client_times)
        with pytest.raises(ValueError):
            costs.scaled_server(0.5)

    def test_with_server_times_shape_check(self, costs):
        with pytest.raises(ValueError):
            costs.with_server_times(np.zeros(3))
