"""Tests for the shortest-path partitioner, including brute-force optimality."""

import itertools

import numpy as np
import pytest

from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.shortest_path import (
    constrained_latency,
    constrained_plan,
    optimal_plan,
)


def brute_force_latency(costs: ExecutionCosts, allowed: set[str]) -> float:
    """Enumerate every placement vector and take the cheapest."""
    n = costs.num_layers
    up = costs.cut_bytes * 8.0 / costs.uplink_bps
    down = costs.cut_bytes * 8.0 / costs.downlink_bps
    best = float("inf")
    for assignment in itertools.product((0, 1), repeat=n):
        if any(
            side == 1 and costs.layer_names[i] not in allowed
            for i, side in enumerate(assignment)
        ):
            continue
        cost = 0.0
        side = 0  # execution starts at the client
        for i, layer_side in enumerate(assignment):
            if layer_side != side:
                cost += up[i] if layer_side == 1 else down[i]
                side = layer_side
            cost += (
                costs.server_times[i] if layer_side else costs.client_times[i]
            )
        if side == 1:  # result must return to the client
            cost += down[n]
        best = min(best, cost)
    return best


def synthetic_costs(
    client: list[float], server: list[float], cuts: list[float],
    uplink: float = 8.0, downlink: float = 8.0,
) -> ExecutionCosts:
    """Hand-built costs (bandwidth 8 bps -> transfer seconds == cut bytes)."""
    from repro.dnn.graph import DNNGraph
    from repro.dnn.layer import Layer, LayerKind, TensorShape

    n = len(client)
    graph = DNNGraph("synthetic")
    graph.add(Layer("L0", LayerKind.INPUT, input_shape=TensorShape(1)))
    for i in range(1, n):
        graph.add(Layer(f"L{i}", LayerKind.RELU), [f"L{i-1}"])
    graph.freeze()
    names = tuple(graph.topo_order)
    return ExecutionCosts(
        graph=graph,
        layer_names=names,
        client_times=np.array(client, dtype=float),
        server_times=np.array(server, dtype=float),
        weight_bytes=np.ones(n),
        cut_bytes=np.array(cuts, dtype=float),
        uplink_bps=uplink,
        downlink_bps=downlink,
    )


class TestOptimality:
    def test_matches_brute_force_on_random_chains(self, rng):
        for _ in range(25):
            n = int(rng.integers(2, 7))
            costs = synthetic_costs(
                client=rng.uniform(0.1, 2.0, n).tolist(),
                server=rng.uniform(0.01, 0.5, n).tolist(),
                cuts=rng.uniform(0.0, 1.5, n + 1).tolist(),
            )
            plan = optimal_plan(costs)
            expected = brute_force_latency(costs, set(costs.layer_names))
            assert plan.latency == pytest.approx(expected)

    def test_constrained_matches_brute_force(self, rng):
        for _ in range(25):
            n = int(rng.integers(2, 7))
            costs = synthetic_costs(
                client=rng.uniform(0.1, 2.0, n).tolist(),
                server=rng.uniform(0.01, 0.5, n).tolist(),
                cuts=rng.uniform(0.0, 1.5, n + 1).tolist(),
            )
            allowed = {
                name for name in costs.layer_names if rng.random() < 0.5
            }
            latency = constrained_latency(costs, frozenset(allowed))
            expected = brute_force_latency(costs, allowed)
            assert latency == pytest.approx(expected)

    def test_plan_placements_reproduce_latency(self, rng):
        """Walking the returned placements must cost exactly plan.latency."""
        for _ in range(10):
            n = int(rng.integers(2, 7))
            costs = synthetic_costs(
                client=rng.uniform(0.1, 2.0, n).tolist(),
                server=rng.uniform(0.01, 0.5, n).tolist(),
                cuts=rng.uniform(0.0, 1.5, n + 1).tolist(),
            )
            plan = optimal_plan(costs)
            up = costs.cut_bytes * 8.0 / costs.uplink_bps
            down = costs.cut_bytes * 8.0 / costs.downlink_bps
            cost, side = 0.0, 0
            for i, placement in enumerate(plan.placements):
                layer_side = 1 if placement is Placement.SERVER else 0
                if layer_side != side:
                    cost += up[i] if layer_side else down[i]
                    side = layer_side
                cost += (
                    costs.server_times[i] if layer_side else costs.client_times[i]
                )
            if side == 1:
                cost += down[n]
            assert cost == pytest.approx(plan.latency)


class TestPlanShapes:
    def test_all_local_when_server_banned(self, tiny_partitioner):
        costs = tiny_partitioner.partition(1.0).costs
        latency = constrained_latency(costs, frozenset())
        assert latency == pytest.approx(costs.local_latency())

    def test_offload_helps_on_real_model(self, tiny_partitioner):
        costs = tiny_partitioner.partition(1.0).costs
        plan = optimal_plan(costs)
        assert plan.latency <= costs.local_latency() + 1e-12

    def test_more_allowed_layers_never_hurt(self, tiny_partitioner, rng):
        costs = tiny_partitioner.partition(1.0).costs
        names = list(costs.layer_names)
        small = frozenset(names[: len(names) // 3])
        large = frozenset(names[: 2 * len(names) // 3])
        assert constrained_latency(costs, large) <= constrained_latency(
            costs, small
        ) + 1e-12

    def test_constrained_plan_respects_allowed_set(self, tiny_partitioner):
        costs = tiny_partitioner.partition(1.0).costs
        allowed = frozenset(list(costs.layer_names)[:5])
        plan = constrained_plan(costs, allowed)
        assert set(plan.server_layers) <= allowed

    def test_server_weight_bytes(self, tiny_partitioner):
        result = tiny_partitioner.partition(1.0)
        plan, costs = result.plan, result.costs
        expected = sum(
            costs.weight_bytes[i] for i in plan.server_indices
        )
        assert plan.server_weight_bytes(costs) == pytest.approx(expected)

    def test_huge_slowdown_forces_local_execution(self, tiny_profile):
        from repro.partitioning.partitioner import DNNPartitioner

        partitioner = DNNPartitioner(tiny_profile, 35e6, 50e6)
        result = partitioner.partition(server_slowdown=10000.0)
        assert not result.plan.offloads_anything
