"""Tests for the min-cut DAG partitioner."""

import pytest

from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.mincut import (
    build_flow_network,
    mincut_plan,
    realized_latency,
)
from repro.partitioning.shortest_path import optimal_plan


@pytest.fixture
def costs(tiny_profile):
    return ExecutionCosts.build(
        tiny_profile.graph,
        tiny_profile.client_times,
        tiny_profile.server_times,
        35e6,
        50e6,
    )


class TestFlowNetwork:
    def test_every_layer_connected_to_terminals(self, costs):
        flow = build_flow_network(costs)
        for name in costs.layer_names:
            assert flow.has_edge("__client__", name)
            assert flow.has_edge(name, "__server__")

    def test_tensor_edges_present(self, costs):
        flow = build_flow_network(costs)
        graph = costs.graph
        for name in costs.layer_names:
            for successor in graph.successors(name):
                assert flow.has_edge(name, successor)
                assert flow.has_edge(successor, name)

    def test_capacities_nonnegative(self, costs):
        flow = build_flow_network(costs)
        for _, _, data in flow.edges(data=True):
            assert data["capacity"] >= 0.0


class TestMincutPlan:
    def test_matches_dp_on_chain_models(self, costs):
        dp = optimal_plan(costs)
        mc = mincut_plan(costs)
        assert realized_latency(costs, mc) == pytest.approx(
            dp.latency, rel=1e-6
        )

    def test_matches_dp_on_branchy_model(self, branchy_profile):
        costs = ExecutionCosts.build(
            branchy_profile.graph,
            branchy_profile.client_times,
            branchy_profile.server_times,
            35e6,
            50e6,
        )
        dp = optimal_plan(costs)
        mc = mincut_plan(costs)
        assert realized_latency(costs, mc) <= dp.latency * 1.05

    def test_cut_value_is_lower_bound_on_realization(self, costs):
        mc = mincut_plan(costs)
        # The cut value counts each crossing once; the realized prefix-walk
        # latency can only add transfers.
        assert realized_latency(costs, mc) >= mc.latency - 1e-9

    def test_all_local_when_server_useless(self, costs):
        # Make the server catastrophically slow: everything stays local.
        slow = costs.with_server_times(costs.server_times * 1e6)
        mc = mincut_plan(slow)
        assert not mc.offloads_anything
        assert realized_latency(slow, mc) == pytest.approx(slow.local_latency())

    def test_never_beats_dp(self, tiny_partitioner):
        for slowdown in (1.0, 2.0, 4.0, 16.0):
            costs = tiny_partitioner.partition(slowdown).costs
            dp = optimal_plan(costs)
            mc = mincut_plan(costs)
            assert realized_latency(costs, mc) >= dp.latency - 1e-9


class TestRealizedLatency:
    def test_all_client_plan(self, costs):
        from repro.partitioning.shortest_path import PartitionPlan

        plan = PartitionPlan(
            placements=tuple([Placement.CLIENT] * costs.num_layers),
            latency=0.0,
            layer_names=costs.layer_names,
        )
        assert realized_latency(costs, plan) == pytest.approx(
            costs.local_latency()
        )

    def test_all_server_plan_pays_both_transfers(self, costs):
        from repro.partitioning.shortest_path import PartitionPlan

        plan = PartitionPlan(
            placements=tuple([Placement.SERVER] * costs.num_layers),
            latency=0.0,
            layer_names=costs.layer_names,
        )
        expected = (
            float(costs.server_times.sum())
            + costs.cut_bytes[0] * 8.0 / costs.uplink_bps
            + costs.cut_bytes[-1] * 8.0 / costs.downlink_bps
        )
        assert realized_latency(costs, plan) == pytest.approx(expected)
