"""Tests for the CART regression tree and random forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mean_absolute_error
from repro.ml.tree import RegressionTree


@pytest.fixture
def step_data(rng):
    """y is a clean step function of the first feature."""
    X = rng.uniform(0, 1, size=(400, 3))
    y = np.where(X[:, 0] > 0.5, 2.0, -1.0)
    return X, y


class TestRegressionTree:
    def test_learns_step_function_exactly(self, step_data, rng):
        X, y = step_data
        tree = RegressionTree(max_depth=3, rng=rng).fit(X, y)
        assert mean_absolute_error(y, tree.predict(X)) < 1e-9

    def test_depth_one_is_single_split(self, step_data, rng):
        X, y = step_data
        tree = RegressionTree(max_depth=1, rng=rng).fit(X, y)
        assert tree.depth <= 1
        assert len(set(tree.predict(X).tolist())) <= 2

    def test_constant_target_yields_leaf(self, rng):
        X = rng.normal(size=(50, 2))
        y = np.full(50, 3.5)
        tree = RegressionTree(rng=rng).fit(X, y)
        assert tree.depth == 0
        assert np.allclose(tree.predict(X), 3.5)

    def test_min_samples_leaf_respected(self, rng):
        X = rng.uniform(size=(20, 1))
        y = X[:, 0]
        tree = RegressionTree(min_samples_leaf=10, max_depth=5, rng=rng).fit(X, y)
        # With 20 samples and >=10 per leaf there can be at most one split.
        assert tree.depth <= 1

    def test_feature_importances_identify_signal(self, step_data, rng):
        X, y = step_data
        tree = RegressionTree(rng=rng).fit(X, y)
        importances = tree.feature_importances_
        assert importances is not None
        assert importances[0] > 0.9
        assert importances.sum() == pytest.approx(1.0)

    def test_prediction_within_target_range(self, rng):
        X = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        tree = RegressionTree(rng=rng).fit(X, y)
        preds = tree.predict(rng.normal(size=(50, 4)))
        assert preds.min() >= y.min() and preds.max() <= y.max()

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_wrong_feature_count_raises(self, step_data, rng):
        X, y = step_data
        tree = RegressionTree(rng=rng).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((1, 5)))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)

    def test_max_features_sqrt(self, step_data, rng):
        X, y = step_data
        tree = RegressionTree(max_features="sqrt", rng=rng).fit(X, y)
        assert tree.predict(X).shape == y.shape


class TestRandomForest:
    def test_beats_single_tree_on_noisy_data(self, rng):
        X = rng.uniform(0, 1, size=(600, 4))
        y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2 + 0.2 * rng.normal(size=600)
        X_test = rng.uniform(0, 1, size=(200, 4))
        y_test = np.sin(4 * X_test[:, 0]) + X_test[:, 1] ** 2
        tree = RegressionTree(max_depth=12, rng=rng).fit(X, y)
        forest = RandomForestRegressor(n_estimators=20, rng=rng).fit(X, y)
        assert mean_absolute_error(y_test, forest.predict(X_test)) < (
            mean_absolute_error(y_test, tree.predict(X_test))
        )

    def test_prediction_is_tree_average(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        forest = RandomForestRegressor(
            n_estimators=5, bootstrap=False, max_features=None, rng=rng
        ).fit(X, y)
        manual = np.mean([t.predict(X) for t in forest._trees], axis=0)
        assert np.allclose(forest.predict(X), manual)

    def test_importances_normalized(self, rng):
        X = rng.normal(size=(200, 3))
        y = 2 * X[:, 2] + 0.05 * rng.normal(size=200)
        forest = RandomForestRegressor(n_estimators=10, rng=rng).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)
        assert np.argmax(forest.feature_importances_) == 2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_deterministic_under_seed(self, rng):
        X = rng.normal(size=(100, 3))
        y = X.sum(axis=1)
        a = RandomForestRegressor(
            n_estimators=5, rng=np.random.default_rng(3)
        ).fit(X, y)
        b = RandomForestRegressor(
            n_estimators=5, rng=np.random.default_rng(3)
        ).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))
