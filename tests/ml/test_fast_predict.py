"""Vectorized predict vs. node-walk reference: bit-for-bit equivalence.

The flat-array traversal (``FlatTree`` / ``_StackedTrees``) is a pure
wall-clock optimization — every prediction must match the original
per-row node walk exactly, or same-seed simulation runs would diverge.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import (
    FlatTree,
    RegressionTree,
    fast_predict_enabled,
    reference_predict,
    set_fast_predict,
)


def _make_data(n, d, seed, constant_features=False):
    rng = np.random.default_rng(seed)
    if constant_features:
        X = np.full((n, d), 0.5)
    else:
        X = rng.uniform(-2.0, 2.0, size=(n, d))
    y = rng.normal(size=n)
    return X, y


class TestTreeEquivalence:
    @given(
        st.integers(2, 60),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_flat_predict_matches_node_walk(
        self, n, d, seed, constant_features
    ):
        X, y = _make_data(n, d, seed, constant_features)
        tree = RegressionTree(
            max_depth=6, rng=np.random.default_rng(seed)
        ).fit(X, y)
        X_query = np.random.default_rng(seed + 1).uniform(
            -3.0, 3.0, size=(17, d)
        )
        assert np.array_equal(
            tree.predict(X_query), tree._predict_reference(X_query)
        )

    def test_single_row_and_empty_batch(self):
        X, y = _make_data(40, 3, 7)
        tree = RegressionTree(rng=np.random.default_rng(7)).fit(X, y)
        single = tree.predict(X[:1])
        assert single.shape == (1,)
        assert np.array_equal(single, tree._predict_reference(X[:1]))
        empty = tree.predict(np.empty((0, 3)))
        assert empty.shape == (0,)

    def test_constant_target_is_single_leaf(self):
        X = np.random.default_rng(3).uniform(size=(20, 2))
        y = np.full(20, 4.25)
        tree = RegressionTree(rng=np.random.default_rng(3)).fit(X, y)
        assert np.array_equal(tree.predict(X), np.full(20, 4.25))

    def test_flat_tree_mirrors_node_structure(self):
        X, y = _make_data(50, 4, 11)
        tree = RegressionTree(
            max_depth=4, rng=np.random.default_rng(11)
        ).fit(X, y)
        flat = tree.flat
        assert isinstance(flat, FlatTree)
        leaves = flat.feature < 0
        # Leaves carry -1 child sentinels; internal nodes point in-bounds.
        assert np.all(flat.left[leaves] == -1)
        assert np.all(flat.right[leaves] == -1)
        internal = ~leaves
        assert np.all(flat.left[internal] >= 0)
        assert np.all(flat.right[internal] < flat.n_nodes)


class TestForestEquivalence:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_forest_predict_matches_reference(self, seed):
        X, y = _make_data(60, 4, seed)
        forest = RandomForestRegressor(
            n_estimators=6, max_depth=5, rng=np.random.default_rng(seed)
        ).fit(X, y)
        X_query = np.random.default_rng(seed + 1).uniform(size=(23, 4))
        assert np.array_equal(
            forest.predict(X_query), forest._predict_reference(X_query)
        )

    def test_edge_batches(self):
        X, y = _make_data(40, 3, 5)
        forest = RandomForestRegressor(
            n_estimators=4, rng=np.random.default_rng(5)
        ).fit(X, y)
        assert forest.predict(np.empty((0, 3))).shape == (0,)
        single = forest.predict(X[:1])
        assert np.array_equal(single, forest._predict_reference(X[:1]))
        per_tree = forest.predict_per_tree(X[:9])
        assert per_tree.shape == (4, 9)
        with reference_predict():
            assert np.array_equal(per_tree, forest.predict_per_tree(X[:9]))

    def test_fit_rng_determinism(self):
        X, y = _make_data(80, 5, 21)
        forests = [
            RandomForestRegressor(
                n_estimators=5, rng=np.random.default_rng(99)
            ).fit(X, y)
            for _ in range(2)
        ]
        a, b = (f._stacked for f in forests)
        for field in ("feature", "threshold", "value", "left", "right", "roots"):
            assert np.array_equal(getattr(a, field), getattr(b, field))
        assert np.array_equal(forests[0].predict(X), forests[1].predict(X))


class TestFastPredictToggle:
    def test_reference_context_forces_node_walk_and_restores(self):
        assert fast_predict_enabled()
        with reference_predict():
            assert not fast_predict_enabled()
            with reference_predict():  # reentrant
                assert not fast_predict_enabled()
            assert not fast_predict_enabled()
        assert fast_predict_enabled()

    def test_set_fast_predict_returns_previous(self):
        previous = set_fast_predict(False)
        try:
            assert previous is True
            assert not fast_predict_enabled()
        finally:
            set_fast_predict(True)
        assert fast_predict_enabled()
