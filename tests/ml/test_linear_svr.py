"""Tests for linear/logarithmic regression and linear SVR."""

import numpy as np
import pytest

from repro.ml.linear import BestOfLinearLog, LinearRegression, LogarithmicRegression
from repro.ml.metrics import mean_absolute_error
from repro.ml.svr import LinearSVR, MultiOutputLinearSVR


class TestLinearRegression:
    def test_recovers_exact_linear_function(self, rng):
        X = rng.normal(size=(100, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = LinearRegression().fit(X, y)
        assert mean_absolute_error(y, model.predict(X)) < 1e-9

    def test_bias_term_learned(self, rng):
        X = np.zeros((50, 2))
        y = np.full(50, 7.0)
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), 7.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 1)))


class TestLogarithmicRegression:
    def test_recovers_log_function(self, rng):
        X = rng.uniform(0, 100, size=(200, 1))
        y = 3.0 * np.log1p(X[:, 0]) + 1.0
        model = LogarithmicRegression().fit(X, y)
        assert mean_absolute_error(y, model.predict(X)) < 1e-9

    def test_rejects_negative_features(self):
        with pytest.raises(ValueError):
            LogarithmicRegression().fit(np.array([[-1.0]]), np.array([0.0]))


class TestBestOfLinearLog:
    def test_picks_linear_for_linear_data(self, rng):
        X = rng.uniform(0, 10, size=(200, 2))
        y = X @ np.array([1.0, 2.0])
        model = BestOfLinearLog().fit(X, y)
        assert model.chosen_form == "linear"

    def test_picks_log_for_log_data(self, rng):
        X = rng.uniform(0, 1000, size=(300, 1))
        y = np.log1p(X[:, 0])
        model = BestOfLinearLog().fit(X, y)
        assert model.chosen_form == "log"

    def test_negative_features_fall_back_to_linear(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = BestOfLinearLog().fit(X, y)
        assert model.chosen_form == "linear"

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BestOfLinearLog().predict(np.zeros((1, 1)))


class TestLinearSVR:
    def test_recovers_linear_function(self, rng):
        X = rng.normal(size=(400, 3))
        y = X @ np.array([1.5, -2.0, 0.5]) + 0.3
        model = LinearSVR(rng=rng).fit(X, y)
        assert mean_absolute_error(y, model.predict(X)) < 0.05
        assert np.allclose(model.weights_, [1.5, -2.0, 0.5], atol=0.1)

    def test_epsilon_tube_tolerates_small_noise(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.uniform(-0.05, 0.05, size=300)
        model = LinearSVR(epsilon=0.1, rng=rng).fit(X, y)
        assert abs(model.weights_[0] - 1.0) < 0.15

    def test_early_stopping_via_tolerance(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        model = LinearSVR(epochs=500, tolerance=1e-2, rng=rng).fit(X, y)
        assert model.n_iterations_ < 500

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinearSVR(epsilon=-0.1)
        with pytest.raises(ValueError):
            LinearSVR(C=0.0)

    def test_shape_validation(self, rng):
        model = LinearSVR(rng=rng).fit(rng.normal(size=(20, 2)), rng.normal(size=20))
        with pytest.raises(ValueError):
            model.predict(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            LinearSVR().predict(np.zeros((1, 2)))


class TestMultiOutputLinearSVR:
    def test_independent_outputs(self, rng):
        X = rng.normal(size=(300, 2))
        Y = np.stack([X[:, 0] * 2.0, X[:, 1] * -1.0], axis=1)
        model = MultiOutputLinearSVR(rng=rng).fit(X, Y)
        predictions = model.predict(X)
        assert predictions.shape == Y.shape
        assert mean_absolute_error(Y.ravel(), predictions.ravel()) < 0.05

    def test_requires_2d_targets(self, rng):
        with pytest.raises(ValueError):
            MultiOutputLinearSVR(rng=rng).fit(
                rng.normal(size=(10, 2)), rng.normal(size=10)
            )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MultiOutputLinearSVR().predict(np.zeros((1, 2)))
