"""Tests for the numpy LSTM and the optimizers."""

import numpy as np
import pytest

from repro.ml.lstm import LSTMRegressor
from repro.ml.metrics import mean_absolute_error
from repro.ml.optim import SGD, Adam


class TestAdam:
    def test_minimizes_quadratic(self):
        params = {"x": np.array([5.0])}
        adam = Adam(params, learning_rate=0.1)
        for _ in range(500):
            adam.step({"x": 2.0 * params["x"]})  # d/dx x^2
        assert abs(params["x"][0]) < 1e-2

    def test_missing_gradient_raises(self):
        adam = Adam({"a": np.zeros(2), "b": np.zeros(2)})
        with pytest.raises(ValueError, match="missing gradients"):
            adam.step({"a": np.zeros(2)})

    def test_shape_mismatch_raises(self):
        adam = Adam({"a": np.zeros(2)})
        with pytest.raises(ValueError, match="shape mismatch"):
            adam.step({"a": np.zeros(3)})

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Adam({}, learning_rate=0.0)


class TestSGD:
    def test_single_step(self):
        params = {"w": np.array([1.0])}
        SGD(params, learning_rate=0.5).step({"w": np.array([1.0])})
        assert params["w"][0] == pytest.approx(0.5)

    def test_decay_shrinks_rate(self):
        params = {"w": np.array([0.0])}
        sgd = SGD(params, learning_rate=1.0, decay=1.0)
        sgd.step({"w": np.array([-1.0])})  # step 1: rate = 1/2
        assert params["w"][0] == pytest.approx(0.5)
        sgd.step({"w": np.array([-1.0])})  # step 2: rate = 1/3
        assert params["w"][0] == pytest.approx(0.5 + 1.0 / 3.0)


class TestLSTMRegressor:
    def test_learns_constant_velocity_extrapolation(self, rng):
        n, T = 300, 5
        seq = np.cumsum(rng.normal(0.2, 0.05, size=(n, T + 1, 2)), axis=1)
        model = LSTMRegressor(hidden_size=16, epochs=40, rng=rng)
        model.fit(seq[:, :T, :], seq[:, T, :])
        mae = mean_absolute_error(seq[:, T, :], model.predict(seq[:, :T, :]))
        assert mae < 0.15

    def test_training_loss_decreases(self, rng):
        n, T = 200, 4
        seq = np.cumsum(rng.normal(0.1, 0.05, size=(n, T + 1, 1)), axis=1)
        model = LSTMRegressor(hidden_size=8, epochs=30, rng=rng)
        model.fit(seq[:, :T, :], seq[:, T, :])
        assert model.training_losses_[-1] < 0.5 * model.training_losses_[0]

    def test_mse_loss_option(self, rng):
        X = rng.normal(size=(100, 3, 2))
        Y = X[:, -1, :]
        model = LSTMRegressor(hidden_size=8, epochs=20, loss="mse", rng=rng)
        model.fit(X, Y)
        assert model.predict(X).shape == Y.shape

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            LSTMRegressor(loss="huber")

    def test_invalid_hidden_size(self):
        with pytest.raises(ValueError):
            LSTMRegressor(hidden_size=0)

    def test_shape_validation(self, rng):
        model = LSTMRegressor(hidden_size=4, epochs=2, rng=rng)
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(10, 3)), rng.normal(size=(10, 2)))
        model.fit(rng.normal(size=(10, 3, 2)), rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            model.predict(rng.normal(size=(5, 3, 4)))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            LSTMRegressor().predict(np.zeros((1, 2, 2)))

    def test_deterministic_under_seed(self):
        X = np.random.default_rng(0).normal(size=(50, 4, 2))
        Y = X[:, -1, :]
        a = LSTMRegressor(hidden_size=8, epochs=5, rng=np.random.default_rng(9))
        b = LSTMRegressor(hidden_size=8, epochs=5, rng=np.random.default_rng(9))
        assert np.allclose(a.fit(X, Y).predict(X), b.fit(X, Y).predict(X))

    def test_gradient_check_against_numerical(self):
        """BPTT gradients must match finite differences (MSE loss)."""
        rng = np.random.default_rng(5)
        model = LSTMRegressor(hidden_size=3, loss="mse", rng=rng)
        X = rng.normal(size=(4, 3, 2))
        Y = rng.normal(size=(4, 1))
        params = model._init_params(2, 1)

        def loss_value() -> float:
            prediction, _ = model._forward(X, params)
            return float(np.mean((prediction - Y) ** 2))

        prediction, cache = model._forward(X, params)
        d_pred = 2.0 * (prediction - Y) / prediction.size
        grads = model._backward(d_pred, cache, params)
        eps = 1e-6
        for name in ("Wx", "Wh", "b", "Wy", "by"):
            flat = params[name].reshape(-1)
            index = 0  # check the first coordinate of each parameter
            original = flat[index]
            flat[index] = original + eps
            up = loss_value()
            flat[index] = original - eps
            down = loss_value()
            flat[index] = original
            numerical = (up - down) / (2 * eps)
            analytic = grads[name].reshape(-1)[index]
            assert analytic == pytest.approx(numerical, rel=1e-4, abs=1e-7), name
