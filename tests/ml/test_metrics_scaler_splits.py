"""Tests for ML utilities: metrics, scaler, splits."""

import numpy as np
import pytest

from repro.ml.metrics import mean_absolute_error, mean_squared_error, r2_score, rmse
from repro.ml.scaler import StandardScaler
from repro.ml.splits import kfold_indices, train_test_split


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_absolute_error(y, y) == 0.0
        assert mean_squared_error(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_known_values(self):
        y_true = np.array([0.0, 0.0])
        y_pred = np.array([1.0, -3.0])
        assert mean_absolute_error(y_true, y_pred) == 2.0
        assert mean_squared_error(y_true, y_pred) == 5.0
        assert rmse(y_true, y_pred) == pytest.approx(np.sqrt(5.0))

    def test_r2_of_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_constant_target_edge_case(self):
        y = np.array([2.0, 2.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.array([]), np.array([]))


class TestStandardScaler:
    def test_fit_transform_standardizes(self, rng):
        X = rng.normal(5.0, 3.0, size=(500, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column_safe(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 1)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(3))


class TestSplits:
    def test_train_test_split_partition(self, rng):
        train, test = train_test_split(100, 0.25, rng)
        assert len(train) == 75 and len(test) == 25
        assert set(train) | set(test) == set(range(100))
        assert not set(train) & set(test)

    def test_split_always_leaves_training_data(self, rng):
        train, test = train_test_split(2, 0.99, rng)
        assert len(train) >= 1 and len(test) >= 1

    def test_split_validation(self, rng):
        with pytest.raises(ValueError):
            train_test_split(1, 0.5, rng)
        with pytest.raises(ValueError):
            train_test_split(10, 0.0, rng)

    def test_kfold_covers_all_indices(self, rng):
        folds = kfold_indices(20, 4, rng)
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in folds:
            assert not set(train.tolist()) & set(test.tolist())

    def test_kfold_validation(self, rng):
        with pytest.raises(ValueError):
            kfold_indices(5, 1, rng)
        with pytest.raises(ValueError):
            kfold_indices(3, 4, rng)
