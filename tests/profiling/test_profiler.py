"""Tests for execution profiles and the contention-profiling campaign."""

import numpy as np
import pytest

from repro.dnn.layer import LayerKind
from repro.profiling.profiler import (
    ExecutionProfile,
    generate_contention_dataset,
    profile_model,
)


class TestExecutionProfile:
    def test_covers_all_layers(self, tiny_profile, tiny_graph):
        assert set(tiny_profile.client_times) == set(tiny_graph.topo_order)
        assert set(tiny_profile.server_times) == set(tiny_graph.topo_order)

    def test_totals(self, tiny_profile):
        assert tiny_profile.total_client_time == pytest.approx(
            sum(tiny_profile.client_times.values())
        )
        assert tiny_profile.total_server_time < tiny_profile.total_client_time

    def test_accessors(self, tiny_profile, tiny_graph):
        name = tiny_graph.topo_order[1]
        assert tiny_profile.client_time(name) == tiny_profile.client_times[name]
        assert tiny_profile.server_time(name) == tiny_profile.server_times[name]

    def test_profile_model_matches_latency_model(self, tiny_graph, client_device):
        from repro.profiling.latency import LatencyModel

        table = profile_model(tiny_graph, client_device)
        assert table == LatencyModel(tiny_graph, client_device).as_dict()


class TestContentionDataset:
    def test_sample_counts(self, tiny_graph, server_device, rng):
        samples = generate_contention_dataset(
            tiny_graph, server_device, rng,
            client_counts=(1, 4), rounds_per_count=3,
        )
        eligible = [
            i for i in tiny_graph.infos()
            if i.kind in (LayerKind.CONV, LayerKind.FC)
        ]
        assert len(samples) == 2 * 3 * len(eligible)

    def test_only_requested_kinds(self, tiny_graph, server_device, rng):
        samples = generate_contention_dataset(
            tiny_graph, server_device, rng,
            client_counts=(1,), rounds_per_count=1, kinds=(LayerKind.CONV,),
        )
        assert {s.info.kind for s in samples} == {LayerKind.CONV}

    def test_measured_at_least_contended(self, tiny_graph, server_device, rng):
        samples = generate_contention_dataset(
            tiny_graph, server_device, rng,
            client_counts=(8,), rounds_per_count=5,
        )
        ratios = [s.measured_time / s.base_time for s in samples]
        assert np.mean(ratios) > 1.5  # 8 clients must contend visibly

    def test_stats_carry_client_count(self, tiny_graph, server_device, rng):
        samples = generate_contention_dataset(
            tiny_graph, server_device, rng,
            client_counts=(3,), rounds_per_count=1,
        )
        assert all(s.stats.num_clients == 3 for s in samples)

    def test_rejects_empty_kind_selection(self, tiny_graph, server_device, rng):
        with pytest.raises(ValueError):
            generate_contention_dataset(
                tiny_graph, server_device, rng, kinds=(LayerKind.ADD,),
                client_counts=(1,), rounds_per_count=1,
            )

    def test_rejects_zero_clients(self, tiny_graph, server_device, rng):
        with pytest.raises(ValueError):
            generate_contention_dataset(
                tiny_graph, server_device, rng,
                client_counts=(0,), rounds_per_count=1,
            )
