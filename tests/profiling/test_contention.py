"""Tests for the GPU contention model and nvml-style statistics."""

import numpy as np
import pytest

from repro.profiling.contention import GpuContentionModel
from repro.profiling.gpu_stats import GpuStats


@pytest.fixture
def model(rng):
    return GpuContentionModel(rng)


class TestGpuStats:
    def test_feature_vector_order(self):
        stats = GpuStats(50.0, 30.0, 60.0, 4)
        assert stats.as_features() == (4.0, 50.0, 30.0, 60.0)

    def test_idle_stats(self):
        idle = GpuStats.idle()
        assert idle.num_clients == 0
        assert idle.kernel_utilization == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kernel_utilization=101.0, memory_utilization=0, temperature=40, num_clients=0),
            dict(kernel_utilization=-1.0, memory_utilization=0, temperature=40, num_clients=0),
            dict(kernel_utilization=0, memory_utilization=120.0, temperature=40, num_clients=0),
            dict(kernel_utilization=0, memory_utilization=0, temperature=40, num_clients=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GpuStats(**kwargs)


class TestContentionModel:
    def test_idle_has_no_slowdown(self, model):
        model.step(0)
        assert model.slowdown() == pytest.approx(1.0, abs=1e-9)

    def test_slowdown_grows_with_clients(self, rng):
        model = GpuContentionModel(rng)
        averages = []
        for clients in (1, 4, 8, 16):
            slowdowns = []
            for _ in range(50):
                model.step(clients)
                slowdowns.append(model.slowdown())
            averages.append(np.mean(slowdowns))
        assert averages == sorted(averages)
        assert averages[-1] > 2.0  # heavy load must hurt substantially

    def test_expected_slowdown_monotone(self, model):
        values = [model.expected_slowdown_for_clients(n) for n in range(0, 20)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(1.0)

    def test_stats_reflect_load(self, rng):
        model = GpuContentionModel(rng)
        model.step(0)
        idle = np.mean([model.sample_stats().kernel_utilization for _ in range(20)])
        for _ in range(10):
            model.step(12)
        busy = np.mean([model.sample_stats().kernel_utilization for _ in range(20)])
        assert busy > idle + 30

    def test_temperature_lags_and_rises(self, rng):
        model = GpuContentionModel(rng)
        model.step(16)
        first = model.sample_stats().temperature
        for _ in range(30):
            model.step(16)
        later = model.sample_stats().temperature
        assert later > first

    def test_execution_time_scales_base(self, rng):
        model = GpuContentionModel(rng, time_noise=1e-9)
        for _ in range(5):
            model.step(8)
        base = 1e-3
        assert model.execution_time(base) == pytest.approx(
            base * model.slowdown(), rel=1e-3
        )

    def test_execution_time_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.execution_time(-1.0)

    def test_step_rejects_negative_clients(self, model):
        with pytest.raises(ValueError):
            model.step(-1)

    def test_invalid_activity_rejected(self, rng):
        with pytest.raises(ValueError):
            GpuContentionModel(rng, mean_activity=0.0)

    def test_deterministic_under_seed(self):
        a = GpuContentionModel(np.random.default_rng(7))
        b = GpuContentionModel(np.random.default_rng(7))
        for _ in range(5):
            a.step(4)
            b.step(4)
        assert a.sample_stats() == b.sample_stats()
