"""Tests for device specs and the analytic latency model."""

import pytest

from repro.dnn.layer import LayerKind
from repro.profiling.hardware import DeviceSpec, odroid_xu4, titan_xp_server
from repro.profiling.latency import LatencyModel, layer_latency


class TestDeviceSpec:
    def test_presets_have_sane_ordering(self):
        client, server = odroid_xu4(), titan_xp_server()
        assert server.compute_flops > 10 * client.compute_flops
        assert server.memory_bandwidth > client.memory_bandwidth
        assert server.is_gpu and not client.is_gpu

    def test_effective_flops_uses_kind_efficiency(self):
        server = titan_xp_server()
        assert server.effective_flops(LayerKind.FC) < server.effective_flops(
            LayerKind.CONV
        )

    def test_grouped_conv_efficiency_penalty(self):
        device = odroid_xu4()
        dense = device.effective_flops(LayerKind.CONV, grouped=False)
        grouped = device.effective_flops(LayerKind.CONV, grouped=True)
        assert grouped < 0.5 * dense


class TestLayerLatency:
    def test_input_layer_is_free(self, tiny_graph, client_device):
        info = tiny_graph.info(tiny_graph.input_name)
        assert layer_latency(client_device, info) == 0.0

    def test_latency_at_least_overhead(self, tiny_graph, client_device):
        for info in tiny_graph.infos():
            if info.kind is LayerKind.INPUT:
                continue
            assert (
                layer_latency(client_device, info) >= client_device.layer_overhead
            )

    def test_server_faster_than_client_per_layer(
        self, tiny_graph, client_device, server_device
    ):
        for info in tiny_graph.infos():
            if info.kind is LayerKind.INPUT or info.flops == 0:
                continue
            assert layer_latency(server_device, info) < layer_latency(
                client_device, info
            )

    def test_memory_bound_layer_uses_bandwidth(self):
        # A huge zero-flop layer must be bound by memory movement.
        from repro.dnn.graph import DNNGraph
        from repro.dnn.layer import Layer, TensorShape

        g = DNNGraph("mem")
        g.add(Layer("in", LayerKind.INPUT, input_shape=TensorShape(64, 64, 64)))
        g.add(Layer("cat", LayerKind.CONCAT), ["in"])
        g.freeze()
        device = odroid_xu4()
        info = g.info("cat")
        moved = info.input_bytes + info.output_bytes
        expected = device.layer_overhead + moved / device.memory_bandwidth
        assert layer_latency(device, info) == pytest.approx(expected)


class TestLatencyModel:
    def test_requires_frozen_graph(self, client_device):
        from repro.dnn.graph import DNNGraph
        from repro.dnn.layer import Layer, TensorShape

        g = DNNGraph("g")
        g.add(Layer("in", LayerKind.INPUT, input_shape=TensorShape(1)))
        with pytest.raises(ValueError):
            LatencyModel(g, client_device)

    def test_total_is_sum(self, tiny_graph, client_device):
        model = LatencyModel(tiny_graph, client_device)
        assert model.total() == pytest.approx(sum(model.as_dict().values()))

    def test_as_dict_covers_every_layer(self, tiny_graph, client_device):
        model = LatencyModel(tiny_graph, client_device)
        assert set(model.as_dict()) == set(tiny_graph.topo_order)

    def test_model_magnitudes_match_paper(self, client_device, server_device):
        """Whole-model client latencies must be in the Table II regime."""
        from repro.dnn.models import build_model

        local = {}
        for name in ("mobilenet", "inception", "resnet"):
            local[name] = LatencyModel(build_model(name), client_device).total()
        # Orderings implied by Table II and the paper's description.
        assert local["mobilenet"] < local["inception"] < local["resnet"]
        assert 0.1 < local["mobilenet"] < 0.6
        assert 0.4 < local["inception"] < 1.6
        assert 0.9 < local["resnet"] < 2.5
