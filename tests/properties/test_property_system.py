"""Property-based tests for system components: contention, caching, energy."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.edge_server import EdgeServer
from repro.geo.hexgrid import HexCell
from repro.network.traffic import TrafficMeter
from repro.profiling.contention import GpuContentionModel
from repro.profiling.energy import EnergyModel, plan_energy
from repro.simulation.query_loop import run_query_window
from repro.partitioning.uploading import UploadChunk, UploadSchedule


class TestContentionProperties:
    @given(st.integers(0, 32), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_slowdown_at_least_one(self, clients, seed):
        model = GpuContentionModel(np.random.default_rng(seed))
        model.step(clients)
        assert model.slowdown() >= 1.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_stats_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        model = GpuContentionModel(rng)
        for clients in (0, 1, 5, 16, 3, 0):
            model.step(clients)
            stats = model.sample_stats()  # GpuStats validates its ranges
            assert stats.num_clients == clients

    @given(st.lists(st.integers(0, 16), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_expected_slowdown_monotone_in_clients(self, counts):
        model = GpuContentionModel(np.random.default_rng(0))
        values = [model.expected_slowdown_for_clients(c) for c in sorted(counts)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),  # client
                st.floats(0.0, 1e6),  # bytes
                st.integers(0, 30),  # interval
                st.integers(0, 2),  # version
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cached_bytes_never_negative_and_versioned(self, operations):
        server = EdgeServer(0, HexCell(0, 0), np.random.default_rng(0))
        for client, nbytes, interval, version in operations:
            server.add_bytes(client, nbytes, interval, 5, version)
            assert server.cached_bytes(client, version) >= 0.0
            # A different version never sees this entry's bytes.
            assert server.cached_bytes(client, version + 7) == 0.0

    @given(st.integers(1, 10), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_expiry_exactly_at_ttl(self, ttl, start):
        server = EdgeServer(0, HexCell(0, 0), np.random.default_rng(0))
        server.add_bytes(1, 100.0, start, ttl)
        assert server.expire(start + ttl - 1) == []
        assert server.expire(start + ttl) == [1]


class TestTrafficMeterProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),  # interval
                st.integers(0, 4),  # source
                st.integers(5, 9),  # destination (disjoint from sources)
                st.floats(0.0, 1e9),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_uplink_equals_downlink_totals(self, transfers):
        meter = TrafficMeter(10.0)
        for interval, source, destination, nbytes in transfers:
            meter.record(interval, source, destination, nbytes)
        up = meter.uplink_summary().total_bytes
        down = meter.downlink_summary().total_bytes
        # Equal up to float summation order.
        assert abs(up - down) <= 1e-9 * max(1.0, up)


class TestEnergyProperties:
    @given(st.floats(0.0, 10.0), st.floats(0.0, 5.0), st.floats(0.0, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_energy_nonnegative_and_additive(self, compute, tx, rx):
        from repro.dnn.models import tiny_linear_dnn
        from repro.partitioning.execution_graph import ExecutionCosts
        from repro.partitioning.shortest_path import optimal_plan
        from repro.profiling.hardware import odroid_xu4, titan_xp_server
        from repro.profiling.profiler import ExecutionProfile

        profile = ExecutionProfile.build(
            tiny_linear_dnn(), odroid_xu4(), titan_xp_server()
        )
        costs = ExecutionCosts.build(
            profile.graph, profile.client_times, profile.server_times,
            35e6, 50e6,
        )
        model = EnergyModel(
            compute_watts=compute, transmit_watts=tx, receive_watts=rx
        )
        energy = plan_energy(costs, optimal_plan(costs), model)
        assert energy.total_joules >= 0.0
        assert energy.total_joules == (
            energy.compute_joules + energy.transmit_joules
            + energy.receive_joules + energy.idle_joules
        )


class TestQueryLoopCountProperty:
    @given(
        st.floats(0.05, 3.0),  # latency
        st.floats(0.0, 2.0),  # gap
        st.floats(1.0, 120.0),  # duration
    )
    @settings(max_examples=60, deadline=None)
    def test_count_matches_closed_form(self, latency, gap, duration):
        schedule = UploadSchedule(chunks=(), latencies=(latency,))
        outcome = run_query_window(
            schedule, 0.0, 8.0, duration, gap, uploading=False
        )
        # Completions at latency, latency+(latency+gap), ...
        import math

        if latency > duration:
            expected = 0
        else:
            expected = 1 + int(
                math.floor((duration - latency) / (latency + gap))
            )
        assert abs(outcome.count - expected) <= 1  # float-boundary slack
