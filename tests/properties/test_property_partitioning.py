"""Property-based tests for the partitioning algorithms.

The central invariants: the shortest-path plan is never worse than any
single-split plan or local execution; enlarging the allowed server set
never increases latency; upload schedules cover the plan exactly with
monotone latencies.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape
from repro.partitioning.execution_graph import ExecutionCosts
from repro.partitioning.neurosurgeon import neurosurgeon_plan
from repro.partitioning.shortest_path import constrained_latency, optimal_plan
from repro.partitioning.uploading import build_upload_schedule


@st.composite
def random_costs(draw):
    n = draw(st.integers(2, 12))
    client = draw(
        st.lists(st.floats(0.01, 2.0), min_size=n, max_size=n)
    )
    server = draw(
        st.lists(st.floats(0.001, 0.5), min_size=n, max_size=n)
    )
    cuts = draw(
        st.lists(st.floats(0.0, 10.0), min_size=n + 1, max_size=n + 1)
    )
    weights = draw(
        st.lists(st.floats(0.0, 100.0), min_size=n, max_size=n)
    )
    graph = DNNGraph("prop")
    graph.add(Layer("L0", LayerKind.INPUT, input_shape=TensorShape(1)))
    for i in range(1, n):
        graph.add(Layer(f"L{i}", LayerKind.RELU), [f"L{i-1}"])
    graph.freeze()
    return ExecutionCosts(
        graph=graph,
        layer_names=tuple(graph.topo_order),
        client_times=np.array(client),
        server_times=np.array(server),
        weight_bytes=np.array(weights),
        cut_bytes=np.array(cuts),
        uplink_bps=draw(st.floats(1.0, 100.0)),
        downlink_bps=draw(st.floats(1.0, 100.0)),
    )


class TestPartitioningProperties:
    @given(random_costs())
    @settings(max_examples=60, deadline=None)
    def test_optimal_never_worse_than_local(self, costs):
        plan = optimal_plan(costs)
        assert plan.latency <= costs.local_latency() + 1e-9

    @given(random_costs())
    @settings(max_examples=60, deadline=None)
    def test_optimal_never_worse_than_neurosurgeon(self, costs):
        assert optimal_plan(costs).latency <= (
            neurosurgeon_plan(costs).latency + 1e-9
        )

    @given(random_costs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_allowed_set(self, costs, seed):
        rng = np.random.default_rng(seed)
        names = list(costs.layer_names)
        subset = frozenset(n for n in names if rng.random() < 0.5)
        superset = subset | frozenset(
            n for n in names if rng.random() < 0.5
        )
        assert constrained_latency(costs, superset) <= (
            constrained_latency(costs, subset) + 1e-9
        )

    @given(random_costs())
    @settings(max_examples=40, deadline=None)
    def test_schedule_invariants(self, costs):
        plan = optimal_plan(costs)
        schedule = build_upload_schedule(costs, plan)
        names = [n for c in schedule.chunks for n in c.layer_names]
        assert sorted(names) == sorted(plan.server_layers)
        assert len(names) == len(set(names))
        latencies = schedule.latencies
        assert len(latencies) == len(schedule.chunks) + 1
        assert all(
            a >= b - 1e-9 for a, b in zip(latencies, latencies[1:])
        )
        assert latencies[-1] <= costs.local_latency() + 1e-9

    @given(random_costs(), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_latency_after_bytes_monotone(self, costs, fraction):
        plan = optimal_plan(costs)
        schedule = build_upload_schedule(costs, plan)
        total = schedule.total_bytes
        a = schedule.latency_after_bytes(fraction * total)
        b = schedule.latency_after_bytes(total)
        assert b <= a + 1e-9
