"""Property-based tests for geometry, ML utilities, and the query loop."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.geo.geometry import euclidean
from repro.geo.hexgrid import HexGrid
from repro.ml.scaler import StandardScaler
from repro.ml.tree import RegressionTree
from repro.network.transfer import transfer_seconds, transferable_bytes
from repro.partitioning.uploading import UploadChunk, UploadSchedule
from repro.simulation.query_loop import run_query_window

finite_coord = st.floats(-1e5, 1e5, allow_nan=False)


class TestHexGridProperties:
    @given(finite_coord, finite_coord)
    @settings(max_examples=100)
    def test_point_maps_to_a_nearby_cell(self, x, y):
        grid = HexGrid(50.0)
        cell = grid.cell_of((x, y))
        # The containing cell's centre is within the circumradius.
        assert euclidean((x, y), grid.center(cell)) <= 50.0 + 1e-6

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_center_roundtrip(self, q, r):
        from repro.geo.hexgrid import HexCell

        grid = HexGrid(50.0)
        cell = HexCell(q, r)
        assert grid.cell_of(grid.center(cell)) == cell

    @given(finite_coord, finite_coord, st.floats(0.0, 500.0))
    @settings(max_examples=50)
    def test_cells_within_actually_within(self, x, y, distance):
        grid = HexGrid(50.0)
        for cell in grid.cells_within((x, y), distance):
            assert euclidean((x, y), grid.center(cell)) <= distance + 1e-6


class TestScalerProperties:
    @given(
        st.integers(2, 50),
        st.integers(1, 5),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40)
    def test_roundtrip(self, n, d, seed):
        X = np.random.default_rng(seed).normal(size=(n, d)) * 10 + 3
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X, atol=1e-8)


class TestTreeProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(10, 80))
    @settings(max_examples=25, deadline=None)
    def test_predictions_bounded_by_targets(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = rng.normal(size=n)
        tree = RegressionTree(rng=rng).fit(X, y)
        preds = tree.predict(rng.normal(size=(20, 3)))
        assert preds.min() >= y.min() - 1e-12
        assert preds.max() <= y.max() + 1e-12


class TestTransferProperties:
    @given(st.floats(0.0, 1e9), st.floats(1.0, 1e9))
    def test_roundtrip(self, nbytes, bps):
        seconds = transfer_seconds(nbytes, bps)
        assert transferable_bytes(seconds, bps) == np.float64(
            nbytes
        ) or abs(transferable_bytes(seconds, bps) - nbytes) <= 1e-6 * max(
            1.0, nbytes
        )


class TestQueryLoopProperties:
    @given(
        st.floats(0.01, 5.0),  # best latency
        st.floats(0.0, 5.0),  # extra cold latency
        st.floats(1.0, 1000.0),  # chunk bytes
        st.floats(0.0, 1.0),  # starting fraction
    )
    @settings(max_examples=50)
    def test_more_cache_never_fewer_queries(
        self, best, extra, nbytes, fraction
    ):
        schedule = UploadSchedule(
            chunks=(
                UploadChunk((0,), ("L0",), nbytes, 1.0, 1.0),
            ),
            latencies=(best + extra, best),
        )
        fewer = run_query_window(
            schedule, fraction * nbytes * 0.5, 8.0, 30.0, 0.5
        )
        more = run_query_window(schedule, fraction * nbytes, 8.0, 30.0, 0.5)
        assert more.count >= fewer.count
