"""Property-based tests (hypothesis) for DNN structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape


@st.composite
def conv_chains(draw):
    """Random conv/relu/pool chains with consistent shapes."""
    channels = draw(st.integers(1, 8))
    spatial = draw(st.integers(8, 32))
    depth = draw(st.integers(1, 6))
    graph = DNNGraph("random-chain")
    graph.add(
        Layer("in", LayerKind.INPUT, input_shape=TensorShape(channels, spatial, spatial))
    )
    head = "in"
    for i in range(depth):
        kind = draw(st.sampled_from(["conv", "relu", "pool"]))
        if kind == "conv":
            out_channels = draw(st.integers(1, 16))
            layer = Layer(
                f"conv{i}", LayerKind.CONV,
                out_channels=out_channels, kernel=3, stride=1, padding=1,
            )
        elif kind == "relu":
            layer = Layer(f"relu{i}", LayerKind.RELU)
        else:
            layer = Layer(f"pool{i}", LayerKind.POOL_MAX, kernel=2, stride=2)
        graph.add(layer, [head])
        head = layer.name
    return graph.freeze()


class TestGraphProperties:
    @given(conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_is_valid(self, graph):
        order = graph.topo_order
        position = {name: i for i, name in enumerate(order)}
        for name in order:
            for pred in graph.predecessors(name):
                assert position[pred] < position[name]

    @given(conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_nonnegative_accounting(self, graph):
        for info in graph.infos():
            assert info.weight_bytes >= 0
            assert info.flops >= 0
            assert info.output_shape.elements > 0

    @given(conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_shapes_chain_consistently(self, graph):
        for name in graph.topo_order:
            info = graph.info(name)
            for pred in graph.predecessors(name):
                assert graph.info(pred).output_shape in info.input_shapes


class TestTensorShapeProperties:
    @given(
        st.integers(1, 512), st.integers(1, 128), st.integers(1, 128)
    )
    def test_bytes_are_4x_elements(self, c, h, w):
        shape = TensorShape(c, h, w)
        assert shape.nbytes == 4 * shape.elements

    @given(st.integers(1, 64), st.integers(1, 64))
    def test_conv_shape_inference_matches_formula(self, channels, spatial):
        conv = Layer("c", LayerKind.CONV, out_channels=4, kernel=3, stride=2, padding=1)
        out = conv.output_shape([TensorShape(channels, spatial, spatial)])
        assert out.height == (spatial + 2 - 3) // 2 + 1
