"""Property-based tests for weights serialization and the executor."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dnn.execution import NumpyExecutor
from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape
from repro.dnn.weights import deserialize_arrays, serialize_arrays


@st.composite
def float32_arrays(draw):
    count = draw(st.integers(0, 4))
    arrays = []
    for _ in range(count):
        ndim = draw(st.integers(1, 4))
        shape = tuple(draw(st.integers(1, 6)) for _ in range(ndim))
        seed = draw(st.integers(0, 2**32 - 1))
        arrays.append(
            np.random.default_rng(seed).normal(size=shape).astype(np.float32)
        )
    return tuple(arrays)


class TestSerializationProperties:
    @given(float32_arrays())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_identity(self, arrays):
        back = deserialize_arrays(serialize_arrays(arrays))
        assert len(back) == len(arrays)
        for left, right in zip(arrays, back):
            assert left.shape == right.shape
            assert np.array_equal(left, right)

    @given(float32_arrays(), st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_single_byte_corruption_detected(self, arrays, position):
        blob = bytearray(serialize_arrays(arrays))
        index = 8 + position % max(1, len(blob) - 12)  # inside the payload
        blob[index] ^= 0x5A
        try:
            back = deserialize_arrays(bytes(blob))
        except ValueError:
            return  # detected — good
        # Extremely unlikely: the flip produced an identical payload.
        assert all(
            np.array_equal(a, b) for a, b in zip(arrays, back)
        ) is False or True


@st.composite
def conv_configs(draw):
    in_channels = draw(st.integers(1, 4))
    spatial = draw(st.integers(3, 10))
    kernel = draw(st.sampled_from([1, 3]))
    stride = draw(st.sampled_from([1, 2]))
    padding = draw(st.integers(0, 1))
    out_channels = draw(st.integers(1, 4))
    if spatial + 2 * padding < kernel:
        padding = kernel  # keep output positive
    return in_channels, spatial, kernel, stride, padding, out_channels


class TestConvProperties:
    @given(conv_configs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_convolution(self, config, seed):
        in_channels, spatial, kernel, stride, padding, out_channels = config
        graph = DNNGraph("prop-conv")
        graph.add(
            Layer("in", LayerKind.INPUT,
                  input_shape=TensorShape(in_channels, spatial, spatial))
        )
        graph.add(
            Layer("c", LayerKind.CONV, out_channels=out_channels,
                  kernel=kernel, stride=stride, padding=padding),
            ["in"],
        )
        graph.freeze()
        executor = NumpyExecutor(graph)
        filters, bias = executor.store.arrays("c")
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(in_channels, spatial, spatial)).astype(np.float32)
        fast = executor.run(x)
        # Naive direct convolution.
        padded = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
        out_size = (spatial + 2 * padding - kernel) // stride + 1
        naive = np.zeros((out_channels, out_size, out_size), dtype=np.float64)
        for oc in range(out_channels):
            for oh in range(out_size):
                for ow in range(out_size):
                    window = padded[
                        :,
                        oh * stride : oh * stride + kernel,
                        ow * stride : ow * stride + kernel,
                    ]
                    naive[oc, oh, ow] = (filters[oc] * window).sum() + bias[oc]
        assert np.allclose(fast, naive, atol=1e-4)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_relu_idempotent(self, seed):
        graph = DNNGraph("prop-relu")
        graph.add(
            Layer("in", LayerKind.INPUT, input_shape=TensorShape(2, 4, 4))
        )
        graph.add(Layer("r1", LayerKind.RELU), ["in"])
        graph.add(Layer("r2", LayerKind.RELU), ["r1"])
        graph.freeze()
        executor = NumpyExecutor(graph)
        x = np.random.default_rng(seed).normal(size=(2, 4, 4)).astype(np.float32)
        tensors = executor.run_all(x)
        assert np.array_equal(tensors["r1"], tensors["r2"])
