"""Property-based invariants on the sharded simulation path.

The overload conservation law (every offered window resolves to exactly
one of admitted/shed/redirected/degraded) and the resilience guarantee
(no query is ever dropped — every window's queries land in the totals)
must survive the spatial decomposition and the order-independent merge,
for randomized seeds, shard sizes, and policies.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.master import MigrationPolicy
from repro.faults import get_profile
from repro.overload import OverloadConfig
from repro.simulation.large_scale import SimulationSettings
from repro.simulation.sharding import run_large_scale_sharded
from repro.trajectories.synthetic import kaist_like

_DATASET = kaist_like(np.random.default_rng(33), num_users=8, duration_steps=60)


def _run(tiny_partitioner, seed, shard_size, overload=None, faults=None):
    settings_ = SimulationSettings(
        policy=MigrationPolicy.PERDNN,
        migration_radius_m=100.0,
        max_steps=8,
        seed=seed,
        faults=faults,
        overload=overload,
    )
    # workers=1 keeps hypothesis examples in-process (the worker-count
    # invariance itself is pinned by tests/simulation).
    return run_large_scale_sharded(
        _DATASET, tiny_partitioner, settings_,
        shard_size=shard_size, workers=1,
    )


@settings(max_examples=6, deadline=None)
@given(
    policy=st.sampled_from(["reject", "redirect", "degrade"]),
    seed=st.integers(0, 100),
    shard_size=st.sampled_from([2, 3, 50]),
)
def test_overload_conservation_survives_the_merge(
    tiny_partitioner, policy, seed, shard_size
):
    overload = OverloadConfig(policy=policy, queue_capacity=1)
    result = _run(tiny_partitioner, seed, shard_size, overload=overload)
    stats = result.extras["overload"]
    assert stats["offered"] > 0
    assert stats["offered"] == (
        stats["admitted"] + stats["shed"]
        + stats["redirected"] + stats["degraded"]
    )
    # Each policy can only ever produce its own non-admitted outcome.
    if policy == "reject":
        assert stats["redirected"] == 0 and stats["degraded"] == 0
    elif policy == "redirect":
        assert stats["degraded"] == 0
    else:
        assert stats["redirected"] == 0 and stats["shed"] == 0


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 100),
    shard_size=st.sampled_from([2, 3, 50]),
    profile=st.sampled_from(["churn", "flash-crowd", "blackout"]),
)
def test_no_query_dropped_under_faults(
    tiny_partitioner, seed, shard_size, profile
):
    result = _run(
        tiny_partitioner, seed, shard_size, faults=get_profile(profile)
    )
    trace = result.telemetry.trace
    windows = list(trace.of_kind("query_window"))
    # Every client-interval produced exactly one window event, and every
    # window's queries are accounted for in the merged total — faults
    # degrade to local execution, they never drop work.
    registry = result.telemetry.registry
    assert len(windows) == int(registry.value("resilience.client_intervals"))
    assert sum(e.queries for e in windows) == result.total_queries
    assert result.total_queries > 0
    assert 0.0 <= result.availability <= 1.0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 100), shard_size=st.sampled_from([2, 5, 50]))
def test_merged_result_matches_its_own_registry(
    tiny_partitioner, seed, shard_size
):
    result = _run(tiny_partitioner, seed, shard_size)
    registry = result.telemetry.registry
    assert result.total_queries == int(registry.value("query.completed"))
    assert result.hits == int(
        registry.value("sim.cold_start", {"outcome": "hit"})
    )
    assert result.misses == int(
        registry.value("sim.cold_start", {"outcome": "miss"})
    )
    assert result.num_clients == int(registry.value("sim.num_clients"))
    assert result.num_servers == int(registry.value("sim.num_servers"))
    per_shard = result.extras["sharding"]["clients_per_shard"]
    assert sum(per_shard) == result.num_clients
    trace_queries = sum(
        e.queries for e in result.telemetry.trace.of_kind("query_window")
    )
    assert trace_queries == result.total_queries
