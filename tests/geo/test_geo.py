"""Tests for geometry, hex grid, and the edge-server registry."""

import math

import numpy as np
import pytest

from repro.geo.geometry import BoundingBox, euclidean
from repro.geo.hexgrid import HexCell, HexGrid
from repro.geo.wifi import EdgeServerRegistry


class TestGeometry:
    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == 5.0

    def test_bbox_properties(self):
        box = BoundingBox(0, 0, 10, 20)
        assert box.width == 10 and box.height == 20 and box.area == 200

    def test_bbox_contains_and_clamp(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains((5, 5))
        assert not box.contains((11, 5))
        assert box.clamp((11, -2)) == (10, 0)

    def test_degenerate_bbox_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 0, 10)

    def test_sample_inside(self, rng):
        box = BoundingBox(2, 3, 4, 5)
        for _ in range(20):
            assert box.contains(box.sample(rng))


class TestHexGrid:
    def test_cell_of_center_roundtrip(self):
        grid = HexGrid(50.0)
        for q in range(-3, 4):
            for r in range(-3, 4):
                cell = HexCell(q, r)
                assert grid.cell_of(grid.center(cell)) == cell

    def test_cell_of_is_nearest_center(self, rng):
        grid = HexGrid(50.0)
        for _ in range(100):
            point = (float(rng.uniform(-500, 500)), float(rng.uniform(-500, 500)))
            cell = grid.cell_of(point)
            own = euclidean(point, grid.center(cell))
            for neighbor in cell.neighbors():
                assert own <= euclidean(point, grid.center(neighbor)) + 1e-9

    def test_neighbor_distance(self):
        grid = HexGrid(50.0)
        origin = HexCell(0, 0)
        for neighbor in origin.neighbors():
            assert grid.center_distance(origin, neighbor) == pytest.approx(
                math.sqrt(3) * 50.0
            )

    def test_cells_within_zero_distance(self):
        grid = HexGrid(50.0)
        cells = grid.cells_within((0.0, 0.0), 0.0)
        assert cells == [HexCell(0, 0)]

    def test_cells_within_counts(self):
        grid = HexGrid(50.0)
        # Radius covering exactly the first ring: 6 neighbors + origin.
        cells = grid.cells_within((0.0, 0.0), math.sqrt(3) * 50.0 + 1.0)
        assert len(cells) == 7

    def test_cells_within_negative_rejected(self):
        with pytest.raises(ValueError):
            HexGrid(50.0).cells_within((0, 0), -1.0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            HexGrid(0.0)


class TestRegistry:
    def test_allocation_from_points(self):
        grid = HexGrid(50.0)
        points = [(0.0, 0.0), (1.0, 1.0), (500.0, 500.0)]
        registry = EdgeServerRegistry.from_visited_points(grid, points)
        assert registry.num_servers == 2  # first two share a cell

    def test_server_ids_stable(self):
        grid = HexGrid(50.0)
        registry = EdgeServerRegistry(grid)
        cell = grid.cell_of((0.0, 0.0))
        first = registry.ensure_server(cell)
        second = registry.ensure_server(cell)
        assert first == second

    def test_server_at_unallocated_cell_is_none(self):
        grid = HexGrid(50.0)
        registry = EdgeServerRegistry.from_visited_points(grid, [(0.0, 0.0)])
        assert registry.server_at((5000.0, 5000.0)) is None

    def test_round_trip_server_cell_location(self):
        grid = HexGrid(50.0)
        registry = EdgeServerRegistry.from_visited_points(grid, [(120.0, 80.0)])
        server_id = registry.server_at((120.0, 80.0))
        assert server_id is not None
        cell = registry.cell_of_server(server_id)
        assert registry.server_for_cell(cell) == server_id
        assert registry.server_location(server_id) == grid.center(cell)

    def test_servers_within_radius(self):
        grid = HexGrid(50.0)
        points = [grid.center(HexCell(q, 0)) for q in range(5)]
        registry = EdgeServerRegistry.from_visited_points(grid, points)
        near = registry.servers_within(grid.center(HexCell(0, 0)), 100.0)
        far = registry.servers_within(grid.center(HexCell(0, 0)), 500.0)
        assert len(near) < len(far) <= 5

    def test_servers_within_matches_reference(self):
        # The vectorized radius query must agree with the cell-enumerating
        # reference exactly — same ids, same (cell-sorted) order — for
        # arbitrary query points and distances, including ones that land
        # exactly on a centre distance (the float comparison on survivors
        # is the reference's own).
        grid = HexGrid(50.0)
        rng = np.random.default_rng(23)
        points = rng.uniform(-1500.0, 1500.0, size=(400, 2))
        registry = EdgeServerRegistry.from_visited_points(grid, points)
        for _ in range(200):
            point = tuple(rng.uniform(-1600.0, 1600.0, size=2))
            distance = float(rng.uniform(0.0, 600.0))
            assert registry.servers_within(point, distance) == (
                registry._servers_within_reference(point, distance)
            )
        # Exact-boundary probes: query from one centre at the exact
        # distance of another.
        centers = [
            registry.server_location(server)
            for server in registry.server_ids[:20]
        ]
        origin = centers[0]
        for target in centers[1:]:
            distance = math.hypot(
                target[0] - origin[0], target[1] - origin[1]
            )
            assert registry.servers_within(origin, distance) == (
                registry._servers_within_reference(origin, distance)
            )

    def test_servers_within_batch_matches_scalar(self):
        # The chunked many-point query must reproduce the per-point query
        # row for row (the proactive migration pass depends on it).
        grid = HexGrid(50.0)
        rng = np.random.default_rng(31)
        seeds = rng.uniform(-1500.0, 1500.0, size=(300, 2))
        registry = EdgeServerRegistry.from_visited_points(grid, seeds)
        probes = [
            tuple(rng.uniform(-1600.0, 1600.0, size=2)) for _ in range(150)
        ]
        for distance in (0.0, 60.0, 100.0, 450.0):
            batch = registry.servers_within_batch(probes, distance)
            assert batch == [
                registry.servers_within(point, distance) for point in probes
            ]
        assert registry.servers_within_batch([], 100.0) == []

    def test_servers_within_batch_chunk_boundaries(self):
        # Point counts that straddle the chunk size — one short of a
        # boundary, exactly on it, one past it, and several chunks plus a
        # remainder — must all reproduce the per-point query row for row.
        grid = HexGrid(50.0)
        rng = np.random.default_rng(41)
        seeds = rng.uniform(-800.0, 800.0, size=(120, 2))
        registry = EdgeServerRegistry.from_visited_points(grid, seeds)
        chunk = 4
        for count in (chunk - 1, chunk, chunk + 1, 3 * chunk + 2):
            probes = [
                tuple(rng.uniform(-900.0, 900.0, size=2))
                for _ in range(count)
            ]
            batch = registry.servers_within_batch(
                probes, 150.0, _chunk_rows=chunk
            )
            assert batch == [
                registry.servers_within(point, 150.0) for point in probes
            ]
            assert len(batch) == count

    def test_servers_within_batch_zero_servers(self):
        # A registry with no allocated servers answers every probe with an
        # empty row (and an empty probe list with an empty result).
        registry = EdgeServerRegistry(HexGrid(50.0))
        probes = [(0.0, 0.0), (100.0, -50.0), (1e6, 1e6)]
        assert registry.servers_within_batch(probes, 500.0) == [[], [], []]
        assert registry.servers_within_batch([], 500.0) == []

    def test_servers_within_batch_all_points_filtered(self):
        # Rows whose prefilter keeps no candidates: every probe far from
        # every server, across several chunks, and a mix where only some
        # rows survive — row alignment must not drift when np.nonzero
        # returns nothing for a whole block.
        grid = HexGrid(50.0)
        seeds = [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]
        registry = EdgeServerRegistry.from_visited_points(grid, seeds)
        far = [(1e5 + 10.0 * i, -1e5) for i in range(7)]
        assert registry.servers_within_batch(far, 200.0, _chunk_rows=3) == [
            [] for _ in far
        ]
        mixed = [far[0], (0.0, 0.0), far[1], far[2], (100.0, 0.0), far[3]]
        batch = registry.servers_within_batch(mixed, 200.0, _chunk_rows=2)
        assert batch == [
            registry.servers_within(point, 200.0) for point in mixed
        ]
        assert batch[0] == [] and batch[2] == [] and batch[1] != []

    def test_servers_within_index_invalidated_by_allocation(self):
        grid = HexGrid(50.0)
        registry = EdgeServerRegistry.from_visited_points(grid, [(0.0, 0.0)])
        assert len(registry.servers_within((0.0, 0.0), 1000.0)) == 1
        registry.ensure_server(grid.cell_of((200.0, 0.0)))
        assert len(registry.servers_within((0.0, 0.0), 1000.0)) == 2


class TestVectorizedGeo:
    """The array passes must agree with the scalar helpers bit for bit —
    the sharded simulator's byte-identity rests on this."""

    def test_cells_of_matches_cell_of(self):
        grid = HexGrid(50.0)
        rng = np.random.default_rng(11)
        points = rng.uniform(-2000.0, 2000.0, size=(5000, 2))
        cells = grid.cells_of(points)
        for i in range(len(points)):
            scalar = grid.cell_of((points[i, 0], points[i, 1]))
            assert (cells[i, 0], cells[i, 1]) == (scalar.q, scalar.r)

    def test_cells_of_on_cell_boundaries(self):
        # Centers, corners, and edge midpoints stress the rounding
        # tie-break branches of the axial rounder.
        grid = HexGrid(50.0)
        centers = np.array(
            [grid.center(HexCell(q, r)) for q in range(-3, 4)
             for r in range(-3, 4)]
        )
        offsets = np.array(
            [(0.0, 0.0), (25.0, 0.0), (0.0, 25.0), (-25.0, -25.0)]
        )
        points = (centers[:, None, :] + offsets[None, :, :]).reshape(-1, 2)
        cells = grid.cells_of(points)
        for i in range(len(points)):
            scalar = grid.cell_of((points[i, 0], points[i, 1]))
            assert (cells[i, 0], cells[i, 1]) == (scalar.q, scalar.r)

    def test_cells_of_validates_shape(self):
        grid = HexGrid(50.0)
        with pytest.raises(ValueError):
            grid.cells_of(np.zeros((4, 3)))

    def test_vectorized_registry_allocation_matches_scalar(self):
        grid = HexGrid(50.0)
        rng = np.random.default_rng(12)
        points = rng.uniform(-1500.0, 1500.0, size=(3000, 2))
        vectorized = EdgeServerRegistry.from_visited_points(grid, points)
        scalar = EdgeServerRegistry(grid)
        for point in points:
            scalar.ensure_server(grid.cell_of((point[0], point[1])))
        # Identical server ids in identical first-seen order.
        assert vectorized.num_servers == scalar.num_servers
        for server_id in range(vectorized.num_servers):
            assert vectorized.cell_of_server(server_id) == (
                scalar.cell_of_server(server_id)
            )

    def test_servers_at_points_matches_server_at(self):
        grid = HexGrid(50.0)
        rng = np.random.default_rng(13)
        seen = rng.uniform(-500.0, 500.0, size=(200, 2))
        registry = EdgeServerRegistry.from_visited_points(grid, seen)
        queries = np.vstack(
            [seen[:50], rng.uniform(-4000.0, 4000.0, size=(100, 2))]
        )
        ids = registry.servers_at_points(queries)
        for i in range(len(queries)):
            scalar = registry.server_at((queries[i, 0], queries[i, 1]))
            expected = -1 if scalar is None else scalar
            assert ids[i] == expected
