"""Telemetry: metrics registry, event trace, deterministic exporters.

One :class:`Telemetry` bundle travels through a simulation run — the
master server, edge servers, traffic meter, and query loop all record
into its registry and trace — and the driver derives its reported result
from the registry instead of hand-maintained tallies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.events import (
    EVENT_KINDS,
    AssociationEvent,
    BreakerEvent,
    CacheEvictionEvent,
    ColdStartEvent,
    Event,
    EventTrace,
    FaultEvent,
    FractionalTruncationEvent,
    MigrationEvent,
    NullEventTrace,
    QueryWindowEvent,
    event_from_dict,
)
from repro.telemetry.export import (
    SCHEMA,
    dumps_snapshot,
    metrics_csv,
    read_snapshot,
    snapshot,
    summarize_snapshot,
    write_metrics_csv,
    write_snapshot,
)
from repro.telemetry.registry import (
    TIMER_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
    normalize_labels,
)


@dataclass
class Telemetry:
    """One run's instrumentation: a registry plus an event trace."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    trace: EventTrace = field(default_factory=EventTrace)

    @classmethod
    def create(
        cls, record_timings: bool = False, record_events: bool = True
    ) -> "Telemetry":
        trace = EventTrace() if record_events else NullEventTrace()
        return cls(
            registry=MetricsRegistry(record_timings=record_timings),
            trace=trace,
        )

    def snapshot(self, meta: dict | None = None) -> dict:
        return snapshot(self.registry, self.trace, meta)

    def dumps(self, meta: dict | None = None) -> str:
        return dumps_snapshot(self.registry, self.trace, meta)

    def write(self, path, meta: dict | None = None) -> str:
        return write_snapshot(path, self.registry, self.trace, meta)


__all__ = [
    "SCHEMA",
    "TIMER_BUCKETS",
    "EVENT_KINDS",
    "AssociationEvent",
    "BreakerEvent",
    "CacheEvictionEvent",
    "ColdStartEvent",
    "Counter",
    "Event",
    "EventTrace",
    "FaultEvent",
    "FractionalTruncationEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MigrationEvent",
    "NullEventTrace",
    "QueryWindowEvent",
    "Telemetry",
    "dumps_snapshot",
    "event_from_dict",
    "merge_registries",
    "metrics_csv",
    "normalize_labels",
    "read_snapshot",
    "snapshot",
    "summarize_snapshot",
    "write_metrics_csv",
    "write_snapshot",
]
