"""Process-local metrics registry: counters, gauges, histograms, timers.

The registry is the single instrumentation surface of the reproduction.
Hot paths (the master's planning loop, edge-server caches, the backhaul
meter, the query-window integrator) record into it; simulation drivers
derive their reported results from it; exporters serialize it.

Design constraints (see ISSUE 1):

* zero dependencies — stdlib + nothing else;
* deterministic — metric identity is ``(name, sorted labels)``, exported
  views are sorted, and no wall-clock value enters the registry unless
  timing capture is explicitly enabled (``record_timings=True``);
* cheap — recording is a dict lookup plus a float add, so instrumenting
  the simulator's inner loops does not noticeably change tier-1 runtime.
"""

from __future__ import annotations

import functools
import itertools
import math
import operator
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from typing import Callable

Labels = tuple[tuple[str, str], ...]

#: Default bucket upper bounds for scoped timers (seconds).
TIMER_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


def normalize_labels(labels: Mapping[str, str] | None) -> Labels:
    """Canonical label identity: sorted ``(key, value)`` string pairs."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing accumulator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only move forward (amount >= 0)")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """Last-written value (set/add; not monotonic)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def merge(self, other: "Gauge") -> None:
        # Last write wins; in a merge the other registry is "newer".
        self.value = other.value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-boundary histogram with sum/count.

    ``buckets`` are strictly increasing upper bounds; an observation lands
    in the first bucket whose bound is >= the value, or in the implicit
    overflow bucket past the last bound (``counts`` has ``len(buckets)+1``
    slots).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self, name: str, buckets: tuple[float, ...], labels: Labels = ()
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def observe_repeated(self, value: float, times: int) -> None:
        """``times`` consecutive ``observe(value)`` calls in one step.

        The bucket walk happens once, but ``sum`` still accumulates one
        addition per observation: float addition is not associative, and
        the fast simulation path relies on this method being bit-identical
        to the equivalent observe() loop.  ``times == 0`` is a no-op that
        does not register anything.
        """
        if times < 0:
            raise ValueError("times must be non-negative")
        if times == 0:
            return
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += times
        if times == 1:
            # The fast query path emits one call per latency *run*, which
            # is frequently a single observation; skip the fold machinery.
            self.sum += value
        else:
            # Serial left fold at C speed: ((sum + v) + v) + ... performs
            # the exact same one-addition-per-observation sequence as the
            # Python loop ``for _ in range(times): self.sum += value``.
            self.sum = functools.reduce(
                operator.add, itertools.repeat(value, times), self.sum
            )
        self.count += times

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Conservative q-quantile: the smallest bucket upper bound whose
        cumulative count covers the q-fraction of observations, clamped to
        the last bound for the overflow bucket.  0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0 or not self.buckets:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry keyed by ``(name, labels)``.

    A ``(name, labels)`` pair is bound to one metric kind for the life of
    the registry; asking for the same pair as a different kind (or a
    histogram with different buckets) raises.

    ``record_timings`` gates the wall-clock side of :meth:`timer`: off by
    default so exported snapshots are bit-reproducible under a fixed seed.
    """

    def __init__(
        self,
        record_timings: bool = False,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.record_timings = record_timings
        self._clock = clock or time.perf_counter
        self._metrics: dict[tuple[str, Labels], Metric] = {}
        # Resolution fast paths for the simulator's hot loops: unlabeled
        # counters by name, histograms by (name, identity of the buckets
        # tuple the caller passed).  Pure lookup caches over
        # ``_get_or_create`` — creation order and validation behaviour are
        # unchanged (a cache miss takes the full path).
        self._unlabeled_counters: dict[str, Counter] = {}
        self._unlabeled_histograms: dict[str, tuple[Histogram, object]] = {}

    # ------------------------------------------------------------------
    # Get-or-create
    # ------------------------------------------------------------------
    def _get_or_create(
        self, cls, name: str, labels: Mapping[str, str] | None, **kwargs
    ):
        key = (name, normalize_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r}{dict(key[1])!r} already registered as "
                    f"{type(existing).__name__}"
                )
            if (
                isinstance(existing, Histogram)
                and "buckets" in kwargs
                and existing.buckets != tuple(float(b) for b in kwargs["buckets"])
            ):
                raise ValueError(
                    f"histogram {name!r} already registered with different "
                    "bucket bounds"
                )
            return existing
        metric = cls(name, labels=key[1], **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        if labels is None:
            cached = self._unlabeled_counters.get(name)
            if cached is not None:
                return cached
            metric = self._get_or_create(Counter, name, None)
            self._unlabeled_counters[name] = metric
            return metric
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...],
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        if labels is None:
            cached = self._unlabeled_histograms.get(name)
            # Identity check on the buckets argument: hot callers pass the
            # same module-level constant every time, which skips the
            # per-call bounds re-validation; any other object falls
            # through to the full checked path.
            if cached is not None and cached[1] is buckets:
                return cached[0]
            metric = self._get_or_create(Histogram, name, None, buckets=buckets)
            self._unlabeled_histograms[name] = (metric, buckets)
            return metric
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @contextmanager
    def timer(self, name: str, labels: Mapping[str, str] | None = None):
        """Scoped timer: always counts calls; records seconds into
        ``<name>.seconds`` only when ``record_timings`` is enabled, so the
        default export stays deterministic."""
        self.counter(f"{name}.calls", labels).inc()
        if not self.record_timings:
            yield
            return
        start = self._clock()
        try:
            yield
        finally:
            self.histogram(f"{name}.seconds", TIMER_BUCKETS, labels).observe(
                self._clock() - start
            )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Metric | None:
        """The registered metric for ``(name, labels)``, or None."""
        return self._metrics.get((name, normalize_labels(labels)))

    def value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        """Current value of a counter/gauge; 0.0 if never recorded."""
        metric = self._metrics.get((name, normalize_labels(labels)))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; read .sum/.count")
        return metric.value

    def series(self, name: str) -> list[tuple[dict[str, str], float]]:
        """All labelled values of one counter/gauge name, sorted by labels."""
        out = []
        for (metric_name, labels), metric in sorted(self._metrics.items()):
            if metric_name == name and not isinstance(metric, Histogram):
                out.append((dict(labels), metric.value))
        return out

    def metrics(self) -> Iterator[Metric]:
        """All metrics in deterministic (name, labels) order."""
        for _, metric in sorted(self._metrics.items()):
            yield metric

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every metric in place (registrations and buckets stay)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every registration."""
        self._metrics.clear()
        self._unlabeled_counters.clear()
        self._unlabeled_histograms.clear()

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place and return self.

        Counters and histograms accumulate, gauges take the other's value.
        Merging two registries that recorded disjoint halves of a workload
        equals one registry that recorded the interleaved whole (for
        counters and histograms; gauges are last-write).

        .. warning:: last-write gauges make pairwise merging
           *order-dependent*, and chained float ``+=`` makes even counter
           sums depend on fold order in the last ulp.  When combining more
           than two registries (shard fan-in), use
           :func:`merge_registries`, which is permutation-invariant.
        """
        for key, theirs in sorted(other._metrics.items()):
            mine = self._metrics.get(key)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = self.histogram(key[0], theirs.buckets, dict(key[1]))
                elif isinstance(theirs, Gauge):
                    mine = self.gauge(key[0], dict(key[1]))
                else:
                    mine = self.counter(key[0], dict(key[1]))
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"cannot merge {key[0]!r}: kind mismatch "
                    f"({type(mine).__name__} vs {type(theirs).__name__})"
                )
            mine.merge(theirs)
        return self

    def as_dict(self) -> dict:
        """Deterministic nested view: kind -> sorted list of metric dicts."""
        counters, gauges, histograms = [], [], []
        for metric in self.metrics():
            if isinstance(metric, Counter):
                counters.append(metric.as_dict())
            elif isinstance(metric, Gauge):
                gauges.append(metric.as_dict())
            else:
                histograms.append(metric.as_dict())
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


#: Gauge combination rules accepted by :func:`merge_registries`.
GAUGE_RULES = ("sum", "max", "min")


class _MergeSlot:
    """Streaming accumulator for one ``(name, labels)`` key.

    Integer tallies (bucket counts, observation counts) fold as they
    arrive — integer addition is exact.  Float values are *collected* and
    reduced with :func:`math.fsum` at the end, so the result is the exact
    correctly-rounded sum regardless of how many registries streamed
    through or in which order.
    """

    __slots__ = ("kind", "values", "buckets", "counts", "count")

    def __init__(self, metric: Metric) -> None:
        self.kind = type(metric)
        self.values: list[float] = []
        if isinstance(metric, Histogram):
            self.buckets = metric.buckets
            self.counts = [0] * (len(metric.buckets) + 1)
            self.count = 0

    def absorb(self, name: str, metric: Metric) -> None:
        if type(metric) is not self.kind:
            raise TypeError(f"cannot merge {name!r}: kind mismatch")
        if isinstance(metric, Histogram):
            if metric.buckets != self.buckets:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            for i, bucket_count in enumerate(metric.counts):
                self.counts[i] += bucket_count
            self.count += metric.count
            self.values.append(metric.sum)
        else:
            self.values.append(metric.value)


def merge_registries(
    registries,
    gauge_rules: Mapping[str, str] | None = None,
    default_gauge_rule: str = "sum",
) -> MetricsRegistry:
    """Combine any number of registries into a fresh, order-independent one.

    Unlike pairwise :meth:`MetricsRegistry.merge` (which folds left and
    lets the last gauge write win), this merge is *permutation-invariant*:
    feeding the same registries in any order produces byte-identical
    exports.

    * counters and histogram sums use :func:`math.fsum` — the exact
      correctly-rounded sum, which does not depend on addend order;
    * histogram bucket tallies and counts are integer sums;
    * gauges combine under a per-name rule (``"sum"``, ``"max"`` or
      ``"min"``; ``gauge_rules`` maps gauge names to rules, everything
      else uses ``default_gauge_rule``) — all commutative, so no write
      ordering leaks into the result.

    ``registries`` may be any iterable — including a generator that loads
    registries lazily (e.g. one checkpointed shard file at a time).  Each
    registry is consumed and released before the next is requested, so
    peak memory is the *merged* footprint plus one input, never all
    inputs at once.  Streaming and materialized inputs produce
    byte-identical merges (the fsum sees the same addend multiset).

    Metric kinds and histogram bucket bounds must agree across inputs for
    any shared ``(name, labels)`` key.
    """
    if default_gauge_rule not in GAUGE_RULES:
        raise ValueError(f"unknown gauge rule {default_gauge_rule!r}")
    rules = dict(gauge_rules or {})
    for name, rule in rules.items():
        if rule not in GAUGE_RULES:
            raise ValueError(f"unknown gauge rule {rule!r} for {name!r}")
    slots: dict[tuple[str, Labels], _MergeSlot] = {}
    for registry in registries:
        for metric in registry.metrics():
            key = (metric.name, metric.labels)
            slot = slots.get(key)
            if slot is None:
                slot = slots[key] = _MergeSlot(metric)
            slot.absorb(metric.name, metric)
    merged = MetricsRegistry()
    for (name, labels), slot in sorted(slots.items()):
        labels_map = dict(labels)
        if slot.kind is Counter:
            merged.counter(name, labels_map).value = math.fsum(slot.values)
        elif slot.kind is Gauge:
            rule = rules.get(name, default_gauge_rule)
            if rule == "sum":
                combined = math.fsum(slot.values)
            elif rule == "max":
                combined = max(slot.values)
            else:
                combined = min(slot.values)
            merged.gauge(name, labels_map).set(combined)
        else:
            hist = merged.histogram(name, slot.buckets, labels_map)
            hist.counts = list(slot.counts)
            hist.sum = math.fsum(slot.values)
            hist.count = slot.count
    return merged
