"""Structured per-interval event trace.

Every simulation-visible state change the paper's evaluation reasons
about gets a frozen dataclass event: (re-)association, cold-start hit or
miss, proactive migration, fractional-migration truncation, cache
eviction, and query-window completion.  The trace is an append-only list
in simulation order, so under a fixed seed two runs produce identical
traces (there are no timestamps — ``interval`` is simulation time).
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections.abc import Iterable, Iterator
from dataclasses import asdict, dataclass, fields
from typing import ClassVar


@dataclass(frozen=True)
class Event:
    """Base event: everything happens at one simulation interval."""

    kind: ClassVar[str] = "event"
    interval: int

    def as_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class AssociationEvent(Event):
    """A client (re-)associated with an edge server."""

    kind: ClassVar[str] = "association"
    client_id: int
    server_id: int
    previous_server: int | None


@dataclass(frozen=True)
class ColdStartEvent(Event):
    """Hit/miss outcome of one new association (§4.B metric)."""

    kind: ClassVar[str] = "cold_start"
    client_id: int
    server_id: int
    hit: bool
    cached_bytes: float
    required_bytes: float


@dataclass(frozen=True)
class MigrationEvent(Event):
    """One proactive backhaul transfer of cached layer bytes."""

    kind: ClassVar[str] = "migration"
    client_id: int
    source_server: int
    target_server: int
    nbytes: float


@dataclass(frozen=True)
class FractionalTruncationEvent(Event):
    """A crowded-server byte budget capped a migration below plan size."""

    kind: ClassVar[str] = "fractional_truncation"
    client_id: int
    source_server: int
    target_server: int
    plan_bytes: float
    budget_bytes: float


@dataclass(frozen=True)
class CacheEvictionEvent(Event):
    """A TTL-expired cached model was dropped from a server."""

    kind: ClassVar[str] = "cache_eviction"
    server_id: int
    client_id: int


@dataclass(frozen=True)
class QueryWindowEvent(Event):
    """One client's query loop over one interval completed.

    ``server_id`` is ``None`` when the window ran fully on-device (the
    client degraded to local execution because no live server was
    reachable).
    """

    kind: ClassVar[str] = "query_window"
    client_id: int
    server_id: int | None
    queries: int
    coldstart: bool
    end_bytes: float


@dataclass(frozen=True)
class FaultEvent(Event):
    """One injected infrastructure fault fired.

    ``fault`` names the injection (``server_crash``, ``server_restart``,
    ``backhaul_blocked``, ``migration_drop``, ``upload_drop``);
    ``server_id``/``client_id`` identify the victims where applicable.
    """

    kind: ClassVar[str] = "fault"
    fault: str
    server_id: int | None = None
    client_id: int | None = None


@dataclass(frozen=True)
class BreakerEvent(Event):
    """A client's circuit breaker changed state for one server.

    States are the :class:`~repro.overload.breaker.BreakerState` values
    (``closed``, ``open``, ``half_open``).
    """

    kind: ClassVar[str] = "breaker"
    client_id: int
    server_id: int
    from_state: str
    to_state: str


#: kind -> event class, for deserializing exported traces.
EVENT_KINDS: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        AssociationEvent,
        ColdStartEvent,
        MigrationEvent,
        FractionalTruncationEvent,
        CacheEvictionEvent,
        QueryWindowEvent,
        FaultEvent,
        BreakerEvent,
    )
}


def event_from_dict(payload: dict) -> Event:
    """Rebuild an event from one ``as_dict`` payload."""
    data = dict(payload)
    kind = data.pop("kind")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ValueError(f"unknown fields for {kind!r}: {sorted(unknown)}")
    return cls(**data)


class EventTrace:
    """Append-only, iteration-ordered event log."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(self, event: Event) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Bulk-append ``events`` in iteration order.

        Equivalent to :meth:`record` per event; used by the sharded merge
        to fold one shard's (rebased) events at a time without a Python
        call per event.
        """
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self._events if e.kind == kind]

    def counts_by_kind(self) -> dict[str, int]:
        return dict(sorted(TallyCounter(e.kind for e in self._events).items()))

    def as_dicts(self) -> list[dict]:
        return [event.as_dict() for event in self._events]

    def clear(self) -> None:
        self._events.clear()


class NullEventTrace(EventTrace):
    """An event trace that drops everything.

    Used by very large sharded runs (``record_events=False``) where
    keeping hundreds of thousands of per-window events would dominate
    memory and inter-process transfer; exported snapshots then carry an
    empty ``events`` list.  Counters are unaffected — only the structured
    trace is discarded.
    """

    def record(self, event: Event) -> None:  # noqa: ARG002 - deliberate drop
        return None

    def extend(self, events: Iterable[Event]) -> None:  # noqa: ARG002
        return None
