"""Deterministic JSON/CSV export of telemetry snapshots.

A *snapshot* is one JSON document bundling a registry view, an optional
event trace, and optional caller-provided metadata:

.. code-block:: json

    {
      "schema": "perdnn-telemetry/1",
      "meta": {"benchmark": "fig9", "dataset": "kaist"},
      "metrics": {"counters": [...], "gauges": [...], "histograms": [...]},
      "events": [{"kind": "migration", "interval": 3, ...}, ...]
    }

Serialization is byte-deterministic: metric lists are sorted by
``(name, labels)``, events keep simulation order, keys are sorted, and no
timestamp is added unless the caller puts one in ``meta``.  Two same-seed
simulation runs therefore export identical bytes (the determinism
regression test relies on this).
"""

from __future__ import annotations

import csv
import io
import json
import os

from repro.telemetry.events import EventTrace
from repro.telemetry.registry import MetricsRegistry

SCHEMA = "perdnn-telemetry/1"


def snapshot(
    registry: MetricsRegistry,
    trace: EventTrace | None = None,
    meta: dict | None = None,
) -> dict:
    """Plain-dict snapshot of a registry (+ optional trace and metadata)."""
    doc: dict = {"schema": SCHEMA, "metrics": registry.as_dict()}
    if meta:
        doc["meta"] = dict(meta)
    if trace is not None:
        doc["events"] = trace.as_dicts()
    return doc


def dumps_snapshot(
    registry: MetricsRegistry,
    trace: EventTrace | None = None,
    meta: dict | None = None,
) -> str:
    """Canonical JSON text of a snapshot (sorted keys, no whitespace)."""
    return json.dumps(
        snapshot(registry, trace, meta),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def write_snapshot(
    path: str | os.PathLike,
    registry: MetricsRegistry,
    trace: EventTrace | None = None,
    meta: dict | None = None,
) -> str:
    """Write the canonical JSON snapshot to ``path``; returns the path."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(dumps_snapshot(registry, trace, meta))
        handle.write("\n")
    return path


def read_snapshot(path: str | os.PathLike) -> dict:
    """Load a snapshot document, checking the schema marker."""
    with open(os.fspath(path), encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"not a telemetry snapshot (schema={doc.get('schema')!r})"
        )
    return doc


def metrics_csv(registry: MetricsRegistry) -> str:
    """Flat CSV view of the registry: one row per metric datum.

    Columns: ``kind,name,labels,field,value``; histogram rows carry one
    ``le=<bound>`` field per bucket plus ``sum`` and ``count``.  Rows are
    emitted in the registry's deterministic order.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["kind", "name", "labels", "field", "value"])
    doc = registry.as_dict()
    for kind in ("counters", "gauges"):
        for metric in doc[kind]:
            labels = json.dumps(metric["labels"], sort_keys=True)
            writer.writerow(
                [kind[:-1], metric["name"], labels, "value", metric["value"]]
            )
    for metric in doc["histograms"]:
        labels = json.dumps(metric["labels"], sort_keys=True)
        bounds = [*metric["buckets"], "+inf"]
        for bound, count in zip(bounds, metric["counts"]):
            writer.writerow(
                ["histogram", metric["name"], labels, f"le={bound}", count]
            )
        writer.writerow(
            ["histogram", metric["name"], labels, "sum", metric["sum"]]
        )
        writer.writerow(
            ["histogram", metric["name"], labels, "count", metric["count"]]
        )
    return out.getvalue()


def write_metrics_csv(path: str | os.PathLike, registry: MetricsRegistry) -> str:
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(metrics_csv(registry))
    return path


def summarize_snapshot(doc: dict, top: int = 10) -> list[str]:
    """Human-readable summary lines of a snapshot (the CLI's output)."""
    lines: list[str] = []
    meta = doc.get("meta") or {}
    if meta:
        joined = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"meta: {joined}")
    metrics = doc.get("metrics", {})
    counters = metrics.get("counters", [])
    gauges = metrics.get("gauges", [])
    histograms = metrics.get("histograms", [])
    if counters:
        lines.append(f"counters ({len(counters)}):")
        ranked = sorted(counters, key=lambda c: -c["value"])[:top]
        for metric in ranked:
            labels = _label_text(metric["labels"])
            lines.append(f"  {metric['name']}{labels} = {metric['value']:g}")
        if len(counters) > top:
            lines.append(f"  ... {len(counters) - top} more")
    if gauges:
        lines.append(f"gauges ({len(gauges)}):")
        for metric in gauges:
            labels = _label_text(metric["labels"])
            lines.append(f"  {metric['name']}{labels} = {metric['value']:g}")
    if histograms:
        lines.append(f"histograms ({len(histograms)}):")
        for metric in histograms:
            labels = _label_text(metric["labels"])
            mean = metric["sum"] / metric["count"] if metric["count"] else 0.0
            lines.append(
                f"  {metric['name']}{labels}: count={metric['count']} "
                f"sum={metric['sum']:g} mean={mean:g}"
            )
    events = doc.get("events")
    if events is not None:
        lines.append(f"events ({len(events)}):")
        tally: dict[str, int] = {}
        for event in events:
            tally[event["kind"]] = tally.get(event["kind"], 0) + 1
        for kind, count in sorted(tally.items()):
            lines.append(f"  {kind}: {count}")
    if not lines:
        lines.append("(empty snapshot)")
    return lines


def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"
