"""Built-in fault profiles: named recipes for a run's failure regime.

A :class:`FaultProfile` turns the run parameters (allocated server ids,
run seed, replay horizon) into a concrete :class:`FaultSchedule`.  The
same profile + seed + topology always builds the same schedule, so
same-seed runs under a profile stay byte-identical.

Profiles (``repro faults`` lists them):

* ``none`` — the perfect world; the fault layer is a strict no-op.
* ``churn`` — edge servers crash and restart independently (≈10 % crash
  chance per interval, 2–4 intervals of downtime); cached models are lost
  on every crash.
* ``flaky-backhaul`` — infrastructure stays up, but the backhaul runs at
  half capacity and individual migrations/uploads fail probabilistically.
* ``flash-crowd`` — all but a seed-deterministic ~1/8 of the servers go
  dark for the middle half of the run, concentrating every steerable
  client onto the survivors (the overload-protection stress test).
* ``blackout`` — every server and the backhaul go dark for the middle
  third of the run, forcing clients into local execution, then everything
  restarts with cold caches.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.faults.schedule import (
    _SEED_MASK,
    Degradation,
    FaultSchedule,
    ServerCrash,
    Window,
)

#: Builder signature: (sorted server ids, seed, horizon) -> schedule.
Builder = Callable[[tuple[int, ...], int, int], FaultSchedule]

#: Stream salts for profile-generated crash patterns.
_CHURN_SALT = 0xC0
_FLASH_CROWD_SALT = 0xFC


@dataclass(frozen=True)
class FaultProfile:
    """A named, parameter-free recipe for building fault schedules."""

    name: str
    description: str
    builder: Builder

    def build(
        self, server_ids: Sequence[int], seed: int, horizon: int
    ) -> FaultSchedule:
        """Instantiate the profile for one run.

        ``server_ids`` are the run's allocated edge servers, ``seed`` is
        the run seed, and ``horizon`` bounds the generated windows (the
        number of replayed intervals).
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        ids = tuple(sorted({int(s) for s in server_ids}))
        return self.builder(ids, int(seed), int(horizon))


def _build_none(
    server_ids: tuple[int, ...], seed: int, horizon: int
) -> FaultSchedule:
    return FaultSchedule(seed=seed)


def _build_churn(
    server_ids: tuple[int, ...], seed: int, horizon: int
) -> FaultSchedule:
    crashes: list[ServerCrash] = []
    for server_id in server_ids:
        rng = np.random.default_rng((seed & _SEED_MASK, _CHURN_SALT, server_id))
        interval = 0
        while interval < horizon:
            if rng.random() < 0.10:
                downtime = int(rng.integers(2, 5))
                crashes.append(
                    ServerCrash(server_id, Window(interval, interval + downtime))
                )
                interval += downtime
            else:
                interval += 1
    return FaultSchedule(seed=seed, server_crashes=crashes)


def _build_flaky_backhaul(
    server_ids: tuple[int, ...], seed: int, horizon: int
) -> FaultSchedule:
    return FaultSchedule(
        seed=seed,
        backhaul_degradations=(Degradation(Window(0, horizon), 0.5),),
        upload_drop_rate=0.15,
        migration_drop_rate=0.25,
    )


def _build_flash_crowd(
    server_ids: tuple[int, ...], seed: int, horizon: int
) -> FaultSchedule:
    """All but ~1/8 of the servers go dark for the middle half of the run.

    The survivors (a seed-deterministic sample) absorb every client the
    overload layer can steer to them — the admission-control stress test.
    Without overload protection enabled, orphaned clients simply degrade
    to local execution as under ``blackout``.
    """
    if len(server_ids) <= 1:
        return FaultSchedule(seed=seed)
    rng = np.random.default_rng(
        (seed & _SEED_MASK, _FLASH_CROWD_SALT, len(server_ids))
    )
    keep = max(1, len(server_ids) // 8)
    survivors = set(
        int(s) for s in rng.choice(np.array(server_ids), size=keep, replace=False)
    )
    start = max(1, horizon // 4)
    end = max(start + 1, (3 * horizon) // 4)
    window = Window(start, end)
    return FaultSchedule(
        seed=seed,
        server_crashes=tuple(
            ServerCrash(s, window) for s in server_ids if s not in survivors
        ),
    )


def _build_blackout(
    server_ids: tuple[int, ...], seed: int, horizon: int
) -> FaultSchedule:
    start = max(1, horizon // 3)
    end = max(start + 1, (2 * horizon) // 3)
    window = Window(start, end)
    return FaultSchedule(
        seed=seed,
        server_crashes=tuple(ServerCrash(s, window) for s in server_ids),
        backhaul_outages=(window,),
    )


BUILTIN_PROFILES: dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(
            "none",
            "perfect infrastructure; the fault layer is a strict no-op",
            _build_none,
        ),
        FaultProfile(
            "churn",
            "servers crash (~10%/interval) and restart after 2-4 intervals, "
            "losing their caches",
            _build_churn,
        ),
        FaultProfile(
            "flaky-backhaul",
            "backhaul at half capacity; 25% of migrations and 15% of upload "
            "windows drop",
            _build_flaky_backhaul,
        ),
        FaultProfile(
            "flash-crowd",
            "all but ~1/8 of servers dark for the middle half of the run; "
            "survivors absorb the crowd (pair with overload protection)",
            _build_flash_crowd,
        ),
        FaultProfile(
            "blackout",
            "all servers and the backhaul dark for the middle third of the "
            "run; clients degrade to local execution",
            _build_blackout,
        ),
    )
}


def get_profile(name: str) -> FaultProfile:
    """Look up a built-in profile; raises with the known names otherwise."""
    profile = BUILTIN_PROFILES.get(name)
    if profile is None:
        known = ", ".join(sorted(BUILTIN_PROFILES))
        raise ValueError(f"unknown fault profile {name!r} (known: {known})")
    return profile
