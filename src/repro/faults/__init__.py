"""Fault injection + resilience: deterministic infrastructure misbehaviour.

``repro.faults`` makes failure a first-class simulation scenario: a
:class:`FaultSchedule` decides — purely from the run seed — when edge
servers crash and restart, when the backhaul degrades or goes dark, and
which uploads/migrations drop in flight.  The simulator threads the
schedule through the master, edge servers, and client query loops so the
system *degrades* (local execution, capped-backoff retries, skipped dead
servers) instead of silently assuming success.

The layer is a strict no-op when disabled: a run without a schedule (or
with the ``none`` profile) is byte-identical to a run of a build without
this package.
"""

from __future__ import annotations

from repro.faults.chaos import (
    CHAOS_EXIT_CODE,
    CHAOS_HANG,
    CHAOS_KILL,
    CHAOS_NONE,
    WorkerChaos,
)
from repro.faults.profiles import (
    BUILTIN_PROFILES,
    FaultProfile,
    get_profile,
)
from repro.faults.schedule import (
    DEFAULT_BACKOFF_CAP,
    Degradation,
    FaultSchedule,
    ServerCrash,
    Window,
    backoff_intervals,
)
from repro.telemetry import FaultEvent, Telemetry


def record_fault(
    telemetry: Telemetry,
    interval: int,
    fault: str,
    server_id: int | None = None,
    client_id: int | None = None,
) -> None:
    """Record one injected fault into a run's registry and trace.

    Every injection site uses this helper, so the labelled
    ``fault.injected`` counter always tallies exactly the ``fault``
    events in the trace (a property the fault test suite checks).
    """
    telemetry.registry.counter("fault.injected", {"kind": fault}).inc()
    telemetry.trace.record(
        FaultEvent(
            interval=interval, fault=fault,
            server_id=server_id, client_id=client_id,
        )
    )


__all__ = [
    "BUILTIN_PROFILES",
    "CHAOS_EXIT_CODE",
    "CHAOS_HANG",
    "CHAOS_KILL",
    "CHAOS_NONE",
    "DEFAULT_BACKOFF_CAP",
    "Degradation",
    "FaultProfile",
    "FaultSchedule",
    "ServerCrash",
    "Window",
    "WorkerChaos",
    "backoff_intervals",
    "get_profile",
    "record_fault",
]
