"""Worker-level chaos: seed-deterministic kills and hangs of shard workers.

The fault schedules in :mod:`repro.faults.schedule` misbehave *inside*
the simulated world — servers crash, backhauls go dark.  This module
misbehaves one level up: it kills or hangs the **worker processes** that
run shards of the city-scale simulation, so the shard supervision layer
(:mod:`repro.simulation.supervisor`) can be exercised deterministically
in tests and CI.

The schedule is a pure function of ``(chaos seed, shard index, attempt)``
— no wall clock, no process state — so a chaos run is reproducible and
the headline invariant can be pinned: *a run with injected worker
failures exports the same telemetry bytes as a clean run*, because a
retried shard re-executes with the same deterministic shard seed.

``max_injections_per_shard`` bounds how many attempts of one shard are
sabotaged, so a finite retry budget always wins (``kill_rate=1.0`` with
the default cap of 1 kills every shard's first attempt and lets every
second attempt through — full coverage, zero flakiness).  Shards listed
in ``always_kill`` die on *every* attempt regardless of the cap, which is
how tests and the CI smoke drive a shard into quarantine on purpose.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.faults.schedule import _SEED_MASK

#: Chaos actions for one (shard, attempt) execution.
CHAOS_NONE = "none"
CHAOS_KILL = "kill"
CHAOS_HANG = "hang"

#: Stream salt separating chaos draws from every simulation RNG stream.
_CHAOS_SALT = 0xCA05

#: Exit code of a chaos-killed worker (distinguishable from a real crash
#: in supervisor failure reports).
CHAOS_EXIT_CODE = 57


@dataclass(frozen=True)
class WorkerChaos:
    """A deterministic schedule of worker-process failures.

    ``kill_rate``/``hang_rate`` are per-attempt probabilities drawn from a
    stream keyed by ``(seed, shard index, attempt)``; a *kill* makes the
    worker exit abruptly (``os._exit``, no traceback, simulating a crash
    or OOM kill), a *hang* makes it sleep ``hang_seconds`` so a per-shard
    timeout fires.  Injection stops once ``max_injections_per_shard``
    attempts of a shard have been sabotaged; ``always_kill`` shards are
    exempt from that cap and die on every attempt.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    max_injections_per_shard: int = 1
    hang_seconds: float = 3600.0
    always_kill: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.kill_rate <= 1.0:
            raise ValueError("kill_rate must be in [0, 1]")
        if not 0.0 <= self.hang_rate <= 1.0:
            raise ValueError("hang_rate must be in [0, 1]")
        if self.kill_rate + self.hang_rate > 1.0:
            raise ValueError("kill_rate + hang_rate must not exceed 1")
        if self.max_injections_per_shard < 0:
            raise ValueError("max_injections_per_shard must be >= 0")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        object.__setattr__(
            self,
            "always_kill",
            tuple(sorted({int(s) for s in self.always_kill})),
        )

    @property
    def is_noop(self) -> bool:
        """True when this schedule can never inject anything."""
        if self.always_kill:
            return False
        if self.max_injections_per_shard == 0:
            return True
        return self.kill_rate == 0.0 and self.hang_rate == 0.0

    def _raw_action(self, shard_index: int, attempt: int) -> str:
        """The uncapped draw for one (shard, attempt) execution."""
        if self.kill_rate == 0.0 and self.hang_rate == 0.0:
            return CHAOS_NONE
        rng = np.random.default_rng(
            (self.seed & _SEED_MASK, _CHAOS_SALT, shard_index, attempt)
        )
        u = rng.random()
        if u < self.kill_rate:
            return CHAOS_KILL
        if u < self.kill_rate + self.hang_rate:
            return CHAOS_HANG
        return CHAOS_NONE

    def action(self, shard_index: int, attempt: int) -> str:
        """What happens to attempt ``attempt`` (0-based) of one shard.

        Stateless and deterministic: the injection cap is enforced by
        replaying the draws of the earlier attempts, so any process can
        evaluate the schedule without shared state.
        """
        if shard_index < 0 or attempt < 0:
            raise ValueError("shard_index and attempt must be >= 0")
        if shard_index in self.always_kill:
            return CHAOS_KILL
        injected_before = sum(
            1
            for earlier in range(attempt)
            if self._raw_action(shard_index, earlier) != CHAOS_NONE
        )
        if injected_before >= self.max_injections_per_shard:
            return CHAOS_NONE
        return self._raw_action(shard_index, attempt)

    def inject(self, shard_index: int, attempt: int) -> None:
        """Worker-side hook: act out the schedule for this execution.

        Must only ever run inside a disposable worker process — a kill is
        ``os._exit`` and takes the whole interpreter with it.
        """
        action = self.action(shard_index, attempt)
        if action == CHAOS_KILL:
            os._exit(CHAOS_EXIT_CODE)
        if action == CHAOS_HANG:
            time.sleep(self.hang_seconds)
