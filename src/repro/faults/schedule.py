"""Deterministic fault schedules: what breaks, when, and for how long.

A :class:`FaultSchedule` is a *pure description* of a run's infrastructure
misbehaviour, fixed before the simulation starts:

* **server crashes** — an edge server is down over a half-open interval
  window; every cached model on it is lost at the crash, and the server
  comes back with a cold cache at the window's end (restart);
* **backhaul outages** — proactive migration is impossible over a window;
* **backhaul / wireless degradation** — a multiplicative capacity factor
  over a window (fractional byte budgets for migrations, slower client
  uploads);
* **probabilistic drops** — individual uploads or migrations fail with a
  fixed rate.

Determinism is the design constraint: every query the schedule answers is
a pure function of ``(seed, arguments)``.  Drop decisions hash the seed
together with the involved ids and the interval into a private RNG stream,
so they are reproducible *and* independent of the order in which the
simulator asks — same seed, same profile, same faults, byte-identical
telemetry.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

#: SeedSequence entries must be non-negative; fold user seeds into 32 bits.
_SEED_MASK = 0xFFFFFFFF
#: Stream salts keeping upload and migration drop decisions independent.
_UPLOAD_SALT = 0xF1
_MIGRATION_SALT = 0xF2

#: Default cap (in intervals) on client upload-retry backoff.
DEFAULT_BACKOFF_CAP = 8


def backoff_intervals(failures: int, cap: int = DEFAULT_BACKOFF_CAP) -> int:
    """Capped exponential backoff: 1, 2, 4, ... up to ``cap`` intervals.

    ``failures`` is the number of consecutive failures so far (>= 1); the
    returned delay is how many intervals the client waits before retrying.
    """
    if failures < 1:
        raise ValueError("failures must be >= 1")
    if cap < 1:
        raise ValueError("cap must be >= 1")
    exponent = min(failures - 1, cap.bit_length())
    return min(cap, 2 ** exponent)


@dataclass(frozen=True)
class Window:
    """Half-open range ``[start, end)`` of simulation intervals."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("window start must be non-negative")
        if self.end <= self.start:
            raise ValueError("window end must be after its start")

    def contains(self, interval: int) -> bool:
        return self.start <= interval < self.end


@dataclass(frozen=True)
class ServerCrash:
    """One edge server is down during ``window``.

    The crash happens at ``window.start`` (cached models are lost and the
    server's clients are orphaned); the restart at ``window.end`` brings
    the server back with a cold cache.
    """

    server_id: int
    window: Window

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValueError("server_id must be non-negative")


@dataclass(frozen=True)
class Degradation:
    """Capacity scaled to ``factor`` of nominal during ``window``."""

    window: Window
    factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")


class FaultSchedule:
    """Immutable, seed-deterministic answers to "is X broken at step t?"."""

    def __init__(
        self,
        seed: int = 0,
        server_crashes: Iterable[ServerCrash] = (),
        backhaul_outages: Iterable[Window] = (),
        backhaul_degradations: Iterable[Degradation] = (),
        uplink_degradations: Iterable[Degradation] = (),
        upload_drop_rate: float = 0.0,
        migration_drop_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= upload_drop_rate <= 1.0:
            raise ValueError("upload_drop_rate must be in [0, 1]")
        if not 0.0 <= migration_drop_rate <= 1.0:
            raise ValueError("migration_drop_rate must be in [0, 1]")
        self.seed = int(seed) & _SEED_MASK
        self.server_crashes = tuple(server_crashes)
        self.backhaul_outages = tuple(backhaul_outages)
        self.backhaul_degradations = tuple(backhaul_degradations)
        self.uplink_degradations = tuple(uplink_degradations)
        self.upload_drop_rate = float(upload_drop_rate)
        self.migration_drop_rate = float(migration_drop_rate)
        self._down: dict[int, list[Window]] = {}
        for crash in self.server_crashes:
            self._down.setdefault(crash.server_id, []).append(crash.window)
        for server_id, windows in self._down.items():
            windows.sort(key=lambda w: w.start)
            for left, right in zip(windows, windows[1:]):
                if right.start < left.end:
                    raise ValueError(
                        f"overlapping crash windows for server {server_id}"
                    )

    # ------------------------------------------------------------------
    # Server availability
    # ------------------------------------------------------------------
    def server_down(self, server_id: int, interval: int) -> bool:
        windows = self._down.get(server_id)
        if not windows:
            return False
        return any(w.contains(interval) for w in windows)

    def crash_starts(self, interval: int) -> tuple[int, ...]:
        """Ids of servers that crash exactly at ``interval`` (sorted)."""
        return tuple(sorted(
            server_id
            for server_id, windows in self._down.items()
            if any(w.start == interval for w in windows)
        ))

    def restarts(self, interval: int) -> tuple[int, ...]:
        """Ids of servers that come back up exactly at ``interval``."""
        return tuple(sorted(
            server_id
            for server_id, windows in self._down.items()
            if any(w.end == interval for w in windows)
        ))

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def backhaul_available(self, interval: int) -> bool:
        return not any(w.contains(interval) for w in self.backhaul_outages)

    def backhaul_factor(self, interval: int) -> float:
        """Backhaul capacity share at ``interval`` (1.0 = nominal)."""
        factors = [
            d.factor for d in self.backhaul_degradations
            if d.window.contains(interval)
        ]
        return min(factors) if factors else 1.0

    def uplink_factor(self, interval: int) -> float:
        """Wireless uplink capacity share at ``interval`` (1.0 = nominal)."""
        factors = [
            d.factor for d in self.uplink_degradations
            if d.window.contains(interval)
        ]
        return min(factors) if factors else 1.0

    # ------------------------------------------------------------------
    # Probabilistic drops (pure functions of seed + ids + interval)
    # ------------------------------------------------------------------
    def _unit(self, salt: int, *keys: int) -> float:
        return float(np.random.default_rng((self.seed, salt, *keys)).random())

    def upload_dropped(self, client_id: int, interval: int) -> bool:
        """Does this client's upload window fail at ``interval``?"""
        if self.upload_drop_rate <= 0.0:
            return False
        return self._unit(_UPLOAD_SALT, client_id, interval) < self.upload_drop_rate

    def migration_dropped(
        self, client_id: int, source: int, target: int, interval: int
    ) -> bool:
        """Does this proactive transfer fail in flight?"""
        if self.migration_drop_rate <= 0.0:
            return False
        return (
            self._unit(_MIGRATION_SALT, client_id, source, target, interval)
            < self.migration_drop_rate
        )

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        """True when the schedule can never inject anything."""
        return (
            not self.server_crashes
            and not self.backhaul_outages
            and not self.backhaul_degradations
            and not self.uplink_degradations
            and self.upload_drop_rate == 0.0
            and self.migration_drop_rate == 0.0
        )
