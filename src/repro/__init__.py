"""PerDNN reproduction: offloading DNN computations to pervasive edge servers.

Reproduction of Jeong et al., ICDCS 2020.  The top-level namespace
re-exports the objects a downstream user typically needs; see the
subpackages for the full API and ``docs/architecture.md`` for the system
overview.

Typical usage::

    from repro import (
        PerDNNConfig, build_model, ExecutionProfile,
        odroid_xu4, titan_xp_server, DNNPartitioner,
    )

    config = PerDNNConfig()
    profile = ExecutionProfile.build(
        build_model("inception"), odroid_xu4(), titan_xp_server()
    )
    partitioner = DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )
    plan = partitioner.partition(server_slowdown=1.0).plan
"""

from repro.core.config import PerDNNConfig
from repro.core.master import MasterServer, MigrationPolicy
from repro.dnn.graph import DNNGraph
from repro.dnn.layer import Layer, LayerKind, TensorShape
from repro.dnn.models import build_model
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.hardware import odroid_xu4, titan_xp_server
from repro.profiling.profiler import ExecutionProfile
from repro.simulation.large_scale import SimulationSettings, run_large_scale
from repro.simulation.single_client import (
    simulate_handoff,
    upload_window_throughput,
)

__version__ = "1.0.0"

__all__ = [
    "PerDNNConfig",
    "MasterServer",
    "MigrationPolicy",
    "DNNGraph",
    "Layer",
    "LayerKind",
    "TensorShape",
    "build_model",
    "DNNPartitioner",
    "odroid_xu4",
    "titan_xp_server",
    "ExecutionProfile",
    "SimulationSettings",
    "run_large_scale",
    "simulate_handoff",
    "upload_window_throughput",
    "__version__",
]
