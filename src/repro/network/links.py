"""Link speed definitions."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpeed:
    """Directional speeds of a client's access link, in bits per second.

    ``downlink`` is server -> client, ``uplink`` is client -> server,
    following the paper's convention (50 Mbps down / 35 Mbps up Wi-Fi).
    """

    downlink_bps: float
    uplink_bps: float

    def __post_init__(self) -> None:
        if self.downlink_bps <= 0 or self.uplink_bps <= 0:
            raise ValueError("link speeds must be positive")

    @classmethod
    def from_mbps(cls, downlink: float, uplink: float) -> "NetworkSpeed":
        return cls(downlink_bps=downlink * 1e6, uplink_bps=uplink * 1e6)

    def degraded(self, factor: float) -> "NetworkSpeed":
        """The same link at ``factor`` of its nominal capacity.

        Used by the fault layer's wireless-degradation windows; ``factor``
        must be in (0, 1] so the result stays a valid link.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        if factor == 1.0:
            return self
        return NetworkSpeed(
            downlink_bps=self.downlink_bps * factor,
            uplink_bps=self.uplink_bps * factor,
        )


# The paper's lab Wi-Fi: 50 Mbps download, 35 Mbps upload (§4, §4.B.1).
LAB_WIFI = NetworkSpeed.from_mbps(downlink=50.0, uplink=35.0)
