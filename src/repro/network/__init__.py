"""Network substrate: wireless access links, backhaul, traffic metering.

The paper's environment (§3.A, §4.B.1): clients reach their current edge
server over Wi-Fi (50 Mbps down / 35 Mbps up, the authors' lab averages);
edge servers exchange DNN layers over a *backhaul network* whose per-server
per-interval uplink/downlink traffic is the cost metric of §4.B.4.
"""

from repro.network.links import NetworkSpeed, LAB_WIFI
from repro.network.transfer import transfer_seconds, transferable_bytes
from repro.network.traffic import TrafficMeter, TrafficSummary

__all__ = [
    "NetworkSpeed",
    "LAB_WIFI",
    "transfer_seconds",
    "transferable_bytes",
    "TrafficMeter",
    "TrafficSummary",
]
