"""Per-server backhaul traffic metering (§4.B.4).

For every (server, time interval) the meter accumulates uplink bytes (data
the server sent to other servers) and downlink bytes (data it received).
The summary converts interval byte counts into the Mbps figures of §4.B.4
and Fig 10: peak per-server traffic and the share of servers that stay
under a given link capacity.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate view of one direction's per-server-interval traffic."""

    peak_mbps: float
    peak_server: int | None
    peak_interval: int | None
    total_bytes: float
    server_peaks_mbps: dict[int, float]

    def fraction_of_servers_under(self, mbps: float) -> float:
        """Share of traffic-carrying servers whose peak stays under ``mbps``."""
        if not self.server_peaks_mbps:
            return 1.0
        under = sum(1 for peak in self.server_peaks_mbps.values() if peak < mbps)
        return under / len(self.server_peaks_mbps)

    def top_servers(self, count: int) -> list[int]:
        """Server ids with the highest peak traffic, descending."""
        ranked = sorted(
            self.server_peaks_mbps, key=self.server_peaks_mbps.get, reverse=True
        )
        return ranked[:count]


class TrafficFold:
    """Streaming fold of per-shard summaries into one region-wide view.

    Incremental form of :func:`merge_summaries`: shards are
    :meth:`add`-ed one at a time and only the *merged* state is retained —
    the combined per-server peak table (which the final summary contains
    anyway), one peak candidate per shard, and one running total per shard
    (kept as a list so the final total is the same exact :func:`math.fsum`
    the one-shot merge computes).  Peak memory is therefore the merged
    footprint plus a single shard's summary, independent of shard count.

    Each shard pairs its summary with that shard's server-id offset
    (shards number their servers from 0; the offset rebases them into the
    merged id space, so per-server keys are disjoint).  The result is
    order-independent: totals use exact summation, and the global peak is
    the maximum shard peak with ties broken by the smallest rebased
    ``(server, interval)``.
    """

    def __init__(self) -> None:
        self._server_peaks: dict[int, float] = {}
        self._candidates: list[tuple[float, int, int]] = []
        self._totals: list[float] = []

    def add(self, summary: TrafficSummary, offset: int) -> None:
        """Fold one shard's summary in, rebasing its server ids."""
        for server_id, peak in summary.server_peaks_mbps.items():
            rebased = server_id + offset
            if rebased in self._server_peaks:
                raise ValueError(
                    f"server id collision at {rebased}: offsets must make "
                    "shard id ranges disjoint"
                )
            self._server_peaks[rebased] = peak
        if summary.peak_server is not None:
            self._candidates.append(
                (
                    summary.peak_mbps,
                    summary.peak_server + offset,
                    summary.peak_interval,
                )
            )
        self._totals.append(summary.total_bytes)

    def summary(self) -> TrafficSummary:
        """The merged summary over everything folded so far."""
        total = math.fsum(self._totals)
        peak_mbps, peak_server, peak_interval = 0.0, None, None
        if self._candidates:
            best = max(candidate[0] for candidate in self._candidates)
            peak_mbps, peak_server, peak_interval = min(
                (c for c in self._candidates if c[0] == best),
                key=lambda c: (c[1], c[2]),
            )
        return TrafficSummary(
            peak_mbps=peak_mbps,
            peak_server=peak_server,
            peak_interval=peak_interval,
            total_bytes=total,
            server_peaks_mbps=self._server_peaks,
        )


def merge_summaries(
    parts: Sequence[tuple[TrafficSummary, int]],
) -> TrafficSummary:
    """One-shot :class:`TrafficFold` over ``parts`` (kept for callers that
    already hold every summary in memory)."""
    fold = TrafficFold()
    for summary, offset in parts:
        fold.add(summary, offset)
    return fold.summary()


class TrafficMeter:
    """Accumulates backhaul bytes per (server, interval, direction)."""

    def __init__(
        self,
        interval_seconds: float,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        self.telemetry = telemetry
        self._uplink: dict[tuple[int, int], float] = defaultdict(float)
        self._downlink: dict[tuple[int, int], float] = defaultdict(float)
        # Resolved on first record() so metric creation order is exactly
        # what the per-call lookups produced; record() is hot at city
        # scale (one call per proactive transfer).
        self._transfers_counter = None
        self._bytes_counter = None

    def record(
        self, interval: int, source: int, destination: int, nbytes: float
    ) -> None:
        """One backhaul transfer of ``nbytes`` from ``source`` to ``destination``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if source == destination:
            raise ValueError("source and destination must differ")
        self._uplink[(source, interval)] += nbytes
        self._downlink[(destination, interval)] += nbytes
        if self.telemetry is not None:
            if self._transfers_counter is None:
                self._transfers_counter = self.telemetry.counter(
                    "net.backhaul_transfers"
                )
                self._bytes_counter = self.telemetry.counter(
                    "net.backhaul_bytes"
                )
            self._transfers_counter.inc()
            self._bytes_counter.inc(nbytes)

    def _summarize(self, table: dict[tuple[int, int], float]) -> TrafficSummary:
        peak = 0.0
        peak_server: int | None = None
        peak_interval: int | None = None
        server_peaks: dict[int, float] = defaultdict(float)
        total = 0.0
        for (server, interval), nbytes in table.items():
            mbps = nbytes * 8.0 / self.interval_seconds / 1e6
            total += nbytes
            if mbps > server_peaks[server]:
                server_peaks[server] = mbps
            if mbps > peak:
                peak, peak_server, peak_interval = mbps, server, interval
        return TrafficSummary(
            peak_mbps=peak,
            peak_server=peak_server,
            peak_interval=peak_interval,
            total_bytes=total,
            server_peaks_mbps=dict(server_peaks),
        )

    def uplink_summary(self) -> TrafficSummary:
        return self._summarize(self._uplink)

    def downlink_summary(self) -> TrafficSummary:
        return self._summarize(self._downlink)

    def uplink_bytes(self, server: int, interval: int) -> float:
        return self._uplink.get((server, interval), 0.0)

    def downlink_bytes(self, server: int, interval: int) -> float:
        return self._downlink.get((server, interval), 0.0)
