"""Per-server backhaul traffic metering (§4.B.4).

For every (server, time interval) the meter accumulates uplink bytes (data
the server sent to other servers) and downlink bytes (data it received).
The summary converts interval byte counts into the Mbps figures of §4.B.4
and Fig 10: peak per-server traffic and the share of servers that stay
under a given link capacity.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate view of one direction's per-server-interval traffic."""

    peak_mbps: float
    peak_server: int | None
    peak_interval: int | None
    total_bytes: float
    server_peaks_mbps: dict[int, float]

    def fraction_of_servers_under(self, mbps: float) -> float:
        """Share of traffic-carrying servers whose peak stays under ``mbps``."""
        if not self.server_peaks_mbps:
            return 1.0
        under = sum(1 for peak in self.server_peaks_mbps.values() if peak < mbps)
        return under / len(self.server_peaks_mbps)

    def top_servers(self, count: int) -> list[int]:
        """Server ids with the highest peak traffic, descending."""
        ranked = sorted(
            self.server_peaks_mbps, key=self.server_peaks_mbps.get, reverse=True
        )
        return ranked[:count]


def merge_summaries(
    parts: Sequence[tuple[TrafficSummary, int]],
) -> TrafficSummary:
    """Combine per-shard summaries into one region-wide view.

    Each entry pairs a shard's summary with that shard's server-id offset
    (shards number their servers from 0; the offset rebases them into the
    merged id space, so per-server keys are disjoint).  The result is
    order-independent: totals use exact summation, and the global peak is
    the maximum shard peak with ties broken by the smallest rebased
    ``(server, interval)``.
    """
    server_peaks: dict[int, float] = {}
    candidates: list[tuple[float, int, int]] = []
    for summary, offset in parts:
        for server_id, peak in summary.server_peaks_mbps.items():
            rebased = server_id + offset
            if rebased in server_peaks:
                raise ValueError(
                    f"server id collision at {rebased}: offsets must make "
                    "shard id ranges disjoint"
                )
            server_peaks[rebased] = peak
        if summary.peak_server is not None:
            candidates.append(
                (
                    summary.peak_mbps,
                    summary.peak_server + offset,
                    summary.peak_interval,
                )
            )
    total = math.fsum(summary.total_bytes for summary, _ in parts)
    peak_mbps, peak_server, peak_interval = 0.0, None, None
    if candidates:
        best = max(candidate[0] for candidate in candidates)
        peak_mbps, peak_server, peak_interval = min(
            (c for c in candidates if c[0] == best),
            key=lambda c: (c[1], c[2]),
        )
    return TrafficSummary(
        peak_mbps=peak_mbps,
        peak_server=peak_server,
        peak_interval=peak_interval,
        total_bytes=total,
        server_peaks_mbps=server_peaks,
    )


class TrafficMeter:
    """Accumulates backhaul bytes per (server, interval, direction)."""

    def __init__(
        self,
        interval_seconds: float,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        self.telemetry = telemetry
        self._uplink: dict[tuple[int, int], float] = defaultdict(float)
        self._downlink: dict[tuple[int, int], float] = defaultdict(float)

    def record(
        self, interval: int, source: int, destination: int, nbytes: float
    ) -> None:
        """One backhaul transfer of ``nbytes`` from ``source`` to ``destination``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if source == destination:
            raise ValueError("source and destination must differ")
        self._uplink[(source, interval)] += nbytes
        self._downlink[(destination, interval)] += nbytes
        if self.telemetry is not None:
            self.telemetry.counter("net.backhaul_transfers").inc()
            self.telemetry.counter("net.backhaul_bytes").inc(nbytes)

    def _summarize(self, table: dict[tuple[int, int], float]) -> TrafficSummary:
        peak = 0.0
        peak_server: int | None = None
        peak_interval: int | None = None
        server_peaks: dict[int, float] = defaultdict(float)
        total = 0.0
        for (server, interval), nbytes in table.items():
            mbps = nbytes * 8.0 / self.interval_seconds / 1e6
            total += nbytes
            if mbps > server_peaks[server]:
                server_peaks[server] = mbps
            if mbps > peak:
                peak, peak_server, peak_interval = mbps, server, interval
        return TrafficSummary(
            peak_mbps=peak,
            peak_server=peak_server,
            peak_interval=peak_interval,
            total_bytes=total,
            server_peaks_mbps=dict(server_peaks),
        )

    def uplink_summary(self) -> TrafficSummary:
        return self._summarize(self._uplink)

    def downlink_summary(self) -> TrafficSummary:
        return self._summarize(self._downlink)

    def uplink_bytes(self, server: int, interval: int) -> float:
        return self._uplink.get((server, interval), 0.0)

    def downlink_bytes(self, server: int, interval: int) -> float:
        return self._downlink.get((server, interval), 0.0)
