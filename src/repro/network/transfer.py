"""Transfer-time arithmetic."""

from __future__ import annotations


def transfer_seconds(nbytes: float, bps: float) -> float:
    """Time to move ``nbytes`` over a link of ``bps`` bits per second."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if bps <= 0:
        raise ValueError("bps must be positive")
    return nbytes * 8.0 / bps


def transferable_bytes(seconds: float, bps: float) -> float:
    """Bytes movable in ``seconds`` over a link of ``bps`` bits per second."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    if bps <= 0:
        raise ValueError("bps must be positive")
    return seconds * bps / 8.0
