"""Overload-protection knobs.

One frozen config object describes everything the admission controller,
the client-side circuit breakers, and the degradation path need.  The
subsystem is enabled by *presence*: ``SimulationSettings.overload=None``
keeps every serving path byte-identical to a build without this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class SheddingPolicy(str, Enum):
    """What a server does with work it cannot admit.

    * ``reject`` — the query window runs on the client (load shedding);
    * ``redirect`` — the master steers the window to the least-loaded
      reachable live server with spare capacity (local when none exists);
    * ``degrade`` — the window still runs on the home server, but under a
      plan re-partitioned at an inflated contention estimate, shifting
      layers client-ward instead of queueing.
    """

    REJECT = "reject"
    REDIRECT = "redirect"
    DEGRADE = "degrade"


@dataclass(frozen=True)
class OverloadConfig:
    """Admission control, circuit breaking, and degradation parameters."""

    policy: SheddingPolicy = SheddingPolicy.REDIRECT
    #: Offload slots one server grants per simulation interval (the bound
    #: of its GPU work queue).
    queue_capacity: int = 8
    #: GPU saturation (busy fraction, [0, 1]) above which the effective
    #: capacity halves — the contention model's signal feeding admission.
    saturation_threshold: float = 0.85
    #: Seconds an admitted window waits per request already queued ahead
    #: of it (the modelled GPU service quantum).
    service_quantum_seconds: float = 0.05
    #: Slowdown multiplier for contention-adaptive degraded plans.
    degrade_inflation: float = 2.0
    #: How far (metres) a redirected client may reach for another server.
    redirect_radius_m: float = 500.0
    #: Consecutive rejections before a client's breaker opens.
    breaker_failure_threshold: int = 3
    #: Intervals an open breaker waits before a half-open probe.
    breaker_open_intervals: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", SheddingPolicy(self.policy))
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise ValueError("saturation_threshold must be in (0, 1]")
        if self.service_quantum_seconds < 0:
            raise ValueError("service_quantum_seconds must be non-negative")
        if self.degrade_inflation < 1.0:
            raise ValueError("degrade_inflation must be >= 1")
        if self.redirect_radius_m < 0:
            raise ValueError("redirect_radius_m must be non-negative")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_open_intervals < 1:
            raise ValueError("breaker_open_intervals must be >= 1")
