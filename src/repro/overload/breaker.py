"""Client-side circuit breaker: closed → open → half-open.

Each mobile client keeps one breaker per edge server.  Consecutive
rejections (or timeouts, in a real deployment) trip the breaker open, at
which point the client stops asking that server for admission and falls
back to local or neighbour execution.  After a cooldown the breaker lets
exactly one *probe* request through (half-open); a successful admission
closes it, another rejection re-opens it with a fresh cooldown.

The machine is purely interval-driven — no wall clock — so breaker
behaviour is deterministic under a fixed seed.
"""

from __future__ import annotations

from enum import Enum


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """One client's admission gate for one server."""

    def __init__(
        self, failure_threshold: int = 3, open_intervals: int = 4
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if open_intervals < 1:
            raise ValueError("open_intervals must be >= 1")
        self.failure_threshold = failure_threshold
        self.open_intervals = open_intervals
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at: int | None = None

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allows(self, interval: int) -> bool:
        """May the client request admission at ``interval``?

        While open, returns False until the cooldown elapses; the call
        that finds the cooldown over moves the breaker to half-open and
        grants the probe.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            assert self._opened_at is not None
            if interval >= self._opened_at + self.open_intervals:
                self._state = BreakerState.HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: the probe is in flight

    def record_success(self, interval: int) -> None:
        """An admission went through: reset and close."""
        self._failures = 0
        self._opened_at = None
        self._state = BreakerState.CLOSED

    def record_failure(self, interval: int) -> None:
        """A rejection: count it; trip open past the threshold, and
        re-open immediately from a failed half-open probe."""
        self._failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self._failures >= self.failure_threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = interval
