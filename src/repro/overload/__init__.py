"""Overload protection: admission control, circuit breakers, degradation.

PerDNN's edge GPUs are shared and crowded; this package keeps a crowd
from turning into an outage.  Three cooperating mechanisms:

* **admission control** — each server grants a bounded number of offload
  slots per interval (fewer when its GPU saturation signal crosses a
  threshold); excess requests are shed under a deterministic
  :class:`SheddingPolicy` (``reject`` → local execution, ``redirect`` →
  least-loaded reachable server, ``degrade`` → contention-adaptive
  re-partitioning that shifts layers client-ward);
* **circuit breakers** — clients track consecutive rejections per server
  and stop hammering saturated ones (closed → open → half-open probes);
* **load-aware redirection** — the master folds queue depth into server
  selection when steering shed or orphaned clients.

Like the fault layer, the subsystem is a strict no-op when disabled:
``SimulationSettings.overload=None`` leaves same-seed telemetry
snapshots byte-identical.
"""

from __future__ import annotations

from repro.overload.admission import (
    QUEUE_WAIT_BUCKETS,
    AdmissionController,
    AdmissionDecision,
)
from repro.overload.breaker import BreakerState, CircuitBreaker
from repro.overload.config import OverloadConfig, SheddingPolicy
from repro.telemetry import BreakerEvent, Telemetry


def record_breaker_transition(
    telemetry: Telemetry,
    interval: int,
    client_id: int,
    server_id: int,
    before: BreakerState,
    after: BreakerState,
) -> None:
    """Record one breaker state change (no-op when the state held).

    Every transition site uses this helper, so the labelled
    ``overload.breaker_transitions`` counter always tallies exactly the
    ``breaker`` events in the trace.
    """
    if before is after:
        return
    telemetry.registry.counter(
        "overload.breaker_transitions", {"to": after.value}
    ).inc()
    telemetry.trace.record(
        BreakerEvent(
            interval=interval,
            client_id=client_id,
            server_id=server_id,
            from_state=before.value,
            to_state=after.value,
        )
    )


__all__ = [
    "QUEUE_WAIT_BUCKETS",
    "AdmissionController",
    "AdmissionDecision",
    "BreakerState",
    "CircuitBreaker",
    "OverloadConfig",
    "SheddingPolicy",
    "record_breaker_transition",
]
