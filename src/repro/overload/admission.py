"""Per-server admission control: bounded GPU work queues.

Every simulation interval each edge server grants at most
``queue_capacity`` offload slots (fewer when its GPU saturation crosses
the threshold — the contention model's busy fraction is the signal the
paper's master already derives from pinged nvml statistics).  Requests
are processed in deterministic client order; a request past the bound is
*shed* and the run's :class:`~repro.overload.config.SheddingPolicy`
decides what happens to it.

Admitted requests carry a modelled queue wait — ``service quantum ×
requests already queued ahead`` — which the query loop adds before the
window's first query and records into the ``overload.queue_wait_seconds``
histogram (the p99 surfaces in ``LargeScaleResult``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.overload.config import OverloadConfig
from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.edge_server import EdgeServer

#: Bucket bounds (seconds) for the queue-wait histogram; the overflow
#: bucket past 6.4 s is effectively "longer than a whole query window".
QUEUE_WAIT_BUCKETS: tuple[float, ...] = (
    0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4,
)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission request."""

    admitted: bool
    queue_depth: int  # requests already admitted when this one arrived
    capacity: int  # the server's effective capacity this interval
    queue_wait: float  # seconds the admitted request waits (0.0 if shed)


class AdmissionController:
    """Bounded per-interval work queues for every edge server.

    Queue state is rebuilt lazily each interval: the first request a
    server sees samples its (deterministic, noise-free) GPU saturation
    and fixes the interval's effective capacity.
    """

    def __init__(
        self, config: OverloadConfig, telemetry: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self._interval = 0
        # server_id -> [admitted_depth, effective_capacity]
        self._queues: dict[int, list[int]] = {}

    def begin_interval(self, interval: int) -> None:
        """Drop every queue; capacities are re-derived on first touch."""
        self._interval = interval
        self._queues.clear()

    def effective_capacity(self, saturation: float) -> int:
        """This interval's slot bound for a server at ``saturation``.

        A saturated GPU (busy fraction at or past the threshold) halves
        its advertised capacity — backpressure before the queue is even
        full.
        """
        capacity = self.config.queue_capacity
        if saturation >= self.config.saturation_threshold:
            capacity = max(1, capacity // 2)
        return capacity

    def _queue(self, server: "EdgeServer") -> list[int]:
        queue = self._queues.get(server.server_id)
        if queue is None:
            queue = [0, self.effective_capacity(server.saturation())]
            self._queues[server.server_id] = queue
        return queue

    def depth_of(self, server_id: int) -> int:
        """Admitted requests queued at a server this interval (0 if none)."""
        queue = self._queues.get(server_id)
        return queue[0] if queue is not None else 0

    def capacity_of(self, server: "EdgeServer") -> int:
        return self._queue(server)[1]

    def has_capacity(self, server: "EdgeServer") -> bool:
        depth, capacity = self._queue(server)
        return depth < capacity

    def try_admit(self, server: "EdgeServer") -> AdmissionDecision:
        """Request one offload slot; deterministic in request order."""
        queue = self._queue(server)
        depth, capacity = queue
        if depth >= capacity:
            return AdmissionDecision(
                admitted=False, queue_depth=depth, capacity=capacity,
                queue_wait=0.0,
            )
        queue[0] = depth + 1
        return AdmissionDecision(
            admitted=True, queue_depth=depth, capacity=capacity,
            queue_wait=depth * self.config.service_quantum_seconds,
        )

    def export_gauges(self) -> None:
        """Publish per-server queue-depth gauges for this interval."""
        if self.telemetry is None:
            return
        for server_id, (depth, _) in sorted(self._queues.items()):
            self.telemetry.gauge(
                "overload.queue_depth", {"server": str(server_id)}
            ).set(depth)
