"""Device specifications for the analytic latency model.

Two presets mirror the paper's testbed:

* :func:`odroid_xu4` — the mobile client (ARM big.LITTLE, Caffe on CPU).
* :func:`titan_xp_server` — the edge server (i7-7700 + Titan Xp GPU).

Effective throughput numbers are *calibrated*, not datasheet peaks: they are
chosen so that whole-model latencies land on the magnitudes the paper
reports (local Inception ~0.5 s on the client, a fully-offloaded query
~0.17 s end to end, Table II query counts).  Depthwise convolutions get a
much lower efficiency on both devices, matching Caffe's notoriously slow
grouped-conv path — which is why MobileNet is not dramatically faster than
its FLOP count suggests (visible in the paper's Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dnn.layer import LayerKind


@dataclass(frozen=True)
class DeviceSpec:
    """Compute/memory capabilities of one execution device.

    ``compute_flops`` is the effective (not peak) arithmetic rate for dense
    conv/fc work; ``kind_efficiency`` scales it per layer kind;
    ``grouped_conv_efficiency`` replaces the conv efficiency when a conv has
    ``groups > 1``.  ``memory_bandwidth`` bounds memory-dominated layers and
    ``layer_overhead`` models per-layer framework/kernel-launch cost.
    """

    name: str
    compute_flops: float  # effective FLOP/s for dense conv
    memory_bandwidth: float  # bytes/s usable for activations + weights
    layer_overhead: float  # seconds of fixed cost per layer
    is_gpu: bool = False
    kind_efficiency: dict[LayerKind, float] = field(default_factory=dict)
    grouped_conv_efficiency: float = 0.10

    def effective_flops(self, kind: LayerKind, grouped: bool = False) -> float:
        if kind is LayerKind.CONV and grouped:
            return self.compute_flops * self.grouped_conv_efficiency
        return self.compute_flops * self.kind_efficiency.get(kind, 1.0)


def odroid_xu4() -> DeviceSpec:
    """The mobile client: ODROID XU4, Caffe on the ARM CPU."""
    return DeviceSpec(
        name="odroid-xu4",
        compute_flops=6.5e9,
        memory_bandwidth=3.0e9,
        layer_overhead=60e-6,
        is_gpu=False,
        kind_efficiency={
            LayerKind.CONV: 1.0,
            LayerKind.FC: 0.6,
            LayerKind.POOL_MAX: 0.4,
            LayerKind.POOL_AVG: 0.4,
        },
        grouped_conv_efficiency=0.12,
    )


def titan_xp_server() -> DeviceSpec:
    """The edge server GPU: Titan Xp, single-image Caffe inference."""
    return DeviceSpec(
        name="titan-xp",
        compute_flops=2.2e12,
        memory_bandwidth=300e9,
        layer_overhead=25e-6,
        is_gpu=True,
        kind_efficiency={
            LayerKind.CONV: 1.0,
            LayerKind.FC: 0.5,
            LayerKind.POOL_MAX: 0.5,
            LayerKind.POOL_AVG: 0.5,
        },
        grouped_conv_efficiency=0.05,
    )
