"""Client-side energy model (the paper's §I motivation, quantified).

The paper motivates offloading with "app performance and energy
consumption of wearable glasses" but does not evaluate energy.  This
extension provides a standard mobile energy model so the trade-off can be
quantified per plan:

    E(query) = P_compute * t_client_compute
             + P_tx * t_uplink + P_rx * t_downlink
             + P_idle * t_waiting_for_server

Defaults approximate an ODROID-XU4-class board: ~4.5 W under CPU load,
~1.3/1.0 W Wi-Fi transmit/receive amplifiers, ~0.7 W idle-waiting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.shortest_path import PartitionPlan


@dataclass(frozen=True)
class EnergyModel:
    """Client power draw per activity, in watts."""

    compute_watts: float = 4.5
    transmit_watts: float = 1.3
    receive_watts: float = 1.0
    idle_watts: float = 0.7

    def __post_init__(self) -> None:
        for value in (
            self.compute_watts, self.transmit_watts,
            self.receive_watts, self.idle_watts,
        ):
            if value < 0:
                raise ValueError("power draws must be non-negative")


@dataclass(frozen=True)
class QueryEnergy:
    """Energy breakdown of one query, in joules."""

    compute_joules: float
    transmit_joules: float
    receive_joules: float
    idle_joules: float

    @property
    def total_joules(self) -> float:
        return (
            self.compute_joules
            + self.transmit_joules
            + self.receive_joules
            + self.idle_joules
        )


def plan_energy(
    costs: ExecutionCosts,
    plan: PartitionPlan,
    model: EnergyModel | None = None,
) -> QueryEnergy:
    """Client energy of one query executed under ``plan``.

    Walks the prefix-execution model: client-side layers burn compute
    power; each side switch burns radio power for the crossing tensors;
    time spent while the server executes burns idle power.
    """
    model = model or EnergyModel()
    up_seconds = costs.cut_bytes * 8.0 / costs.uplink_bps
    down_seconds = costs.cut_bytes * 8.0 / costs.downlink_bps
    compute = 0.0
    transmit = 0.0
    receive = 0.0
    idle = 0.0
    side = Placement.CLIENT
    for i, placement in enumerate(plan.placements):
        if placement is not side:
            if placement is Placement.SERVER:
                transmit += model.transmit_watts * up_seconds[i]
            else:
                receive += model.receive_watts * down_seconds[i]
            side = placement
        if placement is Placement.SERVER:
            idle += model.idle_watts * float(costs.server_times[i])
        else:
            compute += model.compute_watts * float(costs.client_times[i])
    if side is Placement.SERVER:
        receive += model.receive_watts * down_seconds[costs.num_layers]
    return QueryEnergy(
        compute_joules=compute,
        transmit_joules=transmit,
        receive_joules=receive,
        idle_joules=idle,
    )


def local_energy(
    costs: ExecutionCosts, model: EnergyModel | None = None
) -> float:
    """Joules of a fully-local query (the no-offloading baseline)."""
    model = model or EnergyModel()
    return model.compute_watts * costs.local_latency()


def energy_savings_ratio(
    costs: ExecutionCosts,
    plan: PartitionPlan,
    model: EnergyModel | None = None,
) -> float:
    """1 - offloaded/local client energy; positive means offloading saves."""
    baseline = local_energy(costs, model)
    if baseline <= 0:
        return 0.0
    return 1.0 - plan_energy(costs, plan, model).total_joules / baseline
