"""Analytic per-layer latency model (roofline style).

A layer's uncontended execution time on a device is::

    overhead + max(flops / effective_flops, moved_bytes / memory_bandwidth)

where ``moved_bytes`` counts inputs, outputs, and weights.  This captures the
two regimes that matter for partitioning: compute-bound conv/fc layers and
memory-bound elementwise/pool layers, and it reproduces the structural fact
the paper exploits — conv layers concentrated at the front of Inception have
the highest latency-per-byte "efficiency" for offloading.
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph, LayerInfo
from repro.dnn.layer import LayerKind
from repro.profiling.hardware import DeviceSpec


def layer_latency(device: DeviceSpec, info: LayerInfo, grouped: bool = False) -> float:
    """Uncontended execution time (seconds) of one layer on ``device``."""
    if info.kind is LayerKind.INPUT:
        return 0.0
    moved = info.input_bytes + info.output_bytes + info.weight_bytes
    memory_time = moved / device.memory_bandwidth
    if info.flops > 0:
        compute_time = info.flops / device.effective_flops(info.kind, grouped)
    else:
        compute_time = 0.0
    return device.layer_overhead + max(compute_time, memory_time)


class LatencyModel:
    """Per-layer latency table for one (graph, device) pair.

    ``latency(name)`` returns the uncontended time of a layer; ``total()``
    sums the whole model (i.e. a fully-local or fully-offloaded run without
    transfer costs).
    """

    def __init__(self, graph: DNNGraph, device: DeviceSpec) -> None:
        if not graph.frozen:
            raise ValueError("graph must be frozen before profiling")
        self.graph = graph
        self.device = device
        self._latency: dict[str, float] = {}
        for info in graph.infos():
            grouped = graph.layer(info.name).groups > 1
            self._latency[info.name] = layer_latency(device, info, grouped)

    def latency(self, name: str) -> float:
        return self._latency[name]

    def as_dict(self) -> dict[str, float]:
        return dict(self._latency)

    def total(self) -> float:
        return sum(self._latency.values())
