"""nvml-style GPU statistics.

The paper's edge servers sample, via nvml, the statistics that feed the
execution-time estimator: kernel utilization, memory utilization, GPU
temperature (plus the number of clients currently offloading).  In this
reproduction the statistics are *derived* from the contention model's load
state, with sampling noise, mimicking what a periodic nvml poll would see.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuStats:
    """One sample of a server GPU's observable state."""

    kernel_utilization: float  # percent of time kernels were executing [0, 100]
    memory_utilization: float  # percent of time memory ops were active [0, 100]
    temperature: float  # degrees Celsius
    num_clients: int  # clients currently offloading to this server

    def __post_init__(self) -> None:
        if not 0.0 <= self.kernel_utilization <= 100.0:
            raise ValueError(f"kernel utilization out of range: {self.kernel_utilization}")
        if not 0.0 <= self.memory_utilization <= 100.0:
            raise ValueError(f"memory utilization out of range: {self.memory_utilization}")
        if self.num_clients < 0:
            raise ValueError("num_clients must be non-negative")

    @classmethod
    def idle(cls) -> GpuStats:
        return cls(0.0, 0.0, 35.0, 0)

    @property
    def saturation(self) -> float:
        """Observable saturation signal in [0, 1]: the busier of kernel
        and memory utilization — what admission control reads off an nvml
        sample when it only has the pinged statistics."""
        return max(self.kernel_utilization, self.memory_utilization) / 100.0

    def as_features(self) -> tuple[float, float, float, float]:
        """Feature vector used by the GPU-aware execution-time estimator."""
        return (
            float(self.num_clients),
            self.kernel_utilization,
            self.memory_utilization,
            self.temperature,
        )


GPU_STAT_FEATURE_NAMES = (
    "num_clients",
    "kernel_utilization",
    "memory_utilization",
    "temperature",
)
