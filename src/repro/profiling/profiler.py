"""Offline profiling: execution profiles and estimator training data.

Two artifacts come out of profiling, mirroring the paper:

* :class:`ExecutionProfile` — the per-layer client/server latency tables
  the simulator and partitioner consume (the paper measured these once on
  real hardware with Caffe and then drove its simulation from the tables).
* :func:`generate_contention_dataset` — the dataset each edge server uses
  to train its execution-time estimator: layer execution times measured
  while a varying number of concurrent clients loads the GPU, paired with
  the nvml statistics recorded at request time (the paper extended
  TensorRT's ``perf_client`` to do this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dnn.graph import DNNGraph, LayerInfo
from repro.dnn.layer import LayerKind
from repro.profiling.contention import GpuContentionModel
from repro.profiling.gpu_stats import GpuStats
from repro.profiling.hardware import DeviceSpec
from repro.profiling.latency import LatencyModel


@dataclass(frozen=True)
class ExecutionProfile:
    """Per-layer latency tables for one model on a (client, server) pair."""

    graph: DNNGraph
    client_device: DeviceSpec
    server_device: DeviceSpec
    client_times: dict[str, float]
    server_times: dict[str, float]

    @classmethod
    def build(
        cls, graph: DNNGraph, client_device: DeviceSpec, server_device: DeviceSpec
    ) -> "ExecutionProfile":
        return cls(
            graph=graph,
            client_device=client_device,
            server_device=server_device,
            client_times=LatencyModel(graph, client_device).as_dict(),
            server_times=LatencyModel(graph, server_device).as_dict(),
        )

    def client_time(self, name: str) -> float:
        return self.client_times[name]

    def server_time(self, name: str) -> float:
        return self.server_times[name]

    @property
    def total_client_time(self) -> float:
        return sum(self.client_times.values())

    @property
    def total_server_time(self) -> float:
        return sum(self.server_times.values())


def profile_model(graph: DNNGraph, device: DeviceSpec) -> dict[str, float]:
    """Per-layer uncontended latency table for ``graph`` on ``device``."""
    return LatencyModel(graph, device).as_dict()


@dataclass(frozen=True)
class ContentionSample:
    """One profiled measurement of a layer under GPU contention."""

    info: LayerInfo
    stats: GpuStats
    base_time: float  # uncontended latency of the layer
    measured_time: float  # latency observed under the sampled contention


def generate_contention_dataset(
    graph: DNNGraph,
    server_device: DeviceSpec,
    rng: np.random.Generator,
    client_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 10, 12, 14, 16),
    rounds_per_count: int = 30,
    kinds: tuple[LayerKind, ...] = (LayerKind.CONV, LayerKind.FC),
    contention: GpuContentionModel | None = None,
) -> list[ContentionSample]:
    """Profile ``graph``'s layers at multiple concurrency levels.

    For each client count, the contention model is stepped
    ``rounds_per_count`` times; in each round the profiler records one nvml
    sample plus the contended execution time of every layer whose kind is in
    ``kinds``.  This mimics the paper's offline profiling campaign where
    server workload is varied by adjusting the number of perf-client
    instances.
    """
    if contention is None:
        contention = GpuContentionModel(rng)
    latency = LatencyModel(graph, server_device)
    selected = [info for info in graph.infos() if info.kind in kinds]
    if not selected:
        raise ValueError(f"graph has no layers of kinds {kinds}")
    samples: list[ContentionSample] = []
    for count in client_counts:
        if count < 1:
            raise ValueError("client counts must be >= 1")
        for _ in range(rounds_per_count):
            contention.step(count)
            stats = contention.sample_stats()
            for info in selected:
                base = latency.latency(info.name)
                measured = contention.execution_time(base)
                samples.append(
                    ContentionSample(
                        info=info, stats=stats, base_time=base,
                        measured_time=measured,
                    )
                )
    return samples
