"""Stochastic GPU contention model for multi-client offloading.

When several clients offload DNN inference to one edge server, their kernels
contend for streaming multiprocessors, GPU memory, and the PCIe bus.  The
paper treats the resulting slowdown as a black box and learns it from nvml
statistics; this module provides the black box.

Model
-----
Each offloading client contributes a fluctuating *activity* (clients do not
issue queries back to back — they wait for results and sleep between
queries), so the latent GPU load is ``sum of per-client activities`` rather
than the client count itself.  Execution slowdown grows super-linearly in
that latent load (temporal sharing plus scheduling overhead plus thermal
throttling), and the observable nvml statistics — kernel/memory utilization
and temperature — are noisy, lagged functions of the same latent load.

This gives the estimator exactly the learning problem the paper describes:
client count alone is a coarse predictor; utilization and temperature carry
the extra signal (Fig 4), and the relationship is non-linear, favouring a
random forest over linear/logarithmic fits.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.gpu_stats import GpuStats

_AMBIENT_TEMPERATURE = 35.0
_MAX_TEMPERATURE = 92.0
_THROTTLE_TEMPERATURE = 80.0


class GpuContentionModel:
    """Latent-load contention model for one server GPU.

    Parameters
    ----------
    rng:
        Source of randomness; pass a seeded generator for reproducibility.
    mean_activity:
        Average fraction of time an offloading client keeps the GPU busy.
    slowdown_per_load / slowdown_quadratic:
        Linear / quadratic coefficients of slowdown in the latent load.
    temperature_lag:
        EMA coefficient for how quickly temperature tracks utilization.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_activity: float = 0.55,
        activity_concentration: float = 2.5,
        slowdown_per_load: float = 0.50,
        slowdown_quadratic: float = 0.045,
        thermal_throttle_factor: float = 0.35,
        temperature_lag: float = 0.30,
        stat_noise: float = 0.04,
        time_noise: float = 0.05,
    ) -> None:
        if not 0.0 < mean_activity <= 1.0:
            raise ValueError("mean_activity must be in (0, 1]")
        self._rng = rng
        self._mean_activity = mean_activity
        self._concentration = activity_concentration
        self._slowdown_per_load = slowdown_per_load
        self._slowdown_quadratic = slowdown_quadratic
        self._thermal_throttle_factor = thermal_throttle_factor
        self._temperature_lag = temperature_lag
        self._stat_noise = stat_noise
        self._time_noise = time_noise
        self._num_clients = 0
        self._latent_load = 0.0
        self._temperature = _AMBIENT_TEMPERATURE

    # ------------------------------------------------------------------
    # State evolution
    # ------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return self._num_clients

    @property
    def latent_load(self) -> float:
        return self._latent_load

    def step(self, num_clients: int) -> None:
        """Advance one sampling period with ``num_clients`` offloading."""
        if num_clients < 0:
            raise ValueError("num_clients must be non-negative")
        self._num_clients = num_clients
        if num_clients == 0:
            self._latent_load = 0.0
        else:
            alpha = self._mean_activity * self._concentration
            beta = (1.0 - self._mean_activity) * self._concentration
            activities = self._rng.beta(alpha, beta, size=num_clients)
            self._latent_load = float(activities.sum())
        target = _AMBIENT_TEMPERATURE + (
            (_MAX_TEMPERATURE - _AMBIENT_TEMPERATURE)
            * self._utilization_fraction()
        )
        lag = self._temperature_lag
        self._temperature += lag * (target - self._temperature)

    def utilization_fraction(self) -> float:
        """Fraction of time the GPU is busy, saturating slowly with load.

        The slow saturation keeps utilization informative about the latent
        load even at 16 concurrent clients — the regime where the paper's
        estimator benefits most from GPU statistics (Fig 4).  Noise-free:
        this is the latent truth the nvml samples scatter around, and the
        saturation signal admission control keys on.
        """
        return 1.0 - float(np.exp(-0.18 * self._latent_load))

    # Backwards-compatible alias (pre-overload private name).
    _utilization_fraction = utilization_fraction

    # ------------------------------------------------------------------
    # Observables and effects
    # ------------------------------------------------------------------
    def slowdown(self) -> float:
        """Current multiplicative execution-time factor (>= 1)."""
        load = max(0.0, self._latent_load - self._mean_activity)
        factor = (
            1.0
            + self._slowdown_per_load * load
            + self._slowdown_quadratic * load * load
        )
        if self._temperature > _THROTTLE_TEMPERATURE:
            over = (self._temperature - _THROTTLE_TEMPERATURE) / (
                _MAX_TEMPERATURE - _THROTTLE_TEMPERATURE
            )
            factor *= 1.0 + self._thermal_throttle_factor * over
        return factor

    def sample_stats(self) -> GpuStats:
        """One noisy nvml-style sample of the current GPU state."""
        util = 100.0 * self._utilization_fraction()
        noise = self._stat_noise * 100.0
        kernel = float(np.clip(util + self._rng.normal(0.0, noise), 0.0, 100.0))
        mem = float(
            np.clip(0.62 * util + self._rng.normal(0.0, noise), 0.0, 100.0)
        )
        temp = float(
            np.clip(
                self._temperature + self._rng.normal(0.0, 1.0),
                _AMBIENT_TEMPERATURE - 5.0,
                _MAX_TEMPERATURE + 3.0,
            )
        )
        return GpuStats(
            kernel_utilization=kernel,
            memory_utilization=mem,
            temperature=temp,
            num_clients=self._num_clients,
        )

    def execution_time(self, base_time: float) -> float:
        """Actual contended time of an operation with uncontended ``base_time``."""
        if base_time < 0:
            raise ValueError("base_time must be non-negative")
        noise = float(self._rng.lognormal(mean=0.0, sigma=self._time_noise))
        return base_time * self.slowdown() * noise

    def expected_slowdown_for_clients(self, num_clients: int) -> float:
        """Deterministic expected slowdown at a given client count.

        Used where the simulator needs a smooth, noise-free contention
        estimate (e.g. the oracle in estimator evaluations).
        """
        load = max(0.0, num_clients * self._mean_activity - self._mean_activity)
        return (
            1.0
            + self._slowdown_per_load * load
            + self._slowdown_quadratic * load * load
        )
