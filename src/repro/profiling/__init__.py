"""Hardware and profiling substrate.

The paper drives its simulator with execution profiles measured on real
hardware (ODROID XU4 client, Titan Xp edge server) and with GPU statistics
sampled via nvml under multi-client contention.  This package replaces those
measurements with an analytic roofline-style latency model plus a stochastic
GPU-contention model, calibrated so end-to-end magnitudes match the numbers
the paper reports (e.g. Table II upload times and query counts).
"""

from repro.profiling.hardware import (
    DeviceSpec,
    odroid_xu4,
    titan_xp_server,
)
from repro.profiling.latency import LatencyModel, layer_latency
from repro.profiling.gpu_stats import GpuStats
from repro.profiling.contention import GpuContentionModel
from repro.profiling.profiler import (
    ContentionSample,
    ExecutionProfile,
    generate_contention_dataset,
    profile_model,
)
from repro.profiling.energy import (
    EnergyModel,
    QueryEnergy,
    energy_savings_ratio,
    local_energy,
    plan_energy,
)

__all__ = [
    "DeviceSpec",
    "odroid_xu4",
    "titan_xp_server",
    "LatencyModel",
    "layer_latency",
    "GpuStats",
    "GpuContentionModel",
    "ExecutionProfile",
    "ContentionSample",
    "profile_model",
    "generate_contention_dataset",
    "EnergyModel",
    "QueryEnergy",
    "plan_energy",
    "local_energy",
    "energy_savings_ratio",
]
