"""System-wide configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.links import LAB_WIFI, NetworkSpeed


@dataclass(frozen=True)
class PerDNNConfig:
    """Every tunable of the PerDNN system, defaulted to the paper's values.

    * wireless: the authors' lab Wi-Fi (50 Mbps down / 35 Mbps up),
    * 50 m hex cells (typical Wi-Fi AP service range),
    * query gap 0.5 s (the cognitive-assistance workload),
    * trajectory history n = 5, proactive-migration radius r, TTL = 5
      intervals,
    * plan granularity: upload chunks capped at 2 MB so the incremental
      latency curve is smooth.
    """

    network: NetworkSpeed = field(default_factory=lambda: LAB_WIFI)
    cell_radius_m: float = 50.0
    # Backhaul link characteristics, used by the §3.A routing alternative
    # (queries relayed from the access cell to a remote serving cell).
    backhaul_bps: float = 1e9
    backhaul_hop_latency_s: float = 2.5e-3
    # Handover hysteresis: a client re-associates only when the candidate
    # cell's centre is this much closer than the current one (metres).
    # 0 = immediate cell-boundary handovers (the paper's implicit model).
    handover_hysteresis_m: float = 0.0
    query_gap_seconds: float = 0.5
    prediction_history: int = 5
    migration_radius_m: float = 100.0
    ttl_intervals: int = 5
    max_chunk_bytes: float = 2e6
    slowdown_quantum: float = 0.25
    # A visit counts as a `hit` when at least this share of the plan's
    # server-side bytes is already cached (1.0 = the paper's strict "all
    # layers received" definition; kept configurable for ablations).
    hit_byte_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.cell_radius_m <= 0:
            raise ValueError("cell_radius_m must be positive")
        if self.backhaul_bps <= 0:
            raise ValueError("backhaul_bps must be positive")
        if self.backhaul_hop_latency_s < 0:
            raise ValueError("backhaul_hop_latency_s must be non-negative")
        if self.handover_hysteresis_m < 0:
            raise ValueError("handover_hysteresis_m must be non-negative")
        if self.query_gap_seconds < 0:
            raise ValueError("query_gap_seconds must be non-negative")
        if self.prediction_history < 1:
            raise ValueError("prediction_history must be >= 1")
        if self.migration_radius_m < 0:
            raise ValueError("migration_radius_m must be non-negative")
        if self.ttl_intervals < 1:
            raise ValueError("ttl_intervals must be >= 1")
        if not 0.0 < self.hit_byte_fraction <= 1.0:
            raise ValueError("hit_byte_fraction must be in (0, 1]")
