"""The PerDNN system core (paper §3).

* :class:`PerDNNConfig` — every tunable of the system in one place.
* :class:`EdgeServer` — per-cell server: GPU contention state, per-client
  layer cache with TTL, nvml-style statistics.
* :class:`MobileClient` — a trajectory-driven client running one DNN model.
* :class:`MasterServer` — the controller: GPU-aware partitioning via the
  execution-time estimator, mobility prediction, proactive (optionally
  fractional) migration of server-side layers over the backhaul.
"""

from repro.core.config import PerDNNConfig
from repro.core.edge_server import CachedModel, EdgeServer
from repro.core.client import MobileClient
from repro.core.master import MasterServer, MigrationPolicy
from repro.core.collaboration import (
    CollaborativeResult,
    execute_collaboratively,
)
from repro.core.routing import (
    RoutedTensors,
    routed_tensors,
    routing_overhead_seconds,
)

__all__ = [
    "PerDNNConfig",
    "EdgeServer",
    "CachedModel",
    "MobileClient",
    "MasterServer",
    "MigrationPolicy",
    "CollaborativeResult",
    "execute_collaboratively",
    "RoutedTensors",
    "routed_tensors",
    "routing_overhead_seconds",
]
