"""Edge server: GPU state plus a TTL'd per-client layer cache.

Each hex cell's computing node holds, per client, the bytes of that
client's server-side DNN layers it has received so far (from the client's
own incremental upload or from another server's proactive migration).
Because both senders follow the same efficiency-greedy schedule, the cached
bytes always form a *prefix* of the client's upload schedule, so a single
byte counter fully describes the cache state (see DESIGN.md).

Cached models expire after a TTL measured in simulation intervals; the TTL
is refreshed whenever new bytes arrive or the owning client is associated
with the server (§3.B.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.hexgrid import HexCell
from repro.profiling.contention import GpuContentionModel
from repro.profiling.gpu_stats import GpuStats
from repro.telemetry.registry import MetricsRegistry


@dataclass
class CachedModel:
    """Bytes of one client's server-side layers present at a server.

    ``version`` tracks the client's model generation: clients may retrain
    or replace their personal models after deployment (paper §I), which
    invalidates every cached copy of the old weights.
    """

    received_bytes: float
    expires_at_interval: int
    version: int = 0

    def refresh(self, now_interval: int, ttl_intervals: int) -> None:
        self.expires_at_interval = now_interval + ttl_intervals


class EdgeServer:
    """One computing node in a hex cell."""

    def __init__(
        self,
        server_id: int,
        cell: HexCell,
        rng: np.random.Generator,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        self.server_id = server_id
        self.cell = cell
        self.contention = GpuContentionModel(rng)
        self.telemetry = telemetry
        self._cache: dict[int, CachedModel] = {}
        self._active_clients: set[int] = set()
        # Hot-path counter objects, resolved once instead of per lookup
        # (registry counters are stable singletons per (name, labels)).
        if telemetry is not None:
            self._lookup_hit = telemetry.counter(
                "cache.lookups", {"outcome": "hit"}
            )
            self._lookup_miss = telemetry.counter(
                "cache.lookups", {"outcome": "miss"}
            )
            self._bytes_added = telemetry.counter("cache.bytes_added")
        else:
            self._lookup_hit = None
            self._lookup_miss = None
            self._bytes_added = None

    # ------------------------------------------------------------------
    # GPU state
    # ------------------------------------------------------------------
    @property
    def active_clients(self) -> set[int]:
        return set(self._active_clients)

    def associate(self, client_id: int) -> None:
        self._active_clients.add(client_id)

    def dissociate(self, client_id: int) -> None:
        self._active_clients.discard(client_id)

    def step_gpu(self) -> None:
        """Advance the contention model one interval."""
        self.contention.step(len(self._active_clients))

    def sample_stats(self) -> GpuStats:
        """What the master's ping observes (§3.C.1)."""
        return self.contention.sample_stats()

    def slowdown(self) -> float:
        return self.contention.slowdown()

    def saturation(self) -> float:
        """Deterministic GPU saturation in [0, 1].

        The contention model's noise-free busy fraction — the signal the
        admission controller derives its per-interval queue capacity
        from (a noisy nvml view of the same quantity is available via
        ``sample_stats().saturation``).
        """
        return self.contention.utilization_fraction()

    # ------------------------------------------------------------------
    # Layer cache
    # ------------------------------------------------------------------
    def cached_bytes(self, client_id: int, version: int = 0) -> float:
        """Cached bytes of the client's model at ``version`` (stale = 0)."""
        entry = self._cache.get(client_id)
        if entry is None or entry.version != version:
            if self._lookup_miss is not None:
                self._lookup_miss.inc()
            return 0.0
        if self._lookup_hit is not None:
            self._lookup_hit.inc()
        return entry.received_bytes

    def add_bytes(
        self,
        client_id: int,
        nbytes: float,
        now_interval: int,
        ttl_intervals: int,
        version: int = 0,
    ) -> float:
        """Receive ``nbytes`` more of a client's layers; returns new total.

        Bytes of a newer model version replace any stale cached copy.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        entry = self._cache.get(client_id)
        if entry is None or entry.version != version:
            entry = CachedModel(
                received_bytes=0.0, expires_at_interval=0, version=version
            )
            self._cache[client_id] = entry
        entry.received_bytes += nbytes
        entry.refresh(now_interval, ttl_intervals)
        if self._bytes_added is not None:
            self._bytes_added.inc(nbytes)
        return entry.received_bytes

    def refresh_ttl(
        self,
        client_id: int,
        now_interval: int,
        ttl_intervals: int,
        version: int = 0,
    ) -> None:
        entry = self._cache.get(client_id)
        if entry is not None and entry.version == version:
            entry.refresh(now_interval, ttl_intervals)

    def crash(self) -> int:
        """Power loss: every cached model and association is gone.

        Returns the number of cached models lost.  The server object
        itself survives (it is the cell's slot); a later restart simply
        finds it with a cold cache — the paper's cold-start cost paid
        again, which is exactly what the resilience layer measures.
        """
        lost = len(self._cache)
        self._cache.clear()
        self._active_clients.clear()
        if lost and self.telemetry is not None:
            self.telemetry.counter("cache.crash_losses").inc(lost)
        return lost

    def clear_client(self, client_id: int) -> None:
        """Drop a client's cached layers (the IONN baseline keeps nothing
        across server changes — clients re-upload from scratch)."""
        self._cache.pop(client_id, None)

    def expire(self, now_interval: int) -> list[int]:
        """Drop expired cache entries; returns the evicted client ids.

        Entries of currently-associated clients never expire.
        """
        evicted = [
            client_id
            for client_id, entry in self._cache.items()
            if entry.expires_at_interval <= now_interval
            and client_id not in self._active_clients
        ]
        for client_id in evicted:
            del self._cache[client_id]
        if evicted and self.telemetry is not None:
            self.telemetry.counter("cache.evictions").inc(len(evicted))
        return evicted

    @property
    def num_cached_models(self) -> int:
        return len(self._cache)
