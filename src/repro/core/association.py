"""Client-to-server association with handover hysteresis.

The paper's simulator re-associates a client the instant its position
crosses a hex-cell boundary.  Real Wi-Fi clients apply *hysteresis*: they
stick to the current AP until a candidate is clearly better, which
suppresses boundary ping-pong (and with it, spurious cold starts).  This
module provides that decision rule as a pure function; the large-scale
simulator applies it when ``PerDNNConfig.handover_hysteresis_m > 0``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.geo.geometry import euclidean
from repro.geo.wifi import EdgeServerRegistry


def decide_association(
    registry: EdgeServerRegistry,
    position: tuple[float, float],
    current_server: int | None,
    hysteresis_m: float = 0.0,
) -> int | None:
    """The server the client should be associated with at ``position``.

    Returns the current server unless the position's cell has a different
    server whose centre is at least ``hysteresis_m`` closer than the
    current server's centre.  Returns ``None`` only when no server covers
    the position and none is currently held.
    """
    if hysteresis_m < 0:
        raise ValueError("hysteresis_m must be non-negative")
    candidate = registry.server_at(position)
    if current_server is None:
        return candidate
    if candidate is None or candidate == current_server:
        return current_server
    if hysteresis_m == 0.0:
        return candidate
    current_distance = euclidean(
        position, registry.server_location(current_server)
    )
    candidate_distance = euclidean(
        position, registry.server_location(candidate)
    )
    if candidate_distance + hysteresis_m <= current_distance:
        return candidate
    return current_server


def least_loaded_server(
    candidates: Iterable[int],
    load_of: Callable[[int], float],
    distance_of: Callable[[int], float],
) -> int | None:
    """Load-aware server selection for redirected clients.

    Picks the candidate with the lowest load (queue depth or client
    count), breaking ties by distance and then by server id so the
    choice is deterministic.  Returns ``None`` for an empty candidate
    set.
    """
    return min(
        candidates,
        key=lambda server_id: (
            load_of(server_id), distance_of(server_id), server_id
        ),
        default=None,
    )
