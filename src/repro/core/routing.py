"""The routing alternative to server hand-offs (paper §3.A).

When a client moves to another hotspot it can either re-offload to the new
computing node (PerDNN's choice) or *keep its connection to the previous
server and route input/output data through the backhaul*.  The paper
rejects routing as its default because it "leads to sub-optimal offloading
with increased latency and constantly consumes backhaul traffics", and
leaves it as future work — this module implements it so the trade-off can
be quantified (``benchmarks/bench_ablation_routing.py``).

A routed query pays, on top of the plan's normal latency:

* per-hop forwarding latency over the backhaul path between the access
  cell and the serving cell, once per direction, and
* the serialization time of the offloaded tensors over the backhaul link,

and the routed tensor bytes count as backhaul traffic every interval the
client stays remote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PerDNNConfig
from repro.partitioning.execution_graph import ExecutionCosts, Placement
from repro.partitioning.shortest_path import PartitionPlan


@dataclass(frozen=True)
class RoutedTensors:
    """Bytes crossing the client/server boundary for one query."""

    uplink_bytes: float  # client -> server direction (input tensors)
    downlink_bytes: float  # server -> client direction (results)

    @property
    def total_bytes(self) -> float:
        return self.uplink_bytes + self.downlink_bytes


def routed_tensors(costs: ExecutionCosts, plan: PartitionPlan) -> RoutedTensors:
    """Tensor bytes a query moves between the sides under ``plan``.

    Walks the prefix-execution model: every switch to the server ships the
    live-cut tensors up, every switch back ships them down; a plan ending
    on the server ships the final result down.
    """
    up = 0.0
    down = 0.0
    side = Placement.CLIENT
    for i, placement in enumerate(plan.placements):
        if placement is not side:
            if placement is Placement.SERVER:
                up += float(costs.cut_bytes[i])
            else:
                down += float(costs.cut_bytes[i])
            side = placement
    if side is Placement.SERVER:
        down += float(costs.cut_bytes[costs.num_layers])
    return RoutedTensors(uplink_bytes=up, downlink_bytes=down)


def routing_overhead_seconds(
    config: PerDNNConfig, hops: int, tensors: RoutedTensors
) -> float:
    """Extra per-query latency when the serving cell is ``hops`` away."""
    if hops < 0:
        raise ValueError("hops must be non-negative")
    if hops == 0:
        return 0.0
    forwarding = 2 * hops * config.backhaul_hop_latency_s
    serialization = tensors.total_bytes * 8.0 / config.backhaul_bps
    return forwarding + serialization
