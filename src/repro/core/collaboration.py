"""Collaborative DNN execution: run one query across client and server.

This is the runtime half of the paper's §3.B.1: "the client executes
layers one by one until the execution reaches the uploaded layer, and
sends the input of the uploaded layer to the edge server.  The edge server
executes the uploaded layers and returns the result to the client."

:func:`execute_collaboratively` walks a partitioning plan in topological
order with two :class:`~repro.dnn.execution.NumpyExecutor` instances,
transferring tensors whenever a layer's input lives on the other side, and
records every transfer.  The result must be identical to a fully local
run — asserted by the integration tests — which validates that the
partitioner's placements are actually executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn.execution import NumpyExecutor
from repro.dnn.graph import DNNGraph
from repro.partitioning.execution_graph import Placement
from repro.partitioning.shortest_path import PartitionPlan


@dataclass(frozen=True)
class TensorTransfer:
    """One tensor moved between the client and the server."""

    tensor_of: str  # producing layer
    nbytes: int
    to_server: bool  # direction


@dataclass
class CollaborativeResult:
    """Output of one collaboratively-executed query."""

    output: np.ndarray
    transfers: list[TensorTransfer] = field(default_factory=list)

    @property
    def uplink_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers if t.to_server)

    @property
    def downlink_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers if not t.to_server)

    @property
    def num_transfers(self) -> int:
        return len(self.transfers)


def execute_collaboratively(
    graph: DNNGraph,
    plan: PartitionPlan,
    input_tensor: np.ndarray,
    client: NumpyExecutor,
    server: NumpyExecutor,
) -> CollaborativeResult:
    """Execute ``plan`` with the client and server executors.

    The client and server executors may hold *independent* weight stores —
    the tests exercise shipping serialized weights to the server first —
    but both must describe the same graph.
    """
    if client.graph is not graph or server.graph is not graph:
        raise ValueError("both executors must be bound to the plan's graph")
    if tuple(graph.topo_order) != plan.layer_names:
        raise ValueError("plan does not match the graph's topological order")
    result = CollaborativeResult(output=np.empty(0))
    # Which side currently holds each produced tensor (both, after a copy).
    at_client: dict[str, np.ndarray] = {}
    at_server: dict[str, np.ndarray] = {}
    input_name = graph.input_name
    at_client[input_name] = input_tensor.astype(np.float32)
    placements = dict(zip(plan.layer_names, plan.placements))

    def fetch(name: str, to_server: bool) -> np.ndarray:
        """Make a tensor available on the requested side, logging moves."""
        here, there = (at_server, at_client) if to_server else (at_client, at_server)
        if name in here:
            return here[name]
        tensor = there[name]
        result.transfers.append(
            TensorTransfer(
                tensor_of=name, nbytes=tensor.nbytes, to_server=to_server
            )
        )
        here[name] = tensor
        return tensor

    for name in graph.topo_order[1:]:
        on_server = placements[name] is Placement.SERVER
        executor = server if on_server else client
        inputs = [
            fetch(pred, to_server=on_server)
            for pred in graph.predecessors(name)
        ]
        output = executor.execute_layer(name, inputs)
        (at_server if on_server else at_client)[name] = output
    final = graph.output_name
    result.output = fetch(final, to_server=False)  # result returns to client
    return result
