"""The master server: planning, prediction, and proactive migration (§3.B).

The master keeps the global view: the server registry (Wi-Fi database), a
lazily-instantiated :class:`~repro.core.edge_server.EdgeServer` per
allocated cell, the GPU-aware execution-time estimator, one
:class:`~repro.partitioning.partitioner.DNNPartitioner` per DNN profile,
and the mobility predictor.  Every simulation interval it:

1. answers *current partitioning plan* requests using the pinged GPU
   statistics of the client's current server, and
2. predicts each client's next location, derives *future partitioning
   plans* for all servers within the migration radius of the prediction,
   and schedules backhaul transfers of the server-side layers from the
   client's current server (fractionally, for crowded servers).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.association import least_loaded_server
from repro.core.client import MobileClient
from repro.core.config import PerDNNConfig
from repro.core.edge_server import EdgeServer
from repro.estimation.estimator import ContentionEstimator
from repro.faults import FaultSchedule, record_fault
from repro.geo.geometry import euclidean
from repro.geo.wifi import EdgeServerRegistry
from repro.mobility.predictor import PointPredictor
from repro.network.traffic import TrafficMeter
from repro.partitioning.partitioner import DNNPartitioner, PartitionResult
from repro.telemetry import (
    CacheEvictionEvent,
    FractionalTruncationEvent,
    MigrationEvent,
    Telemetry,
)


#: Global fast-path switch for the proactive-migration pass, mirroring
#: :data:`repro.simulation.large_scale._FAST_SIMULATE`.  True routes
#: :meth:`MasterServer.proactive_migrate_batch` through the array-form
#: passes (grouped plan probes, one slowdown batch per interval, hoisted
#: byte accounting); False replays the per-client transfer loop.  Both
#: paths export byte-identical telemetry — the equivalence tests pin
#: them against each other.
_FAST_MIGRATE = True


def fast_migrate_enabled() -> bool:
    """Is the array-form proactive-migration pass active?"""
    return _FAST_MIGRATE


def set_fast_migrate(enabled: bool) -> bool:
    """Enable/disable the array-form pass; returns the previous setting."""
    global _FAST_MIGRATE
    previous = _FAST_MIGRATE
    _FAST_MIGRATE = bool(enabled)
    return previous


@contextmanager
def reference_migrate():
    """Force the per-client reference migration loop within the block.

    Used by the equivalence tests and by ``repro bench`` to time the
    pre-vectorization reference on identical inputs.
    """
    previous = set_fast_migrate(False)
    try:
        yield
    finally:
        set_fast_migrate(previous)


class MigrationPolicy(str, Enum):
    """What the system does ahead of a client's next move."""

    NONE = "none"  # IONN baseline: no proactive transmission
    PERDNN = "perdnn"  # predict + migrate within the radius
    OPTIMAL = "optimal"  # oracle: every server always holds every model
    ROUTING = "routing"  # §3.A alternative: stay on the first server,
    # relay queries over the backhaul as the user moves


@dataclass(frozen=True)
class MigrationRecord:
    """One proactive backhaul transfer."""

    client_id: int
    source_server: int
    target_server: int
    nbytes: float
    interval: int


class MasterServer:
    """Global controller for one simulated region."""

    def __init__(
        self,
        registry: EdgeServerRegistry,
        partitioner: DNNPartitioner | Mapping[int, DNNPartitioner],
        config: PerDNNConfig,
        rng: np.random.Generator,
        predictor: PointPredictor | None = None,
        contention_estimator: ContentionEstimator | None = None,
        policy: MigrationPolicy = MigrationPolicy.PERDNN,
        traffic_meter: TrafficMeter | None = None,
        crowded_servers: frozenset[int] = frozenset(),
        crowded_byte_budget: float = float("inf"),
        telemetry: Telemetry | None = None,
        fault_schedule: FaultSchedule | None = None,
    ) -> None:
        if policy is MigrationPolicy.PERDNN and predictor is None:
            raise ValueError("PERDNN policy requires a mobility predictor")
        self.registry = registry
        self.partitioner = partitioner
        self.config = config
        self.policy = policy
        self.predictor = predictor
        self.contention_estimator = contention_estimator
        self.traffic_meter = traffic_meter
        self.crowded_servers = crowded_servers
        self.crowded_byte_budget = crowded_byte_budget
        self.telemetry = telemetry
        self.fault_schedule = fault_schedule
        self._rng = rng
        self._servers: dict[int, EdgeServer] = {}
        self.migrations: list[MigrationRecord] = []
        self._slowdown_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Server management
    # ------------------------------------------------------------------
    def server(self, server_id: int) -> EdgeServer:
        existing = self._servers.get(server_id)
        if existing is not None:
            return existing
        cell = self.registry.cell_of_server(server_id)
        metrics = self.telemetry.registry if self.telemetry else None
        server = EdgeServer(server_id, cell, self._rng, telemetry=metrics)
        self._servers[server_id] = server
        return server

    @property
    def instantiated_servers(self) -> list[EdgeServer]:
        return list(self._servers.values())

    def server_at(self, point: tuple[float, float]) -> int | None:
        return self.registry.server_at(point)

    def server_available(self, server_id: int, interval: int) -> bool:
        """Is the server up at ``interval`` under the run's fault schedule?"""
        if self.fault_schedule is None:
            return True
        return not self.fault_schedule.server_down(server_id, interval)

    def crash_server(self, server_id: int) -> int:
        """Wipe a crashed server's state; returns the cached models lost.

        Servers never instantiated (no clients, no cache) lose nothing.
        """
        server = self._servers.get(server_id)
        return server.crash() if server is not None else 0

    # ------------------------------------------------------------------
    # Load-aware redirection (overload protection)
    # ------------------------------------------------------------------
    def association_load(self, server_id: int) -> int:
        """Instantaneous client load on a server (0 if never instantiated).

        Reading the load must not instantiate the server — redirection
        scans many candidates and only the chosen one should be woken.
        """
        server = self._servers.get(server_id)
        return len(server.active_clients) if server is not None else 0

    def redirect_target(
        self,
        position: tuple[float, float],
        interval: int,
        radius_m: float,
        load_of: Callable[[int], float] | None = None,
        exclude: Iterable[int] = (),
        require: Callable[[int], bool] | None = None,
    ) -> int | None:
        """Least-loaded reachable live server for a redirected client.

        Candidates are the servers within ``radius_m`` of ``position``
        that are up at ``interval``, minus ``exclude`` (typically the
        saturated home server) and anything failing ``require`` (e.g. an
        admission-capacity check).  ``load_of`` defaults to the client
        count; the simulator passes the admission controller's queue
        depth so selection folds in this interval's actual backlog.
        """
        excluded = set(exclude)
        candidates = [
            server_id
            for server_id in self.registry.servers_within(position, radius_m)
            if server_id not in excluded
            and self.server_available(server_id, interval)
            and (require is None or require(server_id))
        ]
        return least_loaded_server(
            candidates,
            load_of or self.association_load,
            lambda server_id: euclidean(
                position, self.registry.server_location(server_id)
            ),
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def begin_interval(self) -> None:
        """Reset per-interval memoization (GPU stats are re-pinged once per
        server per interval, matching the 'stable within 30 s' assumption)."""
        self._slowdown_cache.clear()

    def estimate_slowdown(self, server: EdgeServer) -> float:
        """The master's view of a server's GPU contention.

        With a trained estimator, the master pings the server for nvml
        statistics and predicts the slowdown (the paper's GPU-aware path);
        without one it falls back to the analytic expectation.  Memoized per
        interval — call :meth:`begin_interval` at each simulation step.
        """
        cached = self._slowdown_cache.get(server.server_id)
        if cached is not None:
            return cached
        if self.telemetry is not None:
            self.telemetry.registry.counter("master.gpu_pings").inc()
        if self.contention_estimator is not None:
            slowdown = self.contention_estimator.predict_slowdown(
                server.sample_stats()
            )
        else:
            slowdown = server.contention.expected_slowdown_for_clients(
                len(server.active_clients)
            )
        self._slowdown_cache[server.server_id] = slowdown
        return slowdown

    def estimate_slowdowns(
        self, servers: Iterable[EdgeServer]
    ) -> dict[int, float]:
        """Batched :meth:`estimate_slowdown` over many candidate servers.

        Pings every not-yet-memoized server once (in iteration order, so
        the shared RNG consumes noise draws in exactly the sequence the
        scalar path would) and predicts all slowdowns in a single forest
        call; already-cached servers are returned from the per-interval
        memo.  ``master.gpu_pings`` advances by the number of fresh pings,
        matching the scalar path's one-increment-per-uncached-server
        semantics, and each predicted value is bit-identical to what
        :meth:`estimate_slowdown` would have produced — batching is a pure
        wall-clock optimization.
        """
        out: dict[int, float] = {}
        pending: list[EdgeServer] = []
        for server in servers:
            cached = self._slowdown_cache.get(server.server_id)
            if cached is not None:
                out[server.server_id] = cached
            elif not any(p.server_id == server.server_id for p in pending):
                pending.append(server)
        if not pending:
            return out
        if self.telemetry is not None:
            self.telemetry.registry.counter("master.gpu_pings").inc(
                len(pending)
            )
        if self.contention_estimator is not None:
            stats = [server.sample_stats() for server in pending]
            slowdowns = self.contention_estimator.predict_slowdown_batch(
                stats
            )
            for server, slowdown in zip(pending, slowdowns):
                value = float(slowdown)
                self._slowdown_cache[server.server_id] = value
                out[server.server_id] = value
        else:
            for server in pending:
                value = server.contention.expected_slowdown_for_clients(
                    len(server.active_clients)
                )
                self._slowdown_cache[server.server_id] = value
                out[server.server_id] = value
        return out

    def partitioner_for(self, client_id: int | None = None) -> DNNPartitioner:
        """The partitioner of one client's DNN model.

        Every client has its own (personal, non-shared) model in the paper;
        homogeneous simulations pass a single partitioner, heterogeneous
        ones a mapping from client id to that client's partitioner.
        """
        if isinstance(self.partitioner, Mapping):
            if client_id is None:
                raise ValueError(
                    "client_id required with per-client partitioners"
                )
            return self.partitioner[client_id]
        return self.partitioner

    def plan_for(
        self, server: EdgeServer, client_id: int | None = None
    ) -> PartitionResult:
        """Current partitioning plan for a client at ``server`` (§3.B.1)."""
        if self.telemetry is None:
            return self.partitioner_for(client_id).partition(
                self.estimate_slowdown(server)
            )
        with self.telemetry.registry.timer("master.plan"):
            return self.partitioner_for(client_id).partition(
                self.estimate_slowdown(server)
            )

    def plan_bytes(self, server: EdgeServer, client_id: int | None = None) -> float:
        return self.plan_for(server, client_id).server_bytes

    # ------------------------------------------------------------------
    # Proactive migration
    # ------------------------------------------------------------------
    def _byte_budget(self, source_id: int, target_id: int, plan_bytes: float) -> float:
        """Fractional migration: crowded endpoints cap the transfer."""
        if source_id in self.crowded_servers or target_id in self.crowded_servers:
            return min(plan_bytes, self.crowded_byte_budget)
        return plan_bytes

    def proactive_migrate(self, client: MobileClient, interval: int) -> list[MigrationRecord]:
        """Predict the client's next location and push layers ahead (§3.B.2)."""
        if self.policy is not MigrationPolicy.PERDNN:
            return []
        assert self.predictor is not None
        window = client.recent_window()
        if window is None or client.current_server is None:
            return []
        if not self.server_available(client.current_server, interval):
            return []  # the source is dark; nothing can be pushed from it
        if (
            self.fault_schedule is not None
            and not self.fault_schedule.backhaul_available(interval)
        ):
            # Backhaul outage: every proactive transfer is blocked this
            # interval.  Record it once per client — the master retries
            # naturally at the next interval.
            if self.telemetry is not None:
                record_fault(
                    self.telemetry, interval, "backhaul_blocked",
                    server_id=client.current_server,
                    client_id=client.client_id,
                )
            return []
        predicted = self.predictor.predict_point(window)
        return self._migrate_to_predicted(client, interval, predicted)

    def proactive_migrate_batch(
        self, clients: Iterable[MobileClient], interval: int
    ) -> None:
        """One interval of :meth:`proactive_migrate` over many clients.

        Collects every eligible client's mobility window and predicts all
        next locations in a single :meth:`PointPredictor.predict_points`
        call (whose per-row output is bit-identical to the scalar
        ``predict_point`` — the predictors compute row-independently), then
        replays the per-client transfer logic in client order so fault
        events, GPU-ping RNG draws, and traffic records land exactly as
        the scalar loop would.
        """
        if self.policy is not MigrationPolicy.PERDNN:
            return
        assert self.predictor is not None
        eligible: list[tuple[MobileClient, np.ndarray]] = []
        for client in clients:
            window = client.recent_window()
            if window is None or client.current_server is None:
                continue
            if not self.server_available(client.current_server, interval):
                continue
            eligible.append((client, window))
        if not eligible:
            return
        if (
            self.fault_schedule is not None
            and not self.fault_schedule.backhaul_available(interval)
        ):
            if self.telemetry is not None:
                for client, _ in eligible:
                    record_fault(
                        self.telemetry, interval, "backhaul_blocked",
                        server_id=client.current_server,
                        client_id=client.client_id,
                    )
            return
        windows = np.stack([window for _, window in eligible])
        predictions = self.predictor.predict_points(windows)
        points = [
            (float(point[0]), float(point[1])) for point in predictions
        ]
        # One chunked radius query for every predicted location; each row
        # equals the scalar ``servers_within`` call the per-client path
        # makes.
        targets_list = self.registry.servers_within_batch(
            points, self.config.migration_radius_m
        )
        if fast_migrate_enabled():
            self._migrate_batch_fast(
                [client for client, _ in eligible], targets_list, interval
            )
            return
        for (client, _), point, targets in zip(
            eligible, points, targets_list
        ):
            self._migrate_to_predicted(client, interval, point, targets)

    def _migrate_batch_fast(
        self,
        clients: list[MobileClient],
        targets_list: list[list[int]],
        interval: int,
    ) -> None:
        """Array-form :meth:`_migrate_to_predicted` over one interval.

        Byte-identical to replaying the per-client transfer loop,
        restructured for throughput:

        * **Pass 1** (client order) resolves each client's source server
          and live targets exactly as the scalar loop would — servers are
          instantiated in the same order (``step_gpu``/``expire``
          iteration and merged traces depend on it) and dead-target skips
          are tallied locally and incremented once (int counters are
          exact under batching);
        * **Pass 2** predicts every fresh target's slowdown in one
          batched :meth:`estimate_slowdowns` call.  First-seen order
          across clients equals the scalar loop's per-client ping order
          (the per-interval memo dedups either way), so the shared RNG
          consumes noise draws in an identical sequence;
        * **Pass 3** probes one partitioning plan per distinct
          ``(partitioner, target)`` pair instead of one ``partition()``
          call per (client, target), compensating the partitioner's
          plan-cache hit counter for the skipped calls (after the first
          probe per pair, every scalar call is a hit on the same
          quantized key — target slowdowns are memoized per interval).
          Per-pair byte budgets are grouped on the same key and the
          ``sendable`` caps are computed in one vectorized ``minimum``
          over the interval's pairs (IEEE-identical to the scalar
          ``min``);
        * **Pass 4** replays the order-sensitive state in (client,
          target) order: cache reads/writes, TTL refreshes, traffic
          records, ``migration.bytes`` float-counter increments (float
          accumulation order matters), and trace events.

        Crowded-server runs fall back to per-pair budget arithmetic
        (budgets then depend on the *source* too, which the
        per-(partitioner, target) grouping cannot capture); the
        expressions match the scalar path exactly, so bytes still agree.
        """
        fault_schedule = self.fault_schedule
        telemetry = self.telemetry
        registry = telemetry.registry if telemetry is not None else None
        backhaul_factor = (
            fault_schedule.backhaul_factor(interval)
            if fault_schedule is not None else 1.0
        )
        faults_on = fault_schedule is not None
        # Pass 1: sources and live targets, in client order.
        pending: list[
            tuple[MobileClient, EdgeServer, float, list[EdgeServer]]
        ] = []
        dead_skips = 0
        ping_order: list[EdgeServer] = []
        fresh_targets: set[int] = set()
        slowdown_memo = self._slowdown_cache
        for client, targets in zip(clients, targets_list):
            source = self.server(client.current_server)
            source_bytes = source.cached_bytes(
                client.client_id, client.model_version
            )
            if source_bytes <= 0:
                continue  # nothing to send yet (client still uploading)
            source_id = source.server_id
            live: list[EdgeServer] = []
            for target_id in targets:
                if target_id == source_id:
                    continue
                if faults_on and fault_schedule.server_down(
                    target_id, interval
                ):
                    dead_skips += 1
                    continue
                target = self.server(target_id)
                live.append(target)
                if (
                    target_id not in fresh_targets
                    and target_id not in slowdown_memo
                ):
                    fresh_targets.add(target_id)
                    ping_order.append(target)
            if live:
                pending.append((client, source, source_bytes, live))
        if dead_skips and registry is not None:
            registry.counter("resilience.dead_target_skips").inc(dead_skips)
        if not pending:
            return
        # Pass 2: one slowdown batch; afterwards every live target is in
        # the per-interval memo, which pass 3 reads directly.
        self.estimate_slowdowns(ping_order)
        # Pass 3: grouped plan probes and byte budgets.  ``plan_info``
        # maps (partitioner id, target id) to (plan bytes, budget after
        # backhaul truncation, truncated flag); the crowded path keeps
        # budgets per pair.
        crowded_on = bool(self.crowded_servers)
        degraded = backhaul_factor < 1.0
        plan_info: dict[tuple[int, int], tuple[float, float]] = {}
        pair_clients: list[int] = []  # index into ``pending``
        pair_targets: list[EdgeServer] = []
        pair_needed: list[float] = []
        pair_plan_bytes: list[float] = []
        source_bytes_by_client: list[float] = []
        for client_index, (client, source, source_bytes, live) in enumerate(
            pending
        ):
            partitioner = self.partitioner_for(client.client_id)
            pid = id(partitioner)
            source_id = source.server_id
            source_crowded = crowded_on and source_id in self.crowded_servers
            source_bytes_by_client.append(source_bytes)
            for target in live:
                target_id = target.server_id
                key = (pid, target_id)
                info = plan_info.get(key)
                if info is None:
                    future_plan = partitioner.partition(
                        slowdown_memo[target_id]
                    )
                    plan_bytes = future_plan.server_bytes
                    needed = plan_bytes
                    if degraded:
                        needed = min(needed, backhaul_factor * plan_bytes)
                    info = (plan_bytes, needed)
                    plan_info[key] = info
                else:
                    # The scalar loop calls partition() once per
                    # (client, target); after the first probe per pair
                    # every later call is a plan-cache hit on the same
                    # quantized key.
                    partitioner.cache_hits += 1
                plan_bytes, needed = info
                if crowded_on and (
                    source_crowded or target_id in self.crowded_servers
                ):
                    needed = min(plan_bytes, self.crowded_byte_budget)
                    if degraded:
                        needed = min(needed, backhaul_factor * plan_bytes)
                pair_clients.append(client_index)
                pair_targets.append(target)
                pair_needed.append(needed)
                pair_plan_bytes.append(plan_bytes)
        # Vectorized transfer caps over every (client, target) pair of
        # the interval: np.minimum on float64 equals the scalar min().
        needed_arr = np.asarray(pair_needed, dtype=np.float64)
        source_arr = np.asarray(source_bytes_by_client, dtype=np.float64)[
            np.asarray(pair_clients, dtype=np.intp)
        ]
        sendable_arr = np.minimum(needed_arr, source_arr)
        # Pass 4: order-sensitive replay in (client, target) order.
        ttl_intervals = self.config.ttl_intervals
        traffic_meter = self.traffic_meter
        migrations = self.migrations
        trace = telemetry.trace if telemetry is not None else None
        counter_count = counter_bytes = None
        truncations = 0
        for pair_index, client_index in enumerate(pair_clients):
            client, source, _, _ = pending[client_index]
            target = pair_targets[pair_index]
            target_id = target.server_id
            client_id = client.client_id
            version = client.model_version
            needed = pair_needed[pair_index]
            if telemetry is not None and needed < pair_plan_bytes[pair_index]:
                truncations += 1
                trace.record(
                    FractionalTruncationEvent(
                        interval=interval,
                        client_id=client_id,
                        source_server=source.server_id,
                        target_server=target_id,
                        plan_bytes=pair_plan_bytes[pair_index],
                        budget_bytes=needed,
                    )
                )
            already = target.cached_bytes(client_id, version)
            if already >= needed - 1e-6:
                # Duplicate send avoided; just reset the TTL (§3.B.2).
                target.refresh_ttl(
                    client_id, interval, ttl_intervals, version
                )
                continue
            delta = float(sendable_arr[pair_index]) - already
            if delta <= 0:
                target.refresh_ttl(
                    client_id, interval, ttl_intervals, version
                )
                continue
            if faults_on and fault_schedule.migration_dropped(
                client_id, source.server_id, target_id, interval
            ):
                if telemetry is not None:
                    record_fault(
                        telemetry, interval, "migration_drop",
                        server_id=target_id, client_id=client_id,
                    )
                continue
            target.add_bytes(
                client_id, delta, interval, ttl_intervals, version
            )
            if traffic_meter is not None:
                traffic_meter.record(
                    interval, source.server_id, target_id, delta
                )
            migrations.append(
                MigrationRecord(
                    client_id=client_id,
                    source_server=source.server_id,
                    target_server=target_id,
                    nbytes=delta,
                    interval=interval,
                )
            )
            if registry is not None:
                if counter_count is None:
                    counter_count = registry.counter("migration.count")
                    counter_bytes = registry.counter("migration.bytes")
                counter_count.inc()
                # Float accumulation order matters: one inc per record,
                # in record order, exactly like the scalar loop.
                counter_bytes.inc(delta)
                trace.record(
                    MigrationEvent(
                        interval=interval,
                        client_id=client_id,
                        source_server=source.server_id,
                        target_server=target_id,
                        nbytes=delta,
                    )
                )
        if truncations and registry is not None:
            registry.counter("migration.fractional_truncations").inc(
                truncations
            )

    def _migrate_to_predicted(
        self,
        client: MobileClient,
        interval: int,
        predicted: tuple[float, float],
        targets: list[int] | None = None,
    ) -> list[MigrationRecord]:
        """Transfer layers toward one client's predicted next location.

        ``targets`` lets the batched caller hand in a precomputed
        ``servers_within(predicted, migration_radius_m)`` row.
        """
        if targets is None:
            targets = self.registry.servers_within(
                predicted, self.config.migration_radius_m
            )
        source = self.server(client.current_server)
        version = client.model_version
        source_bytes = source.cached_bytes(client.client_id, version)
        if source_bytes <= 0:
            return []  # nothing to send yet (client still uploading)
        backhaul_factor = (
            self.fault_schedule.backhaul_factor(interval)
            if self.fault_schedule is not None else 1.0
        )
        # Live targets are resolved first so all their GPU pings happen in
        # one batched slowdown prediction; the per-target transfer work
        # below draws no randomness, so the batched ping order equals the
        # scalar loop's order and same-seed runs are unchanged.
        live_targets: list[EdgeServer] = []
        for target_id in targets:
            if target_id == source.server_id:
                continue
            if not self.server_available(target_id, interval):
                # Dead servers get no future plans — migrating to them
                # would burn backhaul bytes into the void.
                if self.telemetry is not None:
                    self.telemetry.registry.counter(
                        "resilience.dead_target_skips"
                    ).inc()
                continue
            live_targets.append(self.server(target_id))
        slowdowns = self.estimate_slowdowns(live_targets)
        partition = self.partitioner_for(client.client_id).partition
        records: list[MigrationRecord] = []
        for target in live_targets:
            target_id = target.server_id
            # Future partitioning plan, with the *current* GPU workload of
            # the target (assumed stable over the next interval, §3.C.2).
            future_plan = partition(slowdowns[target_id])
            needed = self._byte_budget(
                source.server_id, target_id, future_plan.server_bytes
            )
            if backhaul_factor < 1.0:
                # Degraded backhaul: only a fraction of the plan fits in
                # this interval's transfer budget (fractional migration
                # under duress, same mechanism as crowded servers).
                needed = min(needed, backhaul_factor * future_plan.server_bytes)
            if (
                self.telemetry is not None
                and needed < future_plan.server_bytes
            ):
                self.telemetry.trace.record(
                    FractionalTruncationEvent(
                        interval=interval,
                        client_id=client.client_id,
                        source_server=source.server_id,
                        target_server=target_id,
                        plan_bytes=future_plan.server_bytes,
                        budget_bytes=needed,
                    )
                )
                self.telemetry.registry.counter(
                    "migration.fractional_truncations"
                ).inc()
            already = target.cached_bytes(client.client_id, version)
            if already >= needed - 1e-6:
                # Duplicate send avoided; just reset the TTL (§3.B.2).
                target.refresh_ttl(
                    client.client_id, interval, self.config.ttl_intervals,
                    version,
                )
                continue
            # Send as much as the source holds, up to what is needed.
            sendable = min(needed, source_bytes)
            delta = sendable - already
            if delta <= 0:
                target.refresh_ttl(
                    client.client_id, interval, self.config.ttl_intervals,
                    version,
                )
                continue
            if (
                self.fault_schedule is not None
                and self.fault_schedule.migration_dropped(
                    client.client_id, source.server_id, target_id, interval
                )
            ):
                # The transfer fails in flight: no bytes land, no traffic
                # is billed.  The master retries at the next interval's
                # proactive pass (the target still lacks the bytes).
                if self.telemetry is not None:
                    record_fault(
                        self.telemetry, interval, "migration_drop",
                        server_id=target_id, client_id=client.client_id,
                    )
                continue
            target.add_bytes(
                client.client_id, delta, interval, self.config.ttl_intervals,
                version,
            )
            if self.traffic_meter is not None:
                self.traffic_meter.record(
                    interval, source.server_id, target_id, delta
                )
            record = MigrationRecord(
                client_id=client.client_id,
                source_server=source.server_id,
                target_server=target_id,
                nbytes=delta,
                interval=interval,
            )
            records.append(record)
            self.migrations.append(record)
            if self.telemetry is not None:
                self.telemetry.registry.counter("migration.count").inc()
                self.telemetry.registry.counter("migration.bytes").inc(delta)
                self.telemetry.trace.record(
                    MigrationEvent(
                        interval=interval,
                        client_id=client.client_id,
                        source_server=source.server_id,
                        target_server=target_id,
                        nbytes=delta,
                    )
                )
        return records

    def expire_caches(self, interval: int) -> None:
        for server in self._servers.values():
            evicted = server.expire(interval)
            if self.telemetry is not None:
                for client_id in evicted:
                    self.telemetry.trace.record(
                        CacheEvictionEvent(
                            interval=interval,
                            server_id=server.server_id,
                            client_id=client_id,
                        )
                    )
