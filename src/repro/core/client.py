"""Mobile client state.

A client replays its trajectory, keeps the sliding window of recent
positions it reports to the master (the *current trajectory* of §3.B), and
remembers which edge server it is associated with.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.faults.schedule import DEFAULT_BACKOFF_CAP, backoff_intervals
from repro.mobility.trajectory import Trajectory
from repro.overload.breaker import CircuitBreaker


class MobileClient:
    """One trajectory-driven mobile user running a personal DNN model."""

    def __init__(self, client_id: int, trajectory: Trajectory, history: int) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self.client_id = client_id
        self.trajectory = trajectory
        self.history = history
        # Replay traces are immutable; caching the final index keeps the
        # per-step ``finished``/``advance`` checks off the len() chain.
        self._final_step = len(trajectory) - 1
        self._recent: deque[tuple[float, float]] = deque(maxlen=history)
        self.current_server: int | None = None
        self.step_index = -1
        # Model generation: bumped when the client retrains/replaces its
        # personal DNN (paper §I), invalidating all cached copies.
        self.model_version = 0
        # Upload retry state: consecutive failed upload windows and the
        # interval at which the next (backed-off) attempt is allowed.
        self.upload_failures = 0
        self.upload_resume_at = 0
        # Per-server circuit breakers (created lazily, overload layer).
        self._breakers: dict[int, CircuitBreaker] = {}

    def update_model(self) -> int:
        """Deploy a new model generation; returns the new version."""
        self.model_version += 1
        return self.model_version

    # ------------------------------------------------------------------
    # Upload retry/backoff (fault resilience)
    # ------------------------------------------------------------------
    def upload_allowed(self, interval: int) -> bool:
        """May the client attempt an upload this interval (not backing off)?"""
        return interval >= self.upload_resume_at

    def record_upload_drop(
        self, interval: int, cap: int = DEFAULT_BACKOFF_CAP
    ) -> int:
        """Register a failed upload window; returns the backoff delay.

        Consecutive failures back off exponentially (1, 2, 4, ...
        intervals), capped at ``cap``, so a flaky link never locks a
        client out of uploading for unbounded time.
        """
        self.upload_failures += 1
        delay = backoff_intervals(self.upload_failures, cap)
        self.upload_resume_at = interval + delay
        return delay

    def record_upload_success(self) -> None:
        """An upload window went through: reset the backoff."""
        self.upload_failures = 0
        self.upload_resume_at = 0

    # ------------------------------------------------------------------
    # Circuit breakers (overload protection)
    # ------------------------------------------------------------------
    def breaker_for(
        self,
        server_id: int,
        failure_threshold: int,
        open_intervals: int,
    ) -> CircuitBreaker:
        """This client's breaker for one server (created closed).

        Breaker state outlives associations: a client that bounced off a
        saturated server remembers it even after roaming away and back.
        """
        breaker = self._breakers.get(server_id)
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold, open_intervals)
            self._breakers[server_id] = breaker
        return breaker

    @property
    def finished(self) -> bool:
        return self.step_index >= self._final_step

    def advance(self) -> tuple[float, float] | None:
        """Move to the next trajectory point; None when the trace ended."""
        if self.step_index >= self._final_step:
            return None
        self.step_index += 1
        point = self.trajectory.points[self.step_index]
        position = (float(point[0]), float(point[1]))
        self._recent.append(position)
        return position

    @property
    def position(self) -> tuple[float, float]:
        if self.step_index < 0:
            raise RuntimeError("client has not advanced yet")
        point = self.trajectory.points[self.step_index]
        return (float(point[0]), float(point[1]))

    def recent_window(self) -> np.ndarray | None:
        """The last ``history`` positions, or None if not yet enough."""
        if len(self._recent) < self.history:
            return None
        return np.array(self._recent)
