"""Simulation harness: the paper's evaluation scenarios (§4).

* :mod:`repro.simulation.query_loop` — the continuous query/upload
  integration shared by all scenarios (0.5 s inter-query gap workload).
* :mod:`repro.simulation.single_client` — Fig 1, Fig 7, Table II: one
  client handing off between two edge servers.
* :mod:`repro.simulation.large_scale` — Fig 9, §4.B.4, Fig 10: a whole
  region of mobile users, proactive migration, backhaul traffic.
"""

from repro.simulation.query_loop import (
    QueryRecord,
    WindowOutcome,
    run_local_window,
    run_query_window,
)
from repro.simulation.single_client import (
    HandoffResult,
    UploadThroughput,
    simulate_handoff,
    upload_window_throughput,
)
from repro.simulation.large_scale import (
    LargeScaleResult,
    SimulationSettings,
    fast_simulate_enabled,
    reference_simulate,
    run_large_scale,
    set_fast_simulate,
)
from repro.simulation.multi_handoff import (
    HandoffChainResult,
    simulate_handoff_chain,
)
from repro.simulation.sharding import (
    ShardPlan,
    plan_shards,
    run_large_scale_sharded,
    shard_seed,
)
from repro.simulation.checkpoint import (
    CheckpointStore,
    ShardRecord,
    run_fingerprint,
)
from repro.simulation.supervisor import (
    ShardError,
    ShardFailure,
    SupervisionReport,
    SupervisorConfig,
    retry_delay,
    supervise,
)

__all__ = [
    "QueryRecord",
    "WindowOutcome",
    "run_local_window",
    "run_query_window",
    "HandoffResult",
    "UploadThroughput",
    "simulate_handoff",
    "upload_window_throughput",
    "SimulationSettings",
    "LargeScaleResult",
    "run_large_scale",
    "fast_simulate_enabled",
    "set_fast_simulate",
    "reference_simulate",
    "ShardPlan",
    "plan_shards",
    "run_large_scale_sharded",
    "shard_seed",
    "CheckpointStore",
    "ShardRecord",
    "run_fingerprint",
    "ShardError",
    "ShardFailure",
    "SupervisionReport",
    "SupervisorConfig",
    "retry_delay",
    "supervise",
    "HandoffChainResult",
    "simulate_handoff_chain",
]
