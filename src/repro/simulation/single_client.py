"""Single-client handoff experiments (§4.A: Fig 1, Fig 7, Table II).

One client offloads to edge server A, then changes to edge server B.  With
IONN (no proactive migration) the client re-uploads from scratch at B and
query latency spikes; with PerDNN, B already holds the first
``premigrated_bytes`` of the upload schedule and the spike shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PerDNNConfig
from repro.partitioning.partitioner import DNNPartitioner
from repro.simulation.query_loop import QueryRecord


@dataclass(frozen=True)
class HandoffResult:
    """Per-query latencies across a server change."""

    latencies: tuple[float, ...]  # seconds, per query
    switch_query_index: int  # first query served by the new server
    migrated_bytes: float
    peak_latency_after_switch: float

    @property
    def num_queries(self) -> int:
        return len(self.latencies)


def simulate_handoff(
    partitioner: DNNPartitioner,
    config: PerDNNConfig,
    num_queries: int = 40,
    switch_after: int = 20,
    premigrated_bytes: float = 0.0,
    server_slowdown: float = 1.0,
) -> HandoffResult:
    """Execute ``num_queries`` queries with a server change after
    ``switch_after`` of them.

    Server A starts empty (the client uploads incrementally, as in IONN);
    at the switch, server B starts with ``premigrated_bytes`` of the upload
    schedule already cached (0 reproduces the paper's IONN baseline in
    Fig 1; >0 reproduces the PM curves of Fig 7).
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if not 0 < switch_after < num_queries:
        raise ValueError("switch_after must fall inside the query sequence")
    result = partitioner.partition(server_slowdown)
    schedule = result.schedule
    total = schedule.total_bytes
    premigrated_bytes = min(premigrated_bytes, total)
    byte_rate = config.network.uplink_bps / 8.0
    latencies: list[float] = []
    received = 0.0
    clock = 0.0
    for index in range(num_queries):
        if index == switch_after:
            # Handoff: the new server holds only the premigrated prefix.
            received = premigrated_bytes
        latency = schedule.latency_after_bytes(received)
        latencies.append(latency)
        elapsed = latency + config.query_gap_seconds
        clock += elapsed
        received = min(total, received + byte_rate * elapsed)
    after_switch = latencies[switch_after:]
    return HandoffResult(
        latencies=tuple(latencies),
        switch_query_index=switch_after,
        migrated_bytes=premigrated_bytes,
        peak_latency_after_switch=max(after_switch),
    )


@dataclass(frozen=True)
class UploadThroughput:
    """Table II: queries executed while a full model upload would run."""

    upload_seconds: float
    miss_queries: int  # incremental upload from scratch (IONN)
    hit_queries: int  # all layers already present (PerDNN hit)


def upload_window_throughput(
    partitioner: DNNPartitioner,
    config: PerDNNConfig,
    server_slowdown: float = 1.0,
) -> UploadThroughput:
    """Queries executed during the model-upload window, miss vs hit."""
    from repro.simulation.query_loop import run_query_window

    result = partitioner.partition(server_slowdown)
    schedule = result.schedule
    upload_seconds = schedule.total_bytes * 8.0 / config.network.uplink_bps
    miss = run_query_window(
        schedule,
        start_bytes=0.0,
        uplink_bps=config.network.uplink_bps,
        duration=upload_seconds,
        query_gap=config.query_gap_seconds,
        uploading=True,
    )
    hit = run_query_window(
        schedule,
        start_bytes=schedule.total_bytes,
        uplink_bps=config.network.uplink_bps,
        duration=upload_seconds,
        query_gap=config.query_gap_seconds,
        uploading=False,
    )
    return UploadThroughput(
        upload_seconds=upload_seconds,
        miss_queries=miss.count,
        hit_queries=hit.count,
    )
