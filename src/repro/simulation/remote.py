"""Remote shard dispatch: run sharded-simulation jobs on other machines.

The supervisor isolates every shard attempt behind a one-shot channel
and already treats "the channel died" as a crash to retry — so remote
execution is purely a transport concern.  This module supplies both
ends of that transport:

* :class:`RemoteExecutor` — one supervision slot that ships each attempt
  to a ``repro shard-worker`` listener over TCP and plugs into the same
  ``launch``/``receive``/``kill`` seam as the local process executor, so
  retries, per-shard timeouts, chaos, and quarantine behave identically
  whether a shard ran locally, remotely, or on a mixed fleet (the
  equivalence suite pins byte-identical telemetry across all three).
* :func:`serve` — the listener: accepts one connection per shard
  attempt, forks a disposable handler process per request (a chaos
  ``os._exit`` or a real crash kills only that handler; the supervisor
  observes the dropped connection as ``CAUSE_CRASH`` and retries), runs
  the job, and streams the result back.

Wire format: each direction carries exactly one frame — an 8-byte
big-endian unsigned length followed by that many bytes of pickle.  The
request frame is ``(runner, job, attempt, chaos)``; the response frame
is the same ``(status, payload)`` pair the local worker sends over its
pipe.  A short read at any point means the peer died and surfaces as
``EOFError`` (crash semantics).  Spilled datasets are hydrated on the
executor side before pickling, so the listener never needs access to
the driver's filesystem.

**Security**: frames are *pickle* — deserializing one executes arbitrary
code by design (the request literally carries the runner callable).
Run shard workers only on trusted hosts over trusted links (a lab
switch, an SSH tunnel, a VPN); never expose the port to an untrusted
network.  This mirrors the trust model of ``multiprocessing``'s own
remote connections.
"""

from __future__ import annotations

import multiprocessing
import pickle
import socket
import struct
from dataclasses import replace
from typing import Any, Callable

from repro.simulation.checkpoint import ShardDatasetStore

#: Default ``repro shard-worker`` port (unassigned range, easy to grep).
DEFAULT_PORT = 7077

_HEADER = struct.Struct(">Q")

#: Refuse frames past this size (64 GiB) — corrupted headers otherwise
#: turn into absurd allocations before the short read is noticed.
_MAX_FRAME = 1 << 36


def parse_address(text: str) -> tuple[str, int]:
    """``"host:port"`` (or bare ``"host"`` using the default port)."""
    host, _, port_text = text.rpartition(":")
    if not host:
        return text, DEFAULT_PORT
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid shard-worker address {text!r}: expected host:port"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(
            f"invalid shard-worker address {text!r}: port out of range"
        )
    return host, port


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise EOFError("peer closed the connection mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Write one length-prefixed pickle frame."""
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def recv_frame(sock: socket.socket) -> Any:
    """Read one length-prefixed pickle frame; ``EOFError`` on a dead
    peer (which the supervisor maps to crash-and-retry)."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > _MAX_FRAME:
        raise EOFError(f"frame length {length} exceeds the sanity cap")
    return pickle.loads(_recv_exact(sock, length))


def _hydrate(job: Any) -> Any:
    """Inline a spilled dataset so the listener never touches our disk."""
    path = getattr(job, "dataset_path", None)
    if path is None or getattr(job, "dataset", None) is not None:
        return job
    return replace(
        job, dataset=ShardDatasetStore.read(path), dataset_path=None
    )


class RemoteExecutor:
    """One supervision slot dispatching attempts to a shard worker.

    Each attempt opens a fresh connection (one-shot, exactly like the
    local executor's one-shot pipe+process), sends the request frame,
    and hands the socket to the supervisor's wait loop.  A worker that
    is down, unreachable, or drops the connection surfaces as
    ``CAUSE_CRASH`` — the supervisor retries with backoff on whichever
    slot frees up first, so a dead remote degrades a mixed fleet instead
    of failing the run.

    One executor is one slot: the listener forks a handler per request,
    but this driver serializes its own dispatch per address.  Pass the
    same address several times to run several shards there concurrently.
    """

    def __init__(self, address: str, *, connect_timeout: float = 10.0):
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout

    def launch(self, runner, job, attempt, chaos) -> Any:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            return _DeadAttempt(self.describe(), exc)
        try:
            sock.settimeout(None)
            send_frame(sock, (runner, _hydrate(job), attempt, chaos))
        except OSError as exc:
            sock.close()
            return _DeadAttempt(self.describe(), exc)
        return RemoteAttempt(sock, self.describe())

    def describe(self) -> str:
        return f"remote {self.host}:{self.port}"


class RemoteAttempt:
    """Handle for one shard attempt in flight on a remote worker."""

    def __init__(self, sock: socket.socket, peer: str):
        self._sock = sock
        self._peer = peer

    @property
    def waitable(self):
        return self._sock  # mp_connection.wait accepts socket objects

    def receive(self):
        return recv_frame(self._sock)

    def finish(self) -> None:
        self._sock.close()

    def kill(self) -> None:
        # Closing the socket is all the supervisor can do from here; the
        # remote handler dies on its next write (broken pipe).
        self._sock.close()

    def crash_detail(self) -> str:
        return (
            f"{self._peer} closed the connection before delivering "
            "a result"
        )


class _DeadAttempt:
    """A launch that failed before a connection existed.

    Presents an already-readable waitable whose ``receive`` raises
    ``EOFError``, so the failure flows through the supervisor's normal
    crash-retry-quarantine path instead of blowing up the launch loop.
    """

    def __init__(self, peer: str, error: OSError):
        self._peer = peer
        self._error = error
        reader, writer = socket.socketpair()
        writer.close()  # reader now polls readable (EOF)
        self._reader = reader

    @property
    def waitable(self):
        return self._reader

    def receive(self):
        raise EOFError(str(self._error))

    def finish(self) -> None:
        self._reader.close()

    def kill(self) -> None:
        self._reader.close()

    def crash_detail(self) -> str:
        return f"{self._peer} is unreachable: {self._error}"


def _handle_request(sock: socket.socket) -> None:
    """Run one shard attempt and ship ``(status, payload)`` back."""
    try:
        try:
            runner, job, attempt, chaos = recv_frame(sock)
        except (EOFError, OSError):
            return  # client gave up before sending a full request
        if chaos is not None:
            chaos.inject(job.index, attempt)
        try:
            result = runner(job)
        except Exception as exc:  # noqa: BLE001 - reported in-band
            payload = ("error", f"{type(exc).__name__}: {exc}")
        else:
            payload = ("ok", result)
        try:
            send_frame(sock, payload)
        except OSError:
            pass  # supervisor timed us out and closed its end
    finally:
        sock.close()


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    max_requests: int | None = None,
    on_ready: Callable[[str, int], None] | None = None,
) -> int:
    """Run a shard-worker listener; returns the request count served.

    Accepts one connection per shard attempt and — where ``fork`` is
    available — runs each handler in a disposable child process, so a
    chaos injection or a hard crash inside one shard never takes the
    listener down.  ``port=0`` binds an ephemeral port; ``on_ready``
    fires with the actual ``(host, port)`` once listening (the CLI
    prints it so scripts can scrape the address).  ``max_requests``
    bounds the accept loop for tests and smokes.
    """
    listener = socket.create_server((host, port))
    bound_port = listener.getsockname()[1]
    if on_ready is not None:
        on_ready(host, bound_port)
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork") if can_fork else None
    children: list[Any] = []
    served = 0
    try:
        while max_requests is None or served < max_requests:
            conn, _ = listener.accept()
            served += 1
            if ctx is None:
                _handle_request(conn)  # no fork: chaos kills the listener
                continue
            process = ctx.Process(
                target=_handle_request, args=(conn,), daemon=True
            )
            process.start()
            conn.close()
            children = [c for c in children if c.is_alive()] + [process]
    finally:
        listener.close()
        for child in children:
            child.join(timeout=30.0)
    return served


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """Entry point for ``repro shard-worker`` (thin wrapper)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="run a shard-worker listener for remote dispatch"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--max-requests", type=int, default=None,
        help="exit after serving this many shard attempts",
    )
    args = parser.parse_args(argv)

    def announce(host: str, bound: int) -> None:
        print(f"shard-worker listening on {host}:{bound}", flush=True)

    served = serve(
        args.host, args.port,
        max_requests=args.max_requests, on_ready=announce,
    )
    print(f"shard-worker served {served} request(s)", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
