"""Struct-of-arrays client state and vectorized interval passes.

The large-scale simulator's reference loop touches every client with a
chain of per-client Python calls (``cell_of`` -> dict probe -> hysteresis
comparison).  At city scale that chain *is* the runtime, so the fast path
(:func:`repro.simulation.large_scale.set_fast_simulate`) keeps client
state mirrored in flat numpy arrays and turns the movement/association
phase into a handful of array passes:

* positions of every active client in one ``(n, 2)`` float64 buffer;
* current association in one int64 array (-1 = unassociated);
* one vectorized ``cells_of`` + ``servers_for_cells`` pass proposing the
  next association for every client at once.

Bit-exactness contract: every array pass reproduces the scalar helpers'
arithmetic operation for operation (and falls back to the scalar helper
outright for the rare hysteresis tie-breaks), so a fast run exports the
same telemetry bytes as the reference loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.association import decide_association
from repro.core.client import MobileClient
from repro.geo.wifi import EdgeServerRegistry


class ClientArrays:
    """Flat per-client state mirror for the vectorized interval passes.

    Rows are indexed by ``client_id`` (which equals the client's index in
    the driver's client list).  ``refresh`` reloads the interval's active
    rows from the client objects at the top of each interval — client
    objects stay the source of truth (faults and overload mutate them
    mid-interval), the arrays are the vector view the batched passes
    consume.  ``set_association`` is for callers that prefer to push
    updates eagerly instead of rescanning.
    """

    def __init__(self, num_clients: int) -> None:
        self.positions = np.zeros((num_clients, 2), dtype=float)
        self.current_server = np.full(num_clients, -1, dtype=np.int64)

    @classmethod
    def from_clients(cls, clients: list[MobileClient]) -> "ClientArrays":
        arrays = cls(len(clients))
        for client in clients:
            if client.current_server is not None:
                arrays.current_server[client.client_id] = client.current_server
        return arrays

    def refresh(
        self, active: list[MobileClient], positions: list[np.ndarray]
    ) -> np.ndarray:
        """Load this interval's positions/associations; returns the active
        row indices (client ids) as an int array."""
        ids = np.fromiter(
            (client.client_id for client in active),
            dtype=np.int64,
            count=len(active),
        )
        for client, position in zip(active, positions):
            row = client.client_id
            self.positions[row, 0] = position[0]
            self.positions[row, 1] = position[1]
            self.current_server[row] = (
                -1 if client.current_server is None else client.current_server
            )
        return ids

    def set_association(self, client_id: int, server_id: int | None) -> None:
        self.current_server[client_id] = -1 if server_id is None else server_id


def propose_associations(
    registry: EdgeServerRegistry,
    positions: np.ndarray,
    current_servers: np.ndarray,
    hysteresis_m: float,
) -> np.ndarray:
    """Vectorized :func:`~repro.core.association.decide_association`.

    ``positions`` is ``(n, 2)``; ``current_servers`` is ``(n,)`` int64
    with -1 for unassociated clients.  Returns the proposed server id per
    client (-1 only when both candidate and current are absent).  The
    decision table mirrors the scalar function:

    * no current server -> take the covering cell's candidate;
    * no candidate, or candidate == current -> keep current;
    * zero hysteresis -> take the candidate;
    * otherwise defer to the scalar helper for the exact distance
      comparison (identical float ops, identical result).
    """
    if hysteresis_m < 0:
        raise ValueError("hysteresis must be non-negative")
    candidates = registry.servers_at_points(positions)
    current = np.asarray(current_servers, dtype=np.int64)
    proposals = candidates.copy()
    keep = (current >= 0) & ((candidates < 0) | (candidates == current))
    proposals[keep] = current[keep]
    if hysteresis_m > 0.0:
        contested = (current >= 0) & (candidates >= 0) & (candidates != current)
        for i in np.nonzero(contested)[0]:
            decided = decide_association(
                registry,
                (positions[i, 0], positions[i, 1]),
                int(current[i]),
                hysteresis_m,
            )
            proposals[i] = -1 if decided is None else decided
    return proposals
