"""Shard supervision: retries, timeouts, quarantine, typed failures.

:func:`supervise` replaces the fire-and-forget ``executor.map`` the
sharded city-scale driver used to fan shards out with: each shard attempt
runs in its **own disposable worker process** (or in-process when nothing
needs isolation), and the supervisor

* detects crashes (abrupt worker exit — segfault, OOM kill, chaos) and
  hangs (per-shard wall-clock timeout) without taking the run down;
* retries a failed shard with capped-exponential backoff in a *fresh*
  process — the shard's deterministic seed makes the retried execution
  byte-identical to a first-try success, so failures never leak into the
  merged telemetry;
* quarantines a shard after ``max_attempts`` failures and either fails
  fast with a typed :class:`ShardError` (shard index + per-attempt
  causes, not a raw multiprocessing traceback) or — under
  ``allow_partial`` — drops it and lets the caller account for the
  missing coverage;
* reports every completed shard through ``on_result`` the moment it
  lands, which is where checkpoint spilling hooks in.

A :class:`~repro.faults.chaos.WorkerChaos` schedule attached to the
:class:`SupervisorConfig` sabotages worker attempts deterministically,
which is how the chaos test suites and the CI smoke pin the invariant
that supervised runs with injected worker failures export the same bytes
as clean runs.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable

from repro.faults.chaos import WorkerChaos

#: Failure causes carried by :class:`ShardFailure`.
CAUSE_CRASH = "crash"  # worker process died without delivering a result
CAUSE_TIMEOUT = "timeout"  # worker exceeded the per-shard deadline
CAUSE_ERROR = "error"  # shard raised an exception (in-process or worker)

#: Poll granularity of the supervision loop (seconds).  Only affects how
#: promptly completions/timeouts are noticed, never the results.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class ShardFailure:
    """One failed attempt of one shard."""

    shard_index: int
    attempt: int  # 0-based attempt number that failed
    cause: str  # CAUSE_CRASH | CAUSE_TIMEOUT | CAUSE_ERROR
    detail: str

    def describe(self) -> str:
        return (
            f"attempt {self.attempt + 1}: {self.cause}"
            + (f" ({self.detail})" if self.detail else "")
        )


class ShardError(RuntimeError):
    """A shard exhausted its retry budget (poison shard).

    Carries the shard index and the per-attempt failure history so
    callers (and the CLI) can report precisely what died and why, instead
    of surfacing a raw multiprocessing traceback.
    """

    def __init__(self, shard_index: int, failures: tuple[ShardFailure, ...]):
        self.shard_index = shard_index
        self.failures = tuple(failures)
        self.cause = failures[-1].cause if failures else CAUSE_ERROR
        history = "; ".join(f.describe() for f in failures)
        super().__init__(
            f"shard {shard_index} quarantined after "
            f"{len(failures)} failed attempt(s): {history}"
        )


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout/quarantine policy for one supervised run."""

    #: Executions (1 + retries) granted to each shard before quarantine.
    max_attempts: int = 3
    #: Per-shard wall-clock cap; None = no timeout (a hung worker then
    #: blocks its slot forever, exactly like the unsupervised pool did).
    timeout_seconds: float | None = None
    #: Capped-exponential backoff between retries of one shard:
    #: ``min(cap, base * 2**(retry - 1))`` seconds.
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    #: Quarantined shards: fail fast (False) or degrade to a partial
    #: merge with explicit coverage accounting (True).
    allow_partial: bool = False
    #: Deterministic worker sabotage (tests/CI); None = no chaos.
    chaos: WorkerChaos | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_cap_seconds < 0:
            raise ValueError("backoff_cap_seconds must be >= 0")

    @property
    def needs_processes(self) -> bool:
        """Must shard attempts run in disposable worker processes?

        Chaos kills a whole process and timeouts need something the
        supervisor can terminate, so either forces process isolation even
        for a single worker.
        """
        if self.timeout_seconds is not None:
            return True
        return self.chaos is not None and not self.chaos.is_noop


def retry_delay(retry: int, base: float, cap: float) -> float:
    """Capped-exponential delay before retry number ``retry`` (1-based)."""
    if retry < 1:
        raise ValueError("retry must be >= 1")
    return min(cap, base * (2.0 ** (retry - 1)))


@dataclass
class SupervisionReport:
    """What happened around the results: retries and quarantines."""

    failures: dict[int, tuple[ShardFailure, ...]] = field(default_factory=dict)
    quarantined: tuple[int, ...] = ()
    retries: int = 0


def _process_entry(conn, runner, job, attempt, chaos) -> None:
    """Worker-process main: (maybe) act out chaos, run the shard, ship
    the result back over the pipe.  Anything abnormal — an os._exit, a
    real crash, an exception — is observed by the parent as pipe EOF or
    process death; exceptions are reported in-band so the parent can
    distinguish a shard *error* from a worker *crash*."""
    if chaos is not None:
        chaos.inject(job.index, attempt)
    try:
        result = runner(job)
    except Exception as exc:  # noqa: BLE001 - reported to the supervisor
        payload = ("error", f"{type(exc).__name__}: {exc}")
    else:
        payload = ("ok", result)
    conn.send(payload)
    conn.close()


def _default_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class LocalProcessExecutor:
    """One supervision slot backed by disposable local worker processes.

    This is the default transport: each :meth:`launch` forks/spawns a
    fresh process running :func:`_process_entry` and returns a
    :class:`LocalAttempt` handle.  A slot runs at most one attempt at a
    time — the supervisor builds one executor per requested worker.

    The executor seam (``launch(runner, job, attempt, chaos) -> handle``
    where the handle exposes ``waitable``/``receive``/``finish``/
    ``kill``/``crash_detail``) is what remote dispatch plugs into: see
    :class:`repro.simulation.remote.RemoteExecutor` for the TCP
    implementation with identical retry/timeout/quarantine semantics.
    """

    def __init__(self, mp_context=None):
        self._ctx = mp_context or _default_context()

    def launch(self, runner, job, attempt, chaos) -> "LocalAttempt":
        receiver, sender = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_process_entry,
            args=(sender, runner, job, attempt, chaos),
        )
        process.start()
        sender.close()
        return LocalAttempt(process, receiver)

    def describe(self) -> str:
        return "local"


class LocalAttempt:
    """Handle for one in-flight local worker process."""

    def __init__(self, process, receiver):
        self._process = process
        self._receiver = receiver

    @property
    def waitable(self):
        """Object accepted by :func:`multiprocessing.connection.wait`."""
        return self._receiver

    def receive(self):
        """The worker's ``(status, payload)``; raises ``EOFError`` /
        ``OSError`` when the worker died before delivering one."""
        return self._receiver.recv()

    def finish(self) -> None:
        """Reap a worker that delivered (or visibly died)."""
        self._process.join()
        self._receiver.close()

    def kill(self) -> None:
        """Tear down a worker that must not deliver (timeout, abort)."""
        self._process.terminate()
        self._process.join()
        self._receiver.close()

    def crash_detail(self) -> str:
        return (
            f"worker exited with code {self._process.exitcode} "
            "before delivering a result"
        )


@dataclass
class _Active:
    """One in-flight worker attempt."""

    job: Any
    attempt: int
    handle: Any
    executor: Any
    deadline: float | None


class _Tracker:
    """Shared retry/quarantine bookkeeping for both execution modes."""

    def __init__(self, config: SupervisorConfig):
        self.config = config
        self.failures: dict[int, list[ShardFailure]] = {}
        self.quarantined: list[int] = []
        self.retries = 0

    def record_failure(
        self, index: int, attempt: int, cause: str, detail: str
    ) -> float | None:
        """Register one failed attempt.

        Returns the backoff delay (seconds) before the next attempt, or
        None when the shard is now quarantined.  Raises
        :class:`ShardError` on quarantine unless partial merges are
        allowed.
        """
        history = self.failures.setdefault(index, [])
        history.append(ShardFailure(index, attempt, cause, detail))
        if len(history) >= self.config.max_attempts:
            self.quarantined.append(index)
            if not self.config.allow_partial:
                raise ShardError(index, tuple(history))
            return None
        self.retries += 1
        return retry_delay(
            len(history),
            self.config.backoff_base_seconds,
            self.config.backoff_cap_seconds,
        )

    def report(self) -> SupervisionReport:
        return SupervisionReport(
            failures={
                index: tuple(history)
                for index, history in sorted(self.failures.items())
            },
            quarantined=tuple(sorted(self.quarantined)),
            retries=self.retries,
        )


def _supervise_inprocess(
    jobs, runner, config: SupervisorConfig, deliver
) -> _Tracker:
    """Serial fallback when nothing needs process isolation.

    Retry/quarantine semantics are identical to the process mode — a
    retried shard re-runs the same deterministic job, so the two modes
    produce byte-identical results (pinned by the equivalence suites).
    """
    tracker = _Tracker(config)
    for job in jobs:
        attempt = 0
        while True:
            try:
                result = runner(job)
            except Exception as exc:  # noqa: BLE001 - typed + retried
                delay = tracker.record_failure(
                    job.index, attempt, CAUSE_ERROR,
                    f"{type(exc).__name__}: {exc}",
                )
                if delay is None:
                    break  # quarantined under allow_partial
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
            else:
                deliver(job.index, result)
                break
    return tracker


def _supervise_processes(
    jobs, runner, config: SupervisorConfig, executors, deliver
) -> _Tracker:
    """Fan shard attempts out over executor slots.

    Each element of ``executors`` is one concurrency slot (a
    :class:`LocalProcessExecutor`, a remote executor, or any object with
    the same ``launch`` contract); a slot holds at most one in-flight
    attempt.  Which slot runs which shard never affects the results —
    shards are deterministic and the merge is order-independent — so
    local, remote, and mixed fleets export identical bytes.
    """
    tracker = _Tracker(config)
    # (ready_at, shard index, attempt, job): retries re-enter with a
    # backoff timestamp; launch order prefers earliest-ready then lowest
    # shard index.  Scheduling order never affects results — shards are
    # deterministic and the merge is order-independent.
    pending: list[tuple[float, int, int, Any]] = [
        (0.0, job.index, 0, job) for job in jobs
    ]
    active: dict[Any, _Active] = {}
    free: list[Any] = list(executors)

    def launch(job, attempt) -> None:
        # FIFO slot rotation: a slot that just failed an attempt (e.g. an
        # unreachable remote) re-enters at the back, so the retry prefers
        # whichever other slot freed up first instead of bouncing off the
        # same dead transport until quarantine.
        executor = free.pop(0)
        handle = executor.launch(runner, job, attempt, config.chaos)
        deadline = (
            time.monotonic() + config.timeout_seconds
            if config.timeout_seconds is not None
            else None
        )
        active[handle.waitable] = _Active(
            job, attempt, handle, executor, deadline
        )

    def fail(entry: _Active, cause: str, detail: str) -> None:
        delay = tracker.record_failure(
            entry.job.index, entry.attempt, cause, detail
        )
        if delay is not None:
            pending.append(
                (
                    time.monotonic() + delay,
                    entry.job.index,
                    entry.attempt + 1,
                    entry.job,
                )
            )

    def release(entry: _Active) -> None:
        free.append(entry.executor)

    try:
        while pending or active:
            now = time.monotonic()
            pending.sort(key=lambda entry: (entry[0], entry[1]))
            while pending and free and pending[0][0] <= now:
                _, _, attempt, job = pending.pop(0)
                launch(job, attempt)
            if not active:
                # Everything runnable is backing off; sleep to the
                # earliest retry timestamp.
                time.sleep(max(0.0, min(pending[0][0] - now, _POLL_SECONDS)))
                continue
            ready = mp_connection.wait(list(active), timeout=_POLL_SECONDS)
            for waitable in ready:
                entry = active.pop(waitable)
                try:
                    status, payload = entry.handle.receive()
                except (EOFError, OSError):
                    # Abrupt worker death: chaos kill, OOM, segfault, a
                    # remote worker dropping the connection.  Reap first
                    # so the crash detail can see the exit code.
                    entry.handle.finish()
                    release(entry)
                    fail(entry, CAUSE_CRASH, entry.handle.crash_detail())
                    continue
                entry.handle.finish()
                release(entry)
                if status == "ok":
                    deliver(entry.job.index, payload)
                else:
                    fail(entry, CAUSE_ERROR, payload)
            now = time.monotonic()
            for waitable, entry in list(active.items()):
                if entry.deadline is not None and now >= entry.deadline:
                    active.pop(waitable)
                    entry.handle.kill()
                    release(entry)
                    fail(
                        entry, CAUSE_TIMEOUT,
                        f"no result within {config.timeout_seconds:g}s; "
                        "worker terminated",
                    )
    finally:
        # Fail-fast (ShardError) or an interrupt: reap every in-flight
        # worker so nothing leaks past the supervisor.
        for entry in active.values():
            entry.handle.kill()
    return tracker


def supervise(
    jobs,
    runner: Callable[[Any], Any],
    *,
    workers: int = 1,
    config: SupervisorConfig | None = None,
    mp_context=None,
    on_result: Callable[[int, Any], None] | None = None,
    keep_results: bool = True,
    executors=None,
) -> tuple[dict[int, Any], SupervisionReport]:
    """Run every job under supervision; returns (results, report).

    ``jobs`` must expose an ``index`` attribute (the shard index);
    ``runner(job)`` produces the shard result.  ``on_result`` fires in
    the supervisor process as each shard completes (checkpoint spilling);
    with ``keep_results=False`` delivered results are dropped afterwards
    — ``results[index]`` is then ``None`` — so huge runs never hold every
    shard's telemetry in memory at once.

    ``executors`` overrides the transport: a sequence of slot objects
    (each runs one attempt at a time) replacing the default fleet of
    ``workers`` :class:`LocalProcessExecutor` slots.  Passing executors
    always engages the slot loop — remote slots need real dispatch even
    when one local worker alone would have run in-process.

    Raises :class:`ShardError` the moment any shard exhausts its attempts
    (unless ``config.allow_partial``); already-completed shards will have
    been delivered through ``on_result`` first.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    config = config or SupervisorConfig()
    jobs = sorted(jobs, key=lambda job: job.index)
    results: dict[int, Any] = {}

    def deliver(index: int, result: Any) -> None:
        if on_result is not None:
            on_result(index, result)
        results[index] = result if keep_results else None

    if executors is None and workers == 1 and not config.needs_processes:
        tracker = _supervise_inprocess(jobs, runner, config, deliver)
    else:
        if executors is None:
            ctx = mp_context or _default_context()
            executors = [LocalProcessExecutor(ctx) for _ in range(workers)]
        if not executors:
            raise ValueError("at least one executor slot is required")
        tracker = _supervise_processes(
            jobs, runner, config, executors, deliver
        )
    return results, tracker.report()
