"""Large-scale smart-city simulation (§4.B: Fig 9, §4.B.4, Fig 10).

Replays every user of a trajectory dataset simultaneously.  Each interval:

1. clients move to their next trace point and (re-)associate with the edge
   server of their hex cell — each association to a *different* server is a
   potential cold start;
2. server GPUs advance their contention state under the current client
   load;
3. every client runs its query loop for one interval, uploading missing
   layers in the background (its plan comes from the master's GPU-aware
   partitioner);
4. under the PerDNN policy the master predicts each client's next location
   and proactively migrates layers to all servers within the migration
   radius (fractionally for crowded servers);
5. cached models past their TTL are evicted.

Metrics follow the paper: cold-start hits/misses and the number of queries
executed during the interval right after each association (Fig 9), plus
per-server per-interval backhaul traffic (§4.B.4, Fig 10).
"""

from __future__ import annotations

from collections.abc import Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.core.association import decide_association
from repro.core.client import MobileClient
from repro.core.config import PerDNNConfig
from repro.core.master import MasterServer, MigrationPolicy
from repro.core.routing import routed_tensors, routing_overhead_seconds
from repro.estimation.estimator import ContentionEstimator
from repro.faults import FaultProfile, FaultSchedule, record_fault
from repro.geo.hexgrid import HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.mobility.predictor import PointPredictor
from repro.mobility.svr import SVRPredictor
from repro.mobility.trajectory import TrajectoryDataset
from repro.network.traffic import TrafficMeter, TrafficSummary
from repro.overload import (
    AdmissionController,
    OverloadConfig,
    SheddingPolicy,
    record_breaker_transition,
)
from repro.partitioning.partitioner import DNNPartitioner
from repro.profiling.profiler import generate_contention_dataset
from repro.simulation.query_loop import (
    QUERY_LATENCY_BUCKETS,
    _steady_query_count,
    run_local_window,
    run_query_window,
)
from repro.simulation.vectorized import ClientArrays, propose_associations
from repro.telemetry import (
    AssociationEvent,
    ColdStartEvent,
    Histogram,
    NullEventTrace,
    QueryWindowEvent,
    Telemetry,
)

#: Global fast-path switch for the interval loop, mirroring
#: :data:`repro.ml.tree._FAST_PREDICT`.  True routes movement/association
#: through the struct-of-arrays passes and query windows through the
#: memoized steady-state integrator; False replays the original scalar
#: loop everywhere.  Both paths export byte-identical telemetry — the
#: equivalence tests pin them against each other.
_FAST_SIMULATE = True


def fast_simulate_enabled() -> bool:
    """Is the vectorized interval loop active?"""
    return _FAST_SIMULATE


def set_fast_simulate(enabled: bool) -> bool:
    """Enable/disable the vectorized loop; returns the previous setting."""
    global _FAST_SIMULATE
    previous = _FAST_SIMULATE
    _FAST_SIMULATE = bool(enabled)
    return previous


@contextmanager
def reference_simulate():
    """Force the scalar reference interval loop within the block.

    Used by the equivalence tests and by ``repro bench`` to time the
    pre-vectorization reference on identical inputs.
    """
    previous = set_fast_simulate(False)
    try:
        yield
    finally:
        set_fast_simulate(previous)


@dataclass(frozen=True)
class SimulationSettings:
    """Per-run knobs of the large-scale simulation."""

    policy: MigrationPolicy
    migration_radius_m: float = 100.0
    replay_fraction: float = 0.4  # tail share of each trace that is replayed
    max_steps: int | None = None  # cap on replayed intervals (None = all)
    seed: int = 0
    crowded_servers: frozenset[int] = frozenset()
    crowded_byte_budget: float = float("inf")
    use_contention_estimator: bool = True
    # Clients retrain/replace their personal models every this many
    # intervals (paper §I: models change after deployment), invalidating
    # every cached copy.  None = models never change (the paper's setup).
    model_update_every: int | None = None
    # Fault injection: a built-in profile (instantiated with this run's
    # servers/seed/horizon), a pre-built schedule, or None for the
    # paper's perfect world.  A noop schedule is equivalent to None —
    # the fault layer leaves a disabled run byte-identical.
    faults: FaultProfile | FaultSchedule | None = None
    # Overload protection: admission control + circuit breakers +
    # load-shedding policy.  None disables the subsystem entirely (a
    # strict no-op, like a disabled fault layer).
    overload: OverloadConfig | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.replay_fraction <= 1.0:
            raise ValueError("replay_fraction must be in (0, 1]")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1 (or None for all)")
        if self.migration_radius_m < 0:
            raise ValueError("migration_radius_m must be non-negative")
        if self.crowded_byte_budget < 0:
            raise ValueError("crowded_byte_budget must be non-negative")
        if self.model_update_every is not None and self.model_update_every < 1:
            raise ValueError("model_update_every must be >= 1 (or None)")


@dataclass
class LargeScaleResult:
    """Everything §4.B reports about one simulation run.

    The per-run counters (hits, misses, queries, migrations, ...) are
    *derived views* of the run's telemetry registry — ``from_telemetry``
    reads them out once the simulation loop finishes, so the registry is
    the single source of truth and exported snapshots always agree with
    the reported result.
    """

    policy: str
    dataset: str
    model: str
    steps: int = 0
    num_servers: int = 0
    num_clients: int = 0
    hits: int = 0
    misses: int = 0
    coldstart_queries: int = 0  # queries during post-association intervals
    total_queries: int = 0
    migrations: int = 0
    migrated_bytes: float = 0.0
    uplink: TrafficSummary | None = None
    downlink: TrafficSummary | None = None
    server_changes: int = 0
    # Resilience view (all trivial when no faults were injected): queries
    # answered on-device because no live server was reachable, the share
    # of client-intervals served remotely, and upload retry attempts.
    local_fallback_queries: int = 0
    availability: float = 1.0
    upload_retries: int = 0
    # Overload-protection view (all zero when admission control is off):
    # queries completed in windows that were shed to local execution,
    # served by a redirect target, or served under a degraded plan, plus
    # the p99 of the modelled admission-queue wait.
    shed_queries: int = 0
    redirected_queries: int = 0
    degraded_queries: int = 0
    queue_wait_p99: float = 0.0
    extras: dict = field(default_factory=dict)
    telemetry: Telemetry | None = None

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def fill_from_telemetry(self) -> None:
        """Read the reported counters out of the run's registry."""
        assert self.telemetry is not None
        registry = self.telemetry.registry
        self.hits = int(registry.value("sim.cold_start", {"outcome": "hit"}))
        self.misses = int(
            registry.value("sim.cold_start", {"outcome": "miss"})
        )
        self.server_changes = int(registry.value("sim.server_changes"))
        self.total_queries = int(registry.value("query.completed"))
        self.coldstart_queries = int(registry.value("sim.coldstart_queries"))
        self.migrations = int(registry.value("migration.count"))
        self.migrated_bytes = registry.value("migration.bytes")
        self.steps = int(registry.value("sim.steps"))
        per_model = {
            labels["model"]: int(value)
            for labels, value in registry.series("sim.queries")
        }
        if per_model:
            self.extras["per_model_queries"] = per_model
        model_updates = int(registry.value("sim.model_updates"))
        if model_updates:
            self.extras["model_updates"] = model_updates
        self.local_fallback_queries = int(
            registry.value("query.local_fallback")
        )
        self.upload_retries = int(registry.value("resilience.retries"))
        client_intervals = registry.value("resilience.client_intervals")
        local_intervals = registry.value("resilience.local_intervals")
        self.availability = (
            1.0 - local_intervals / client_intervals
            if client_intervals else 1.0
        )
        fault_counts = {
            labels["kind"]: int(value)
            for labels, value in registry.series("fault.injected")
        }
        if fault_counts:
            self.extras["faults"] = fault_counts
        per_outcome = {
            labels["outcome"]: int(value)
            for labels, value in registry.series("overload.queries")
        }
        self.shed_queries = per_outcome.get("shed", 0)
        self.redirected_queries = per_outcome.get("redirected", 0)
        self.degraded_queries = per_outcome.get("degraded", 0)
        wait = registry.get("overload.queue_wait_seconds")
        if isinstance(wait, Histogram) and wait.count:
            self.queue_wait_p99 = wait.quantile(0.99)
        offered = int(registry.value("overload.offered"))
        if offered:
            self.extras["overload"] = {
                "offered": offered,
                "admitted": int(registry.value("overload.admitted")),
                "shed": int(registry.value("overload.shed")),
                "redirected": int(registry.value("overload.redirected")),
                "degraded": int(registry.value("overload.degraded")),
                "steered_associations": int(
                    registry.value("overload.steered")
                ),
            }


def _resolve_fault_schedule(
    settings: SimulationSettings,
    registry: EdgeServerRegistry,
    replay: TrajectoryDataset,
) -> FaultSchedule | None:
    """Instantiate the run's fault schedule (None = fault layer off).

    Profiles are built from the run's allocated servers, seed, and replay
    horizon; a schedule that can never inject anything collapses to None
    so a disabled fault layer is a strict no-op.
    """
    faults = settings.faults
    if faults is None:
        return None
    if isinstance(faults, FaultProfile):
        horizon = settings.max_steps
        if horizon is None:
            horizon = max(
                (len(t) for t in replay.trajectories if len(t) >= 2),
                default=1,
            )
        faults = faults.build(
            registry.server_ids, settings.seed, max(1, horizon)
        )
    return None if faults.is_noop else faults


def train_default_predictor(
    train: TrajectoryDataset, history: int, rng: np.random.Generator
) -> PointPredictor:
    """The paper's deployed predictor: linear SVR on recent coordinates."""
    predictor = SVRPredictor(history=history, rng=rng)
    predictor.fit(train)
    return predictor


def train_default_estimator(
    partitioner: DNNPartitioner, rng: np.random.Generator
) -> ContentionEstimator:
    """Offline profiling campaign -> GPU-stats-to-slowdown estimator."""
    samples = generate_contention_dataset(
        partitioner.profile.graph,
        partitioner.profile.server_device,
        rng,
        client_counts=(1, 2, 4, 8, 12, 16),
        rounds_per_count=6,
    )
    return ContentionEstimator(rng=rng).fit(samples)


def _batched_query_windows(
    active: list[MobileClient],
    master: MasterServer,
    metrics,
    telemetry: Telemetry,
    config: PerDNNConfig,
    interval: float,
    step: int,
    optimal: bool,
    faults_on: bool,
    fault_schedule: FaultSchedule | None,
    local_this_step: set[int],
    associated_this_step: set[int],
    count_memo: dict,
) -> None:
    """Phase 3 (query windows) over all active clients in one batched pass.

    Byte-identical to the per-client scalar fast path, restructured for
    throughput:

    * one partitioning plan per distinct ``(server, partitioner)`` pair
      instead of one ``plan_for`` call per client, with the partitioner's
      plan-cache hit counters compensated so the per-run cache stats match
      the scalar path's one-``partition()``-call-per-client semantics;
    * order-free int counters (windows, completed queries, per-model
      tallies, cold-start verdicts, plan calls) accumulated locally and
      incremented once per interval — final counter values are exact ints
      either way;
    * order-*sensitive* state replayed per client in client order: the
      ``query.latency_seconds`` histogram (float sum accumulation), every
      trace event (cold start, upload-drop fault, query window), upload
      backoff mutations, and server cache updates;
    * steady-state windows (nothing left to upload, or uploads gated off)
      resolved via the shared memoized count recurrence without calling
      :func:`run_query_window`; windows with upload progress fall through
      to the exact scalar integrator, which emits its own telemetry
      in-place so histogram order is preserved.

    Overload and routing runs keep the per-client loop (shedding decides
    per client whether a server is planned at all, and routing meters
    per-client backhaul), as do reference (non-fast) runs.  With
    ``record_timings`` enabled the scalar path would additionally record
    per-call ``master.plan.seconds`` samples; timings are wall-clock and
    never byte-deterministic, so the batched path does not reproduce them.
    """
    trace = telemetry.trace
    events_on = not isinstance(trace, NullEventTrace)
    query_gap = config.query_gap_seconds
    ttl = config.ttl_intervals
    hit_fraction = config.hit_byte_fraction
    uplink_default = config.network.uplink_bps
    partitioner_for = master.partitioner_for
    # Homogeneous runs share one partitioner across every client; hoist
    # the per-call Mapping check out of the per-client loop.
    shared_partitioner = (
        None if isinstance(master.partitioner, Mapping) else master.partitioner
    )
    server_of = master.server
    memo_get = count_memo.get
    latency_hist: Histogram | None = None
    # Steady windows observe one latency per client into the (order-
    # sensitive) histogram; consecutive clients that observe the *same*
    # value continue the same serial ``sum += value`` chain, so they
    # collapse into one observe_repeated call without moving a bit.
    pending_value = 0.0
    pending_times = 0

    n_windows = 0
    completed_total = 0
    local_fallback_total = 0
    n_local = 0
    retries = 0
    plan_calls = 0
    coldstart_hits = 0
    coldstart_misses = 0
    any_coldstart = False
    coldstart_queries = 0
    per_model: dict[str, int] = {}
    # id(partitioner) -> (model_name, local_latency | None); plans per
    # (server, partitioner) pair are per-interval (slowdowns re-ping).
    partitioner_info: dict[int, list] = {}
    plan_cache: dict[tuple[int, int], object] = {}

    for client in active:
        cid = client.client_id
        if faults_on and cid in local_this_step:
            client_partitioner = (
                shared_partitioner if shared_partitioner is not None
                else partitioner_for(cid)
            )
            pid = id(client_partitioner)
            info = partitioner_info.get(pid)
            if info is None:
                info = [client_partitioner.graph.name, None]
                partitioner_info[pid] = info
            if info[1] is None:
                info[1] = client_partitioner.local_latency()
            local_latency = info[1]
            key = (0.0, local_latency, query_gap, interval)
            count = memo_get(key)
            if count is None:
                count = _steady_query_count(
                    0.0, local_latency, query_gap, interval, count_memo
                )
            n_windows += 1
            n_local += 1
            if count:
                completed_total += count
                local_fallback_total += count
                if latency_hist is None:
                    latency_hist = metrics.histogram(
                        "query.latency_seconds", QUERY_LATENCY_BUCKETS
                    )
                if pending_times and pending_value != local_latency:
                    latency_hist.observe_repeated(pending_value, pending_times)
                    pending_times = 0
                pending_value = local_latency
                pending_times += count
            model_name = info[0]
            per_model[model_name] = per_model.get(model_name, 0) + count
            if events_on:
                trace.record(
                    QueryWindowEvent(
                        interval=step,
                        client_id=cid,
                        server_id=None,
                        queries=count,
                        coldstart=False,
                        end_bytes=0.0,
                    )
                )
            continue
        assert client.current_server is not None
        server_id = client.current_server
        server = server_of(server_id)
        client_partitioner = (
            shared_partitioner if shared_partitioner is not None
            else partitioner_for(cid)
        )
        pid = id(client_partitioner)
        info = partitioner_info.get(pid)
        if info is None:
            info = [client_partitioner.graph.name, None]
            partitioner_info[pid] = info
        plan_key = (server_id, pid)
        plan = plan_cache.get(plan_key)
        if plan is None:
            plan = client_partitioner.partition(
                master.estimate_slowdown(server)
            )
            plan_cache[plan_key] = plan
        else:
            # The scalar path calls partition() once per client; after the
            # first call per (server, partitioner) every later call is a
            # plan-cache hit on the same quantized key.
            client_partitioner.cache_hits += 1
        plan_calls += 1
        schedule = plan.schedule
        total_bytes = schedule.total_bytes
        if optimal:
            cached = total_bytes
        else:
            cached = server.cached_bytes(cid, client.model_version)
            if cached > total_bytes:
                cached = total_bytes
        coldstart = cid in associated_this_step
        if coldstart:
            threshold = hit_fraction * total_bytes
            hit = total_bytes <= 0 or cached + 1e-6 >= threshold
            if hit:
                coldstart_hits += 1
            else:
                coldstart_misses += 1
            if events_on:
                trace.record(
                    ColdStartEvent(
                        interval=step,
                        client_id=cid,
                        server_id=server_id,
                        hit=hit,
                        cached_bytes=cached,
                        required_bytes=total_bytes,
                    )
                )
        uploading = not optimal
        uplink_bps = uplink_default
        if faults_on and uploading:
            if not client.upload_allowed(step):
                uploading = False  # backing off after dropped uploads
            else:
                if client.upload_failures > 0:
                    retries += 1
                if fault_schedule.upload_dropped(cid, step):
                    client.record_upload_drop(step)
                    record_fault(
                        telemetry, step, "upload_drop",
                        server_id=server_id, client_id=cid,
                    )
                    uploading = False
                else:
                    client.record_upload_success()
                    factor = fault_schedule.uplink_factor(step)
                    if factor < 1.0:
                        uplink_bps = config.network.degraded(factor).uplink_bps
        if not uploading or uplink_bps == 0.0 or cached >= total_bytes:
            # Steady window: constant latency, no byte movement (matches
            # run_query_window's fast branch value for value).
            latency = schedule.latency_after_bytes(cached)
            key = (0.0, latency, query_gap, interval)
            count = memo_get(key)
            if count is None:
                count = _steady_query_count(
                    0.0, latency, query_gap, interval, count_memo
                )
            n_windows += 1
            if count:
                completed_total += count
                if latency_hist is None:
                    latency_hist = metrics.histogram(
                        "query.latency_seconds", QUERY_LATENCY_BUCKETS
                    )
                if pending_times and pending_value != latency:
                    latency_hist.observe_repeated(pending_value, pending_times)
                    pending_times = 0
                pending_value = latency
                pending_times += count
            end_bytes = (
                total_bytes if uploading and uplink_bps != 0.0 else cached
            )
        else:
            if pending_times:
                # run_query_window observes the same histogram in-place;
                # drain the grouped tail first to keep the serial order.
                latency_hist.observe_repeated(pending_value, pending_times)
                pending_times = 0
            outcome = run_query_window(
                schedule,
                start_bytes=cached,
                uplink_bps=uplink_bps,
                duration=interval,
                query_gap=query_gap,
                uploading=uploading,
                telemetry=metrics,
                fast=True,
                count_memo=count_memo,
            )
            count = outcome.count
            end_bytes = outcome.end_bytes
        model_name = info[0]
        per_model[model_name] = per_model.get(model_name, 0) + count
        if coldstart:
            any_coldstart = True
            coldstart_queries += count
        if events_on:
            trace.record(
                QueryWindowEvent(
                    interval=step,
                    client_id=cid,
                    server_id=server_id,
                    queries=count,
                    coldstart=coldstart,
                    end_bytes=end_bytes,
                )
            )
        if not optimal:
            if end_bytes - cached > 0:
                server.add_bytes(cid, end_bytes - cached, step, ttl,
                                 client.model_version)
            else:
                server.refresh_ttl(cid, step, ttl, client.model_version)

    if pending_times:
        latency_hist.observe_repeated(pending_value, pending_times)
    if faults_on:
        metrics.counter("resilience.client_intervals").inc(len(active))
        if n_local:
            metrics.counter("resilience.local_intervals").inc(n_local)
        if retries:
            metrics.counter("resilience.retries").inc(retries)
    if plan_calls:
        metrics.counter("master.plan.calls").inc(plan_calls)
    if n_windows:
        metrics.counter("query.windows").inc(n_windows)
    if completed_total:
        metrics.counter("query.completed").inc(completed_total)
    if local_fallback_total:
        metrics.counter("query.local_fallback").inc(local_fallback_total)
    for model_name, count in per_model.items():
        metrics.counter("sim.queries", {"model": model_name}).inc(count)
    if coldstart_hits:
        metrics.counter("sim.cold_start", {"outcome": "hit"}).inc(
            coldstart_hits
        )
    if coldstart_misses:
        metrics.counter("sim.cold_start", {"outcome": "miss"}).inc(
            coldstart_misses
        )
    if any_coldstart:
        metrics.counter("sim.coldstart_queries").inc(coldstart_queries)


def run_large_scale(
    dataset: TrajectoryDataset,
    partitioner: DNNPartitioner | list[DNNPartitioner],
    settings: SimulationSettings,
    config: PerDNNConfig | None = None,
    predictor: PointPredictor | None = None,
    contention_estimator: ContentionEstimator | None = None,
    telemetry: Telemetry | None = None,
) -> LargeScaleResult:
    """Run one policy over one dataset and collect the §4.B metrics.

    ``partitioner`` is either one shared partitioner (the paper's setup:
    every client runs the same architecture, though each client's model is
    private) or a list of partitioners assigned to clients round-robin —
    the heterogeneous-workload extension the paper lists as future work.

    Every run instruments itself into a :class:`~repro.telemetry.Telemetry`
    bundle (pass one to share a registry across runs or export it; a fresh
    one is created otherwise).  The returned result's counters are read
    out of that registry, and the bundle itself rides along as
    ``result.telemetry``.
    """
    config = config or PerDNNConfig(migration_radius_m=settings.migration_radius_m)
    telemetry = telemetry or Telemetry.create()
    metrics = telemetry.registry
    rng = np.random.default_rng(settings.seed)
    grid = HexGrid(config.cell_radius_m)
    registry = EdgeServerRegistry.from_visited_points(grid, dataset.all_points())
    if settings.policy is MigrationPolicy.PERDNN and predictor is None:
        train, replay = dataset.split_time(settings.replay_fraction)
        predictor = train_default_predictor(train, config.prediction_history, rng)
    else:
        # Pre-trained predictor (or a policy that never predicts): only
        # the replay half is ever read, so skip building the train half —
        # at shard fan-out that is half the split cost per shard.
        replay = dataset.replay_split(settings.replay_fraction)
    partitioner_pool = (
        list(partitioner) if isinstance(partitioner, list) else [partitioner]
    )
    if not partitioner_pool:
        raise ValueError("at least one partitioner is required")
    if contention_estimator is None and settings.use_contention_estimator:
        contention_estimator = train_default_estimator(partitioner_pool[0], rng)
    num_replay_clients = sum(
        1 for trajectory in replay.trajectories if len(trajectory) >= 2
    )
    if len(partitioner_pool) == 1:
        master_partitioner = partitioner_pool[0]
    else:
        master_partitioner = {
            client_id: partitioner_pool[client_id % len(partitioner_pool)]
            for client_id in range(num_replay_clients)
        }
    # Plan-cache counters accumulate for the life of a partitioner; diff
    # against this baseline so the reported stats are per-run.
    cache_baseline = [
        (p.cache_hits, p.cache_misses) for p in partitioner_pool
    ]
    fault_schedule = _resolve_fault_schedule(settings, registry, replay)
    faults_on = fault_schedule is not None
    overload_cfg = settings.overload
    overload_on = overload_cfg is not None
    admission = (
        AdmissionController(overload_cfg, metrics) if overload_on else None
    )
    meter = TrafficMeter(dataset.interval_seconds, telemetry=metrics)
    master = MasterServer(
        registry=registry,
        partitioner=master_partitioner,
        config=config,
        rng=rng,
        predictor=predictor,
        contention_estimator=contention_estimator,
        policy=settings.policy,
        traffic_meter=meter,
        crowded_servers=settings.crowded_servers,
        crowded_byte_budget=settings.crowded_byte_budget,
        telemetry=telemetry,
        fault_schedule=fault_schedule,
    )
    usable = [t for t in replay.trajectories if len(t) >= 2]
    clients = [
        MobileClient(i, trajectory, config.prediction_history)
        for i, trajectory in enumerate(usable)
    ]
    fast_sim = fast_simulate_enabled()
    arrays = ClientArrays.from_clients(clients) if fast_sim else None
    # Steady-state query-window counts recur across clients and steps;
    # one memo per run amortizes the serial integration (fast path only).
    count_memo: dict = {}
    model_names = sorted({p.graph.name for p in partitioner_pool})
    result = LargeScaleResult(
        policy=settings.policy.value,
        dataset=dataset.name,
        model="+".join(model_names),
        num_servers=registry.num_servers,
        num_clients=len(clients),
        telemetry=telemetry,
    )
    metrics.gauge("sim.num_servers").set(registry.num_servers)
    metrics.gauge("sim.num_clients").set(len(clients))
    interval = dataset.interval_seconds
    optimal = settings.policy is MigrationPolicy.OPTIMAL
    baseline = settings.policy is MigrationPolicy.NONE
    routing = settings.policy is MigrationPolicy.ROUTING
    step = 0
    while True:
        if settings.max_steps is not None and step >= settings.max_steps:
            break
        active = [c for c in clients if not c.finished]
        if not active:
            break
        master.begin_interval()
        if overload_on:
            admission.begin_interval(step)
        # 0a. Fault transitions: restarts come back cold; crashes lose
        # their caches and orphan their clients (re-associated below).
        local_this_step: set[int] = set()
        if faults_on:
            for server_id in fault_schedule.restarts(step):
                record_fault(
                    telemetry, step, "server_restart", server_id=server_id
                )
            crashed_now = fault_schedule.crash_starts(step)
            for server_id in crashed_now:
                record_fault(
                    telemetry, step, "server_crash", server_id=server_id
                )
                master.crash_server(server_id)
            if crashed_now:
                crashed_set = set(crashed_now)
                for client in active:
                    if client.current_server in crashed_set:
                        client.current_server = None
        # 0b. Periodic model retraining: new weights, stale caches.
        if (
            settings.model_update_every is not None
            and step > 0
            and step % settings.model_update_every == 0
        ):
            for client in active:
                client.update_model()
                metrics.counter("sim.model_updates").inc()
        # 1. Movement and (re-)association.  Advancing first (no client
        # observes another's move) lets the fast path propose every
        # client's next association in one struct-of-arrays pass; the
        # apply loop below is shared with the scalar reference, which
        # computes each proposal per client instead.
        associated_this_step: set[int] = set()
        positions = [client.advance() for client in active]
        proposals = None
        if fast_sim and active:
            ids = arrays.refresh(active, positions)
            proposals = propose_associations(
                registry,
                arrays.positions[ids],
                arrays.current_server[ids],
                config.handover_hysteresis_m,
            )
        for index, client in enumerate(active):
            position = positions[index]
            assert position is not None
            if routing and client.current_server is not None:
                # §3.A routing: stay on the first server; only the access
                # cell changes as the user moves.
                continue
            if proposals is not None:
                proposed = int(proposals[index])
                server_id = None if proposed < 0 else proposed
            else:
                server_id = decide_association(
                    registry, position, client.current_server,
                    config.handover_hysteresis_m,
                )
            assert server_id is not None, "registry covers every trace point"
            if faults_on and fault_schedule.server_down(server_id, step):
                current = client.current_server
                if current is not None and not fault_schedule.server_down(
                    current, step
                ):
                    # The covering cell's server is dark but the old one
                    # still lives: hold it (out-of-coverage stickiness)
                    # rather than degrading to local execution.
                    server_id = current
                else:
                    # With overload protection the master steers orphaned
                    # clients to the least-loaded reachable live server
                    # (the flash-crowd path); otherwise — or when nothing
                    # is in reach — this interval runs fully on-device
                    # (graceful degradation, never an error).
                    steered = (
                        master.redirect_target(
                            position, step, overload_cfg.redirect_radius_m,
                            exclude=(server_id,),
                        )
                        if overload_on else None
                    )
                    if steered is None:
                        if current is not None:
                            master.server(current).dissociate(client.client_id)
                            client.current_server = None
                        local_this_step.add(client.client_id)
                        continue
                    metrics.counter("overload.steered").inc()
                    server_id = steered
            if server_id != client.current_server:
                previous_server = client.current_server
                if previous_server is not None:
                    old = master.server(previous_server)
                    old.dissociate(client.client_id)
                    if baseline:
                        # IONN re-uploads from scratch after a server change.
                        old.clear_client(client.client_id)
                    metrics.counter("sim.server_changes").inc()
                master.server(server_id).associate(client.client_id)
                client.current_server = server_id
                associated_this_step.add(client.client_id)
                metrics.counter("sim.associations").inc()
                telemetry.trace.record(
                    AssociationEvent(
                        interval=step,
                        client_id=client.client_id,
                        server_id=server_id,
                        previous_server=previous_server,
                    )
                )
        # 2. GPU contention advances under the new load (down servers
        # are powered off; their GPUs do not run).
        for server in master.instantiated_servers:
            if faults_on and fault_schedule.server_down(
                server.server_id, step
            ):
                continue
            server.step_gpu()
        # 2b. Batched interval planning: every server that will be planned
        # for this interval is pinged and its slowdown predicted in one
        # vectorized forest call, in the same first-seen order the lazy
        # per-client path would use (the shared RNG sees identical draws,
        # so same-seed output is byte-identical).  Overload runs keep the
        # lazy path: shedding/redirection decides per client whether a
        # server is planned at all.
        if contention_estimator is not None and not overload_on:
            seen_servers: set[int] = set()
            planned_servers = []
            for client in active:
                server_id = client.current_server
                if (
                    server_id is None
                    or client.client_id in local_this_step
                    or server_id in seen_servers
                ):
                    continue
                seen_servers.add(server_id)
                planned_servers.append(master.server(server_id))
            master.estimate_slowdowns(planned_servers)
        # 3. Query loops — one batched pass over every client on the fast
        # path.  Overload and routing runs keep the per-client loop below
        # (shedding/redirection decide per client what is planned, and
        # routing meters per-client backhaul transfers).
        if fast_sim and not overload_on and not routing:
            _batched_query_windows(
                active, master, metrics, telemetry, config, interval, step,
                optimal, faults_on, fault_schedule, local_this_step,
                associated_this_step, count_memo,
            )
            scalar_query_clients = []
        else:
            scalar_query_clients = active
        for client in scalar_query_clients:
            if faults_on:
                metrics.counter("resilience.client_intervals").inc()
                if client.client_id in local_this_step:
                    # Graceful degradation: every query still completes,
                    # on-device at the partitioner's all-local latency.
                    client_partitioner = master.partitioner_for(
                        client.client_id
                    )
                    outcome = run_local_window(
                        client_partitioner.local_latency(),
                        interval,
                        config.query_gap_seconds,
                        telemetry=metrics,
                        fast=fast_sim,
                        count_memo=count_memo,
                    )
                    metrics.counter("resilience.local_intervals").inc()
                    metrics.counter(
                        "sim.queries",
                        {"model": client_partitioner.graph.name},
                    ).inc(outcome.count)
                    telemetry.trace.record(
                        QueryWindowEvent(
                            interval=step,
                            client_id=client.client_id,
                            server_id=None,
                            queries=outcome.count,
                            coldstart=False,
                            end_bytes=0.0,
                        )
                    )
                    continue
            assert client.current_server is not None
            server = master.server(client.current_server)
            # Overload protection: breaker gate, then admission control,
            # then the shedding policy.  ``overload_label`` partitions every
            # offered window into admitted/shed/redirected/degraded.
            overload_label: str | None = None
            queue_wait: float | None = None
            if overload_on:
                metrics.counter("overload.offered").inc()
                breaker = client.breaker_for(
                    server.server_id,
                    overload_cfg.breaker_failure_threshold,
                    overload_cfg.breaker_open_intervals,
                )
                before = breaker.state
                allowed = breaker.allows(step)
                record_breaker_transition(
                    telemetry, step, client.client_id, server.server_id,
                    before, breaker.state,
                )
                decision = admission.try_admit(server) if allowed else None
                if decision is not None and decision.admitted:
                    before = breaker.state
                    breaker.record_success(step)
                    record_breaker_transition(
                        telemetry, step, client.client_id, server.server_id,
                        before, breaker.state,
                    )
                    overload_label = "admitted"
                    queue_wait = decision.queue_wait
                elif (
                    decision is not None
                    and overload_cfg.policy is SheddingPolicy.DEGRADE
                ):
                    # Still served here, under a client-heavier plan; the
                    # breaker stays untouched — the query was not refused.
                    overload_label = "degraded"
                else:
                    # Rejected (queue full) or skipped (breaker open).
                    if decision is not None:
                        before = breaker.state
                        breaker.record_failure(step)
                        record_breaker_transition(
                            telemetry, step, client.client_id,
                            server.server_id, before, breaker.state,
                        )
                    target_id = None
                    if overload_cfg.policy is SheddingPolicy.REDIRECT:
                        target_id = master.redirect_target(
                            client.position, step,
                            overload_cfg.redirect_radius_m,
                            load_of=admission.depth_of,
                            exclude=(server.server_id,),
                            require=lambda s: admission.has_capacity(
                                master.server(s)
                            ),
                        )
                    if target_id is not None:
                        target = master.server(target_id)
                        target_decision = admission.try_admit(target)
                        assert target_decision.admitted
                        server = target  # served by the neighbour
                        overload_label = "redirected"
                        queue_wait = target_decision.queue_wait
                    else:
                        overload_label = "shed"
                metrics.counter(f"overload.{overload_label}").inc()
            if overload_label == "shed":
                # Load shedding: the window completes on the client, at
                # the all-local latency — no query is ever dropped.
                client_partitioner = master.partitioner_for(client.client_id)
                outcome = run_local_window(
                    client_partitioner.local_latency(),
                    interval,
                    config.query_gap_seconds,
                    telemetry=metrics,
                    record_fallback=False,
                    fast=fast_sim,
                    count_memo=count_memo,
                )
                metrics.counter(
                    "overload.queries", {"outcome": "shed"}
                ).inc(outcome.count)
                metrics.counter(
                    "sim.queries", {"model": client_partitioner.graph.name}
                ).inc(outcome.count)
                telemetry.trace.record(
                    QueryWindowEvent(
                        interval=step,
                        client_id=client.client_id,
                        server_id=None,
                        queries=outcome.count,
                        coldstart=False,
                        end_bytes=0.0,
                    )
                )
                continue
            if overload_label == "degraded":
                plan = master.partitioner_for(client.client_id).degraded(
                    master.estimate_slowdown(server),
                    overload_cfg.degrade_inflation,
                )
            else:
                plan = master.plan_for(server, client.client_id)
            total_bytes = plan.server_bytes
            if optimal:
                cached = total_bytes
            else:
                cached = min(
                    server.cached_bytes(
                        client.client_id, client.model_version
                    ),
                    total_bytes,
                )
            # Redirected windows are served away from the association, so
            # they carry no cold-start verdict for the associated server.
            if (
                client.client_id in associated_this_step
                and overload_label != "redirected"
            ):
                threshold = config.hit_byte_fraction * total_bytes
                hit = total_bytes <= 0 or cached + 1e-6 >= threshold
                coldstart_label = "hit" if hit else "miss"
                metrics.counter("sim.cold_start", {"outcome": coldstart_label}).inc()
                telemetry.trace.record(
                    ColdStartEvent(
                        interval=step,
                        client_id=client.client_id,
                        server_id=server.server_id,
                        hit=hit,
                        cached_bytes=cached,
                        required_bytes=total_bytes,
                    )
                )
            overhead = 0.0
            hops = 0
            tensors = None
            if routing:
                access_cell = grid.cell_of(client.position)
                home_cell = registry.cell_of_server(server.server_id)
                hops = grid.hop_distance(access_cell, home_cell)
                tensors = routed_tensors(plan.costs, plan.plan)
                overhead = routing_overhead_seconds(config, hops, tensors)
            uploading = not optimal
            uplink_bps = config.network.uplink_bps
            if faults_on and uploading:
                if not client.upload_allowed(step):
                    uploading = False  # backing off after dropped uploads
                else:
                    if client.upload_failures > 0:
                        metrics.counter("resilience.retries").inc()
                    if fault_schedule.upload_dropped(client.client_id, step):
                        client.record_upload_drop(step)
                        record_fault(
                            telemetry, step, "upload_drop",
                            server_id=client.current_server,
                            client_id=client.client_id,
                        )
                        uploading = False
                    else:
                        client.record_upload_success()
                        factor = fault_schedule.uplink_factor(step)
                        if factor < 1.0:
                            uplink_bps = config.network.degraded(
                                factor
                            ).uplink_bps
            outcome = run_query_window(
                plan.schedule,
                start_bytes=cached,
                uplink_bps=uplink_bps,
                duration=interval,
                query_gap=config.query_gap_seconds,
                uploading=uploading,
                latency_overhead=overhead,
                queue_wait=queue_wait,
                telemetry=metrics,
                fast=fast_sim,
                count_memo=count_memo,
            )
            if routing and hops > 0 and outcome.count and tensors is not None:
                access_server = registry.server_at(client.position)
                if access_server is not None and access_server != server.server_id:
                    if tensors.uplink_bytes > 0:
                        meter.record(
                            step, access_server, server.server_id,
                            outcome.count * tensors.uplink_bytes,
                        )
                    if tensors.downlink_bytes > 0:
                        meter.record(
                            step, server.server_id, access_server,
                            outcome.count * tensors.downlink_bytes,
                        )
            model_name = master.partitioner_for(client.client_id).graph.name
            metrics.counter("sim.queries", {"model": model_name}).inc(
                outcome.count
            )
            if overload_label is not None:
                metrics.counter(
                    "overload.queries", {"outcome": overload_label}
                ).inc(outcome.count)
            coldstart = client.client_id in associated_this_step
            if coldstart:
                metrics.counter("sim.coldstart_queries").inc(outcome.count)
            telemetry.trace.record(
                QueryWindowEvent(
                    interval=step,
                    client_id=client.client_id,
                    server_id=server.server_id,
                    queries=outcome.count,
                    coldstart=coldstart,
                    end_bytes=outcome.end_bytes,
                )
            )
            if not optimal:
                delta = outcome.end_bytes - cached
                if delta > 0:
                    server.add_bytes(
                        client.client_id, delta, step, config.ttl_intervals,
                        client.model_version,
                    )
                else:
                    server.refresh_ttl(
                        client.client_id, step, config.ttl_intervals,
                        client.model_version,
                    )
        if overload_on:
            admission.export_gauges()
        # 4. Proactive migration (records its own telemetry).  The fast
        # path predicts every client's next location in one batched
        # predictor call; the per-client transfer logic replays in client
        # order either way.
        if settings.policy is MigrationPolicy.PERDNN:
            if fast_sim:
                master.proactive_migrate_batch(active, step)
            else:
                for client in active:
                    master.proactive_migrate(client, step)
        # 5. TTL eviction.
        master.expire_caches(step)
        step += 1
    metrics.gauge("sim.steps").set(step)
    # Emitted even without fault injection (reporting 1.0) so snapshot
    # schemas match across fault and no-fault runs.
    client_intervals = metrics.value("resilience.client_intervals")
    local_intervals = metrics.value("resilience.local_intervals")
    metrics.gauge("resilience.availability").set(
        1.0 - local_intervals / client_intervals
        if client_intervals else 1.0
    )
    result.fill_from_telemetry()
    cache_hits = sum(
        p.cache_hits - before_hits
        for p, (before_hits, _) in zip(partitioner_pool, cache_baseline)
    )
    cache_misses = sum(
        p.cache_misses - before_misses
        for p, (_, before_misses) in zip(partitioner_pool, cache_baseline)
    )
    result.extras["partition_cache"] = {
        "hits": cache_hits,
        "misses": cache_misses,
        "hit_ratio": (
            cache_hits / (cache_hits + cache_misses)
            if cache_hits + cache_misses
            else 0.0
        ),
    }
    result.uplink = meter.uplink_summary()
    result.downlink = meter.downlink_summary()
    return result
