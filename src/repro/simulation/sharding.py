"""City-scale sharded simulation driver.

:func:`run_large_scale_sharded` scales :func:`~repro.simulation.
large_scale.run_large_scale` past the single-process interval loop by
splitting the client population into *spatial shards* — trajectories
grouped by the hex cell their replay starts in — and running each shard
as an independent sub-simulation, optionally fanned out over
``multiprocessing`` workers.  Per-shard telemetry is folded back with the
order-independent registry merge, so the combined snapshot is
byte-identical no matter how many workers ran or in what order shards
finished.

Semantics: a shard simulates only its own clients against its own server
fleet (the cells those clients visit), with a seed derived
deterministically from ``(run seed, shard index)``.  That makes shards
embarrassingly parallel — there is no cross-shard GPU contention or
migration — which is the standard population-split approximation for
city-scale mobile simulation.  What *is* pinned exactly, by tests:

* the decomposition and merge depend only on ``(dataset, settings,
  shard_size)`` — ``workers`` 1, 2, or 4 export the same bytes;
* each shard obeys the fast-vs-reference equivalence of the unsharded
  loop, so a sharded run under :func:`~repro.simulation.large_scale.
  reference_simulate` is byte-identical to the fast one;
* merged counters satisfy the same conservation and no-query-dropped
  invariants as the scalar path (property suite).

Client and server ids are rebased by per-shard offsets (shard order) so
merged traces, per-server metric labels, and traffic summaries stay
collision-free.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.core.config import PerDNNConfig
from repro.core.master import MigrationPolicy
from repro.estimation.estimator import ContentionEstimator
from repro.faults import FaultSchedule
from repro.geo.hexgrid import HexGrid
from repro.ml.tree import fast_predict_enabled, set_fast_predict
from repro.mobility.predictor import PointPredictor
from repro.mobility.trajectory import TrajectoryDataset
from repro.network.traffic import merge_summaries
from repro.partitioning.partitioner import DNNPartitioner
from repro.simulation.large_scale import (
    LargeScaleResult,
    SimulationSettings,
    fast_simulate_enabled,
    run_large_scale,
    set_fast_simulate,
    train_default_estimator,
    train_default_predictor,
)
from repro.telemetry import (
    Event,
    EventTrace,
    MetricsRegistry,
    Telemetry,
    merge_registries,
)

#: Gauges that are not per-shard additive under :func:`merge_registries`.
#: ``sim.steps`` is the longest shard's horizon; everything else defaults
#: to "sum" (client/server totals, per-server queue depths — whose labels
#: are disjoint after rebasing anyway).  ``resilience.availability`` is a
#: ratio and is recomputed from merged counters after the fold.
GAUGE_MERGE_RULES: dict[str, str] = {"sim.steps": "max"}

#: Event fields that carry client/server identifiers (rebased on merge).
_CLIENT_ID_FIELDS = frozenset({"client_id"})
_SERVER_ID_FIELDS = frozenset(
    {"server_id", "previous_server", "source_server", "target_server"}
)


@dataclass(frozen=True)
class ShardPlan:
    """One spatial shard: which trajectories it simulates."""

    index: int
    trajectory_indices: tuple[int, ...]
    cells: tuple[tuple[int, int], ...]  # home cells, sorted axial (q, r)
    num_usable: int  # trajectories with >= 2 replay points


def shard_seed(seed: int, shard_index: int) -> int:
    """Deterministic, worker-independent per-shard seed."""
    sequence = np.random.SeedSequence([seed & 0xFFFFFFFF, shard_index])
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def plan_shards(
    dataset: TrajectoryDataset,
    config: PerDNNConfig,
    settings: SimulationSettings,
    shard_size: int,
) -> list[ShardPlan]:
    """Spatially decompose the client population into shards.

    Each trajectory's *home cell* is the hex cell of its first replayed
    point (where the client enters the simulation).  Home cells are
    visited in sorted axial order and packed greedily until a shard holds
    at least ``shard_size`` usable clients; a cell's clients always land
    in the same shard.  The plan depends only on the dataset, the cell
    radius, the replay split, and ``shard_size`` — never on worker count.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    grid = HexGrid(config.cell_radius_m)
    _, replay = dataset.split_time(settings.replay_fraction)
    n = len(dataset.trajectories)
    if n == 0:
        return []
    firsts = np.zeros((n, 2), dtype=float)
    usable = np.zeros(n, dtype=bool)
    for i, trajectory in enumerate(replay.trajectories):
        usable[i] = len(trajectory) >= 2
        source = trajectory if len(trajectory) else dataset.trajectories[i]
        firsts[i] = source.points[0]
    cells = grid.cells_of(firsts)
    groups: dict[tuple[int, int], list[int]] = {}
    for i in range(n):
        groups.setdefault((int(cells[i, 0]), int(cells[i, 1])), []).append(i)
    shards: list[ShardPlan] = []
    pending: list[int] = []
    pending_cells: list[tuple[int, int]] = []
    pending_usable = 0

    def close() -> None:
        nonlocal pending, pending_cells, pending_usable
        shards.append(
            ShardPlan(
                index=len(shards),
                trajectory_indices=tuple(pending),
                cells=tuple(pending_cells),
                num_usable=pending_usable,
            )
        )
        pending, pending_cells, pending_usable = [], [], 0

    for cell in sorted(groups):
        members = groups[cell]
        pending.extend(members)
        pending_cells.append(cell)
        pending_usable += int(usable[members].sum())
        if pending_usable >= shard_size:
            close()
    if pending:
        close()
    return shards


@dataclass(frozen=True)
class _ShardJob:
    """Everything one worker needs to run one shard (spawn-safe)."""

    index: int
    dataset: TrajectoryDataset
    partitioner_blob: bytes  # pickled template: same warm cache per shard
    settings: SimulationSettings
    config: PerDNNConfig
    predictor: PointPredictor | None
    contention_estimator: ContentionEstimator | None
    fast_simulate: bool
    fast_predict: bool
    record_events: bool


def _run_shard_job(job: _ShardJob) -> LargeScaleResult:
    """Worker entry point: run one shard as a full sub-simulation.

    The fast-path toggles are process globals, so the parent's setting is
    shipped explicitly (a spawned worker would not inherit a context
    manager entered after the pool was created).
    """
    previous_sim = set_fast_simulate(job.fast_simulate)
    previous_predict = set_fast_predict(job.fast_predict)
    try:
        partitioner = pickle.loads(job.partitioner_blob)
        telemetry = Telemetry.create(record_events=job.record_events)
        return run_large_scale(
            job.dataset,
            partitioner,
            job.settings,
            config=job.config,
            predictor=job.predictor,
            contention_estimator=job.contention_estimator,
            telemetry=telemetry,
        )
    finally:
        set_fast_simulate(previous_sim)
        set_fast_predict(previous_predict)


def _sub_dataset(
    dataset: TrajectoryDataset, indices: tuple[int, ...]
) -> TrajectoryDataset:
    return TrajectoryDataset(
        name=dataset.name,
        interval_seconds=dataset.interval_seconds,
        bbox=dataset.bbox,
        trajectories=tuple(dataset.trajectories[i] for i in indices),
    )


def _rebase_registry(
    registry: MetricsRegistry, server_offset: int
) -> MetricsRegistry:
    """Copy a shard registry, shifting ``server`` labels into the merged
    id space so per-server metrics from different shards never collide."""
    rebased = MetricsRegistry()
    for metric in registry.metrics():
        labels = dict(metric.labels)
        if "server" in labels:
            labels["server"] = str(int(labels["server"]) + server_offset)
        if hasattr(metric, "buckets"):
            copy = rebased.histogram(metric.name, metric.buckets, labels)
            copy.counts = list(metric.counts)
            copy.sum = metric.sum
            copy.count = metric.count
        elif hasattr(metric, "set"):
            rebased.gauge(metric.name, labels).set(metric.value)
        else:
            rebased.counter(metric.name, labels).value = metric.value
    return rebased


def _rebase_event(event: Event, client_offset: int, server_offset: int) -> Event:
    changes: dict[str, int] = {}
    for field_info in fields(event):
        name = field_info.name
        value = getattr(event, name)
        if value is None:
            continue
        if name in _CLIENT_ID_FIELDS:
            changes[name] = value + client_offset
        elif name in _SERVER_ID_FIELDS:
            changes[name] = value + server_offset
    return replace(event, **changes) if changes else event


def _merge_results(
    dataset: TrajectoryDataset,
    settings: SimulationSettings,
    model: str,
    shard_results: list[LargeScaleResult],
    shard_size: int,
    workers: int,
) -> LargeScaleResult:
    """Fold per-shard results into one region-wide ``LargeScaleResult``.

    Deterministic and order-independent: shard results arrive in shard
    order by construction, id offsets are cumulative sums over that
    order, and the registry fold itself is permutation-invariant.
    """
    client_offsets: list[int] = []
    server_offsets: list[int] = []
    clients_total = 0
    servers_total = 0
    for shard_result in shard_results:
        client_offsets.append(clients_total)
        server_offsets.append(servers_total)
        clients_total += shard_result.num_clients
        servers_total += shard_result.num_servers
    registries = [
        _rebase_registry(r.telemetry.registry, offset)
        for r, offset in zip(shard_results, server_offsets)
    ]
    merged_registry = merge_registries(registries, GAUGE_MERGE_RULES)
    # Availability is a ratio, not a sum — recompute from merged counters
    # (matches what run_large_scale would emit over the union workload).
    client_intervals = merged_registry.value("resilience.client_intervals")
    local_intervals = merged_registry.value("resilience.local_intervals")
    merged_registry.gauge("resilience.availability").set(
        1.0 - local_intervals / client_intervals if client_intervals else 1.0
    )
    trace = EventTrace()
    for shard_result, client_offset, server_offset in zip(
        shard_results, client_offsets, server_offsets
    ):
        for event in shard_result.telemetry.trace:
            trace.record(_rebase_event(event, client_offset, server_offset))
    telemetry = Telemetry(registry=merged_registry, trace=trace)
    merged = LargeScaleResult(
        policy=settings.policy.value,
        dataset=dataset.name,
        model=model,
        num_servers=servers_total,
        num_clients=clients_total,
        telemetry=telemetry,
    )
    merged.fill_from_telemetry()
    cache_hits = sum(
        r.extras["partition_cache"]["hits"] for r in shard_results
    )
    cache_misses = sum(
        r.extras["partition_cache"]["misses"] for r in shard_results
    )
    merged.extras["partition_cache"] = {
        "hits": cache_hits,
        "misses": cache_misses,
        "hit_ratio": (
            cache_hits / (cache_hits + cache_misses)
            if cache_hits + cache_misses
            else 0.0
        ),
    }
    merged.extras["sharding"] = {
        "shards": len(shard_results),
        "shard_size": shard_size,
        "workers": workers,
        "clients_per_shard": [r.num_clients for r in shard_results],
    }
    merged.uplink = merge_summaries(
        [
            (r.uplink, offset)
            for r, offset in zip(shard_results, server_offsets)
        ]
    )
    merged.downlink = merge_summaries(
        [
            (r.downlink, offset)
            for r, offset in zip(shard_results, server_offsets)
        ]
    )
    return merged


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_large_scale_sharded(
    dataset: TrajectoryDataset,
    partitioner: DNNPartitioner | list[DNNPartitioner],
    settings: SimulationSettings,
    config: PerDNNConfig | None = None,
    shard_size: int = 256,
    workers: int = 1,
    predictor: PointPredictor | None = None,
    contention_estimator: ContentionEstimator | None = None,
    record_events: bool = True,
) -> LargeScaleResult:
    """Run the large-scale simulation sharded over worker processes.

    Drop-in sibling of :func:`run_large_scale` for populations far past
    what one interval loop can replay.  The predictor and contention
    estimator are trained once here (same rng order as the unsharded
    entry point) and shared by every shard; the partitioner is pickled
    once so each shard starts from an identical (possibly pre-warmed)
    plan cache regardless of which worker runs it.

    ``record_events=False`` drops the structured event trace (counters
    and histograms are unaffected) — at hundreds of thousands of client
    windows the trace dominates memory and inter-process transfer.

    The returned result is the deterministic, order-independent merge of
    the per-shard results; ``result.extras["sharding"]`` records the
    decomposition.  Exported telemetry bytes depend on ``shard_size`` but
    not on ``workers``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if isinstance(settings.faults, FaultSchedule):
        raise ValueError(
            "sharded runs need a FaultProfile (schedules are built from "
            "each shard's own servers); pass the profile instead"
        )
    config = config or PerDNNConfig(
        migration_radius_m=settings.migration_radius_m
    )
    pool = list(partitioner) if isinstance(partitioner, list) else [partitioner]
    if not pool:
        raise ValueError("at least one partitioner is required")
    # Mirror run_large_scale's training order so both entry points derive
    # identical models from the same seed.
    rng = np.random.default_rng(settings.seed)
    train, _ = dataset.split_time(settings.replay_fraction)
    if settings.policy is MigrationPolicy.PERDNN and predictor is None:
        predictor = train_default_predictor(
            train, config.prediction_history, rng
        )
    if contention_estimator is None and settings.use_contention_estimator:
        contention_estimator = train_default_estimator(pool[0], rng)
    partitioner_blob = pickle.dumps(partitioner)
    shards = plan_shards(dataset, config, settings, shard_size)
    jobs = [
        _ShardJob(
            index=shard.index,
            dataset=_sub_dataset(dataset, shard.trajectory_indices),
            partitioner_blob=partitioner_blob,
            settings=replace(
                settings, seed=shard_seed(settings.seed, shard.index)
            ),
            config=config,
            predictor=predictor,
            contention_estimator=contention_estimator,
            fast_simulate=fast_simulate_enabled(),
            fast_predict=fast_predict_enabled(),
            record_events=record_events,
        )
        for shard in shards
    ]
    if workers <= 1 or len(jobs) <= 1:
        shard_results = [_run_shard_job(job) for job in jobs]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(jobs)),
            mp_context=_pool_context(),
        ) as executor:
            shard_results = list(executor.map(_run_shard_job, jobs))
    model_names = sorted({p.graph.name for p in pool})
    return _merge_results(
        dataset,
        settings,
        "+".join(model_names),
        shard_results,
        shard_size=shard_size,
        workers=workers,
    )
