"""City-scale sharded simulation driver.

:func:`run_large_scale_sharded` scales :func:`~repro.simulation.
large_scale.run_large_scale` past the single-process interval loop by
splitting the client population into *spatial shards* — trajectories
grouped by the hex cell their replay starts in — and running each shard
as an independent sub-simulation, optionally fanned out over
``multiprocessing`` workers.  Per-shard telemetry is folded back with the
order-independent registry merge, so the combined snapshot is
byte-identical no matter how many workers ran or in what order shards
finished.

Semantics: a shard simulates only its own clients against its own server
fleet (the cells those clients visit), with a seed derived
deterministically from ``(run seed, shard index)``.  That makes shards
embarrassingly parallel — there is no cross-shard GPU contention or
migration — which is the standard population-split approximation for
city-scale mobile simulation.  What *is* pinned exactly, by tests:

* the decomposition and merge depend only on ``(dataset, settings,
  shard_size)`` — ``workers`` 1, 2, or 4 export the same bytes;
* each shard obeys the fast-vs-reference equivalence of the unsharded
  loop, so a sharded run under :func:`~repro.simulation.large_scale.
  reference_simulate` is byte-identical to the fast one;
* merged counters satisfy the same conservation and no-query-dropped
  invariants as the scalar path (property suite).

Client and server ids are rebased by per-shard offsets (shard order) so
merged traces, per-server metric labels, and traffic summaries stay
collision-free.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, fields, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.config import PerDNNConfig
from repro.core.master import (
    MigrationPolicy,
    fast_migrate_enabled,
    set_fast_migrate,
)
from repro.estimation.estimator import ContentionEstimator
from repro.faults import FaultSchedule
from repro.geo.hexgrid import HexGrid
from repro.ml.tree import fast_predict_enabled, set_fast_predict
from repro.mobility.predictor import PointPredictor
from repro.mobility.trajectory import TrajectoryDataset
from repro.network.traffic import TrafficFold
from repro.partitioning.partitioner import DNNPartitioner
from repro.simulation.checkpoint import (
    CheckpointStore,
    ModelCache,
    ShardDatasetStore,
    ShardRecord,
    model_fingerprint,
    run_fingerprint,
)
from repro.simulation.remote import RemoteExecutor
from repro.simulation.large_scale import (
    LargeScaleResult,
    SimulationSettings,
    fast_simulate_enabled,
    run_large_scale,
    set_fast_simulate,
    train_default_estimator,
    train_default_predictor,
)
from repro.simulation.supervisor import (
    LocalProcessExecutor,
    SupervisionReport,
    SupervisorConfig,
    supervise,
)
from repro.telemetry import (
    Event,
    EventTrace,
    MetricsRegistry,
    Telemetry,
    merge_registries,
)

#: Gauges that are not per-shard additive under :func:`merge_registries`.
#: ``sim.steps`` is the longest shard's horizon; everything else defaults
#: to "sum" (client/server totals, per-server queue depths — whose labels
#: are disjoint after rebasing anyway).  ``resilience.availability`` is a
#: ratio and is recomputed from merged counters after the fold.
GAUGE_MERGE_RULES: dict[str, str] = {"sim.steps": "max"}

#: Event fields that carry client/server identifiers (rebased on merge).
_CLIENT_ID_FIELDS = frozenset({"client_id"})
_SERVER_ID_FIELDS = frozenset(
    {"server_id", "previous_server", "source_server", "target_server"}
)


@dataclass(frozen=True)
class ShardPlan:
    """One spatial shard: which trajectories it simulates."""

    index: int
    trajectory_indices: tuple[int, ...]
    cells: tuple[tuple[int, int], ...]  # home cells, sorted axial (q, r)
    num_usable: int  # trajectories with >= 2 replay points


def shard_seed(seed: int, shard_index: int) -> int:
    """Deterministic, worker-independent per-shard seed.

    The *full* run seed feeds the :class:`~numpy.random.SeedSequence`:
    seeds that differ only above bit 32 derive different per-shard seeds
    (an earlier revision masked with ``0xFFFFFFFF`` and collided them).
    For seeds below 2**32 the derivation is unchanged — SeedSequence
    decomposes a small int into the same single entropy word — so
    existing snapshots are unaffected; the regression suite pins both
    properties.
    """
    sequence = np.random.SeedSequence([seed, shard_index])
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def plan_shards(
    dataset: TrajectoryDataset,
    config: PerDNNConfig,
    settings: SimulationSettings,
    shard_size: int,
) -> list[ShardPlan]:
    """Spatially decompose the client population into shards.

    Each trajectory's *home cell* is the hex cell of its first replayed
    point (where the client enters the simulation).  Home cells are
    visited in sorted axial order and packed greedily until a shard holds
    at least ``shard_size`` usable clients; a cell's clients always land
    in the same shard.  The plan depends only on the dataset, the cell
    radius, the replay split, and ``shard_size`` — never on worker count.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    if not 0.0 < settings.replay_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    grid = HexGrid(config.cell_radius_m)
    n = len(dataset.trajectories)
    if n == 0:
        return []
    # Only the replay tail decides usability and home cells, and only its
    # first point and length are read — compute the split_time cut per
    # trajectory instead of materializing copies of every replay half
    # (which used to dominate the planner's footprint at 1M clients).
    firsts = np.zeros((n, 2), dtype=float)
    usable = np.zeros(n, dtype=bool)
    keep = 1.0 - settings.replay_fraction
    for i, trajectory in enumerate(dataset.trajectories):
        points = len(trajectory)
        cut = max(1, min(points - 1, int(round(points * keep))))
        usable[i] = points - cut >= 2
        firsts[i] = trajectory.points[cut if points - cut > 0 else 0]
    cells = grid.cells_of(firsts)
    groups: dict[tuple[int, int], list[int]] = {}
    for i in range(n):
        groups.setdefault((int(cells[i, 0]), int(cells[i, 1])), []).append(i)
    shards: list[ShardPlan] = []
    pending: list[int] = []
    pending_cells: list[tuple[int, int]] = []
    pending_usable = 0

    def close() -> None:
        nonlocal pending, pending_cells, pending_usable
        shards.append(
            ShardPlan(
                index=len(shards),
                trajectory_indices=tuple(pending),
                cells=tuple(pending_cells),
                num_usable=pending_usable,
            )
        )
        pending, pending_cells, pending_usable = [], [], 0

    for cell in sorted(groups):
        members = groups[cell]
        pending.extend(members)
        pending_cells.append(cell)
        pending_usable += int(usable[members].sum())
        if pending_usable >= shard_size:
            close()
    if pending:
        close()
    return shards


@dataclass(frozen=True)
class _ShardJob:
    """Everything one worker needs to run one shard (spawn-safe)."""

    index: int
    dataset: TrajectoryDataset | None  # None when spilled to dataset_path
    partitioner_blob: bytes  # pickled template: same warm cache per shard
    models_blob: bytes  # pickled (predictor, estimator): serialized once
    settings: SimulationSettings
    config: PerDNNConfig
    fast_simulate: bool
    fast_predict: bool
    fast_migrate: bool
    record_events: bool
    dataset_path: str | None = None  # spilled sub-dataset pickle
    profile_path: str | None = None  # dump this worker's cProfile here


def _run_shard_job(job: _ShardJob) -> LargeScaleResult:
    """Worker entry point: run one shard as a full sub-simulation.

    The fast-path toggles are process globals, so the parent's setting is
    shipped explicitly (a spawned worker would not inherit a context
    manager entered after the pool was created).  The trained models
    arrive as one shared pickle blob — the parent serializes the forest
    and SVR object graphs once instead of once per shard job.  A spilled
    job carries only ``dataset_path``: the worker loads its own subset
    from disk, so the parent never held it.
    """
    previous_sim = set_fast_simulate(job.fast_simulate)
    previous_predict = set_fast_predict(job.fast_predict)
    previous_migrate = set_fast_migrate(job.fast_migrate)
    profiler = None
    try:
        dataset = job.dataset
        if dataset is None:
            if job.dataset_path is None:
                raise ValueError(
                    f"shard {job.index} has neither an in-memory dataset "
                    "nor a dataset_path"
                )
            dataset = ShardDatasetStore.read(job.dataset_path)
        partitioner = pickle.loads(job.partitioner_blob)
        predictor, contention_estimator = pickle.loads(job.models_blob)
        telemetry = Telemetry.create(record_events=job.record_events)
        if job.profile_path is not None:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        return run_large_scale(
            dataset,
            partitioner,
            job.settings,
            config=job.config,
            predictor=predictor,
            contention_estimator=contention_estimator,
            telemetry=telemetry,
        )
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(job.profile_path)
        set_fast_simulate(previous_sim)
        set_fast_predict(previous_predict)
        set_fast_migrate(previous_migrate)


def _sub_dataset(
    dataset: TrajectoryDataset, indices: tuple[int, ...]
) -> TrajectoryDataset:
    return TrajectoryDataset(
        name=dataset.name,
        interval_seconds=dataset.interval_seconds,
        bbox=dataset.bbox,
        trajectories=tuple(dataset.trajectories[i] for i in indices),
    )


def _rebase_registry(
    registry: MetricsRegistry, server_offset: int
) -> MetricsRegistry:
    """Copy a shard registry, shifting ``server`` labels into the merged
    id space so per-server metrics from different shards never collide."""
    rebased = MetricsRegistry()
    for metric in registry.metrics():
        labels = dict(metric.labels)
        if "server" in labels:
            labels["server"] = str(int(labels["server"]) + server_offset)
        if hasattr(metric, "buckets"):
            copy = rebased.histogram(metric.name, metric.buckets, labels)
            copy.counts = list(metric.counts)
            copy.sum = metric.sum
            copy.count = metric.count
        elif hasattr(metric, "set"):
            rebased.gauge(metric.name, labels).set(metric.value)
        else:
            rebased.counter(metric.name, labels).value = metric.value
    return rebased


def _rebase_event(event: Event, client_offset: int, server_offset: int) -> Event:
    changes: dict[str, int] = {}
    for field_info in fields(event):
        name = field_info.name
        value = getattr(event, name)
        if value is None:
            continue
        if name in _CLIENT_ID_FIELDS:
            changes[name] = value + client_offset
        elif name in _SERVER_ID_FIELDS:
            changes[name] = value + server_offset
    return replace(event, **changes) if changes else event


def _merge_records(
    dataset_name: str,
    settings: SimulationSettings,
    model: str,
    records: Iterable[ShardRecord],
    shard_size: int,
    workers: int,
) -> LargeScaleResult:
    """Fold per-shard records into one region-wide ``LargeScaleResult``.

    ``records`` is consumed *streamingly*, one shard at a time, in shard
    order: the registry fold (:func:`merge_registries`) pulls rebased
    registries from a generator that computes cumulative id offsets,
    rebases trace events into the merged trace, and folds traffic
    summaries into incremental :class:`TrafficFold` accumulators as side
    effects.  With a checkpoint store behind the iterable, no two shard
    records ever co-reside in memory — for *any* of the telemetry
    (registries, events, traffic): merge peak memory is the merged
    footprint plus a single shard, independent of shard count.  Every
    fold is permutation-invariant, so the merged bytes match the old
    materialized merge exactly.
    """
    trace = EventTrace()
    uplink_fold = TrafficFold()
    downlink_fold = TrafficFold()
    totals = {
        "clients": 0, "servers": 0, "hits": 0, "misses": 0, "shards": 0,
    }
    clients_per_shard: list[int] = []

    def rebased_registries() -> Iterator[MetricsRegistry]:
        for record in records:
            client_offset = totals["clients"]
            server_offset = totals["servers"]
            totals["clients"] += record.num_clients
            totals["servers"] += record.num_servers
            totals["hits"] += record.cache_hits
            totals["misses"] += record.cache_misses
            totals["shards"] += 1
            clients_per_shard.append(record.num_clients)
            trace.extend(
                _rebase_event(event, client_offset, server_offset)
                for event in record.events
            )
            uplink_fold.add(record.uplink, server_offset)
            downlink_fold.add(record.downlink, server_offset)
            yield _rebase_registry(record.registry, server_offset)

    merged_registry = merge_registries(rebased_registries(), GAUGE_MERGE_RULES)
    # Availability is a ratio, not a sum — recompute from merged counters
    # (matches what run_large_scale would emit over the union workload).
    client_intervals = merged_registry.value("resilience.client_intervals")
    local_intervals = merged_registry.value("resilience.local_intervals")
    merged_registry.gauge("resilience.availability").set(
        1.0 - local_intervals / client_intervals if client_intervals else 1.0
    )
    telemetry = Telemetry(registry=merged_registry, trace=trace)
    merged = LargeScaleResult(
        policy=settings.policy.value,
        dataset=dataset_name,
        model=model,
        num_servers=totals["servers"],
        num_clients=totals["clients"],
        telemetry=telemetry,
    )
    merged.fill_from_telemetry()
    cache_hits = totals["hits"]
    cache_misses = totals["misses"]
    merged.extras["partition_cache"] = {
        "hits": cache_hits,
        "misses": cache_misses,
        "hit_ratio": (
            cache_hits / (cache_hits + cache_misses)
            if cache_hits + cache_misses
            else 0.0
        ),
    }
    merged.extras["sharding"] = {
        "shards": totals["shards"],
        "shard_size": shard_size,
        "workers": workers,
        "clients_per_shard": clients_per_shard,
    }
    merged.uplink = uplink_fold.summary()
    merged.downlink = downlink_fold.summary()
    return merged


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_large_scale_sharded(
    dataset: TrajectoryDataset,
    partitioner: DNNPartitioner | list[DNNPartitioner],
    settings: SimulationSettings,
    config: PerDNNConfig | None = None,
    shard_size: int = 256,
    workers: int = 1,
    predictor: PointPredictor | None = None,
    contention_estimator: ContentionEstimator | None = None,
    record_events: bool = True,
    supervision: SupervisorConfig | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    resume: bool = False,
    model_cache_dir: str | os.PathLike | None = None,
    spill_datasets: bool = False,
    remote_workers: Sequence[str] = (),
    profile_path: str | os.PathLike | None = None,
) -> LargeScaleResult:
    """Run the large-scale simulation sharded over supervised workers.

    Drop-in sibling of :func:`run_large_scale` for populations far past
    what one interval loop can replay.  The predictor and contention
    estimator are trained once here (same rng order as the unsharded
    entry point), pickled into one blob, and broadcast to every shard
    worker; the partitioner is likewise pickled once so each shard starts
    from an identical (possibly pre-warmed) plan cache regardless of
    which worker runs it.  With ``model_cache_dir`` the trained blob is
    additionally persisted to disk keyed by :func:`model_fingerprint`,
    so a repeat run over the same dataset/seed skips training entirely —
    pickle round-trips every float bit-exactly and the parent consumes no
    RNG after training, so a cache hit changes no merged bytes.  The
    cache only engages when this call would train the default models
    (explicitly passed ``predictor``/``contention_estimator`` bypass it).

    Shards run under :func:`~repro.simulation.supervisor.supervise`:
    worker crashes and per-shard timeouts are retried with
    capped-exponential backoff in a fresh process (``supervision``
    configures attempts/timeout/backoff), and a shard that exhausts its
    budget either raises a typed
    :class:`~repro.simulation.supervisor.ShardError` or — under
    ``supervision.allow_partial`` — is dropped from the merge with its
    missing coverage accounted in ``extras["sharding"]``
    (``failed_shards``/``failed_clients``).  A retried shard re-runs the
    same deterministic :func:`shard_seed`, so retries never change the
    merged bytes.

    With ``checkpoint_dir`` every completed shard is spilled to disk the
    moment it lands and the merge *streams* from those files (constant
    memory in the shard count); ``resume=True`` skips shards already
    completed by an earlier interrupted run, after a settings-fingerprint
    check rejects checkpoints from any different run.

    ``record_events=False`` drops the structured event trace (counters
    and histograms are unaffected) — at hundreds of thousands of client
    windows the trace dominates memory and inter-process transfer.

    ``spill_datasets=True`` writes each shard's trajectory subset to
    disk once at plan time (under ``checkpoint_dir/datasets``, or a
    temporary scratch directory removed on return) and hands jobs the
    *path*; workers load their own file, the driver drops its dataset
    reference after planning, and — when no ``checkpoint_dir`` streams
    results already — completed shards are spilled through a scratch
    checkpoint store and merged streamingly, so the driver process holds
    only the plan, one in-flight shard record, and the merged result
    regardless of population size.  Pickle round-trips the trajectory
    arrays bit-exactly: spilled runs export the same bytes as in-memory
    ones (pinned by the equivalence suite).

    ``remote_workers`` adds shard-worker addresses (``host:port``, see
    ``repro shard-worker``) as extra supervision slots next to the
    ``workers`` local ones; shards are dispatched over TCP with the same
    retry/timeout/quarantine semantics, and local vs remote vs mixed
    fleets export identical bytes.  Repeat an address to run several
    shards there concurrently.  The wire protocol is pickle — use
    trusted hosts and links only.

    ``profile_path`` profiles the *lowest-index* shard's worker under
    ``cProfile`` and dumps its stats there (merged by the CLI into the
    parent profile) — this is how ``--profile`` stays useful when the
    simulation work happens in worker processes.  Profiling changes no
    results; it is refused alongside ``remote_workers`` because the
    designated shard could land on a machine that cannot see the path.

    The returned result is the deterministic, order-independent merge of
    the per-shard results; ``result.extras["sharding"]`` records the
    decomposition and the supervision outcome.  Exported telemetry bytes
    depend on ``shard_size`` but not on ``workers``, retries, chaos, or
    whether the run was checkpointed or resumed.
    """
    # Validate everything cheap *before* the expensive predictor and
    # estimator training, so a bad invocation fails in milliseconds.
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    if isinstance(settings.faults, FaultSchedule):
        raise ValueError(
            "sharded runs need a FaultProfile (schedules are built from "
            "each shard's own servers); pass the profile instead"
        )
    pool = list(partitioner) if isinstance(partitioner, list) else [partitioner]
    if not pool:
        raise ValueError("at least one partitioner is required")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    remote_workers = list(remote_workers or ())
    if profile_path is not None and remote_workers:
        raise ValueError(
            "profile_path designates a local shard worker; it cannot be "
            "combined with remote_workers (the profiled shard could be "
            "dispatched to a machine that cannot write the path)"
        )
    executors = None
    if remote_workers:
        # Validate every address before any expensive work.
        remote_executors = [
            RemoteExecutor(address) for address in remote_workers
        ]
        executors = [
            LocalProcessExecutor(_pool_context()) for _ in range(workers)
        ] + remote_executors
    supervision = supervision or SupervisorConfig()
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.prepare()  # fail now if the directory is unusable
    model_cache = None
    if model_cache_dir is not None:
        model_cache = ModelCache(model_cache_dir)
        model_cache.prepare()  # same fail-fast as the checkpoint store
    config = config or PerDNNConfig(
        migration_radius_m=settings.migration_radius_m
    )
    model_names = sorted({p.graph.name for p in pool})
    # Mirror run_large_scale's training order so both entry points derive
    # identical models from the same seed.  The cache keys on everything
    # training consumes, and only engages when the default models would
    # be trained right here (caller-supplied models bypass it).
    rng = np.random.default_rng(settings.seed)
    train, _ = dataset.split_time(settings.replay_fraction)
    needs_predictor = (
        settings.policy is MigrationPolicy.PERDNN and predictor is None
    )
    needs_estimator = (
        contention_estimator is None and settings.use_contention_estimator
    )
    models_blob: bytes | None = None
    cache_key: str | None = None
    if (
        model_cache is not None
        and predictor is None
        and contention_estimator is None
        and (needs_predictor or needs_estimator)
    ):
        cache_key = model_fingerprint(dataset, settings, config, model_names)
        models_blob = model_cache.load(cache_key)
        if models_blob is not None:
            predictor, contention_estimator = pickle.loads(models_blob)
    if settings.policy is MigrationPolicy.PERDNN and predictor is None:
        predictor = train_default_predictor(
            train, config.prediction_history, rng
        )
    if contention_estimator is None and settings.use_contention_estimator:
        contention_estimator = train_default_estimator(pool[0], rng)
    if models_blob is None:
        models_blob = pickle.dumps((predictor, contention_estimator))
        if model_cache is not None and cache_key is not None:
            model_cache.store(cache_key, models_blob)
    partitioner_blob = pickle.dumps(partitioner)
    shards = plan_shards(dataset, config, settings, shard_size)
    dataset_name = dataset.name

    completed: set[int] = set()
    if store is not None:
        fingerprint = run_fingerprint(
            dataset, settings, config, shard_size, model_names,
            record_events, fast_simulate_enabled(), fast_predict_enabled(),
            fast_migrate_enabled(),
        )
        if resume:
            store.check_fingerprint(fingerprint)
            completed = store.completed_shards(len(shards))
        elif store.has_manifest():
            raise ValueError(
                f"checkpoint directory {store.directory!r} already holds a "
                "run; pass resume=True to continue it or use a fresh "
                "directory"
            )
        store.write_manifest(
            fingerprint, len(shards), shard_size, record_events
        )

    # Dataset spill: sub-datasets go to disk at plan time and jobs carry
    # only paths.  Without a user checkpoint directory the results are
    # spilled too (through a scratch store removed on return), so the
    # driver's client-scale footprint is one in-flight shard plus the
    # merged result — independent of the population size.
    scratch_dir: str | None = None
    dataset_store: ShardDatasetStore | None = None
    result_store = store
    if spill_datasets:
        if store is not None:
            dataset_store = ShardDatasetStore(
                os.path.join(store.directory, "datasets")
            )
        else:
            scratch_dir = tempfile.mkdtemp(prefix="repro-shard-spill-")
            dataset_store = ShardDatasetStore(
                os.path.join(scratch_dir, "datasets")
            )
            result_store = CheckpointStore(
                os.path.join(scratch_dir, "results")
            )
            result_store.prepare()
        dataset_store.prepare()

    try:
        jobs = []
        for shard in shards:
            if shard.index in completed:
                continue
            if dataset_store is not None:
                job_dataset = None
                job_path = dataset_store.store(
                    shard.index,
                    _sub_dataset(dataset, shard.trajectory_indices),
                )
            else:
                job_dataset = _sub_dataset(dataset, shard.trajectory_indices)
                job_path = None
            jobs.append(
                _ShardJob(
                    index=shard.index,
                    dataset=job_dataset,
                    partitioner_blob=partitioner_blob,
                    models_blob=models_blob,
                    settings=replace(
                        settings, seed=shard_seed(settings.seed, shard.index)
                    ),
                    config=config,
                    fast_simulate=fast_simulate_enabled(),
                    fast_predict=fast_predict_enabled(),
                    fast_migrate=fast_migrate_enabled(),
                    record_events=record_events,
                    dataset_path=job_path,
                )
            )
        if profile_path is not None and jobs:
            jobs[0] = replace(jobs[0], profile_path=os.fspath(profile_path))
        if spill_datasets:
            # Every subset is on disk; the driver no longer needs the
            # population (the caller may drop its own reference too).
            dataset = None  # type: ignore[assignment]

        def spill(index: int, result: LargeScaleResult) -> None:
            result_store.write_shard(ShardRecord.from_result(index, result))

        results, report = supervise(
            jobs,
            _run_shard_job,
            workers=workers,
            config=supervision,
            mp_context=_pool_context(),
            on_result=spill if result_store is not None else None,
            # With a store the merge streams from disk; holding every
            # shard result in memory as well would defeat the point.
            keep_results=result_store is None,
            executors=executors,
        )
        if dataset_store is not None:
            dataset_store.cleanup()  # scratch, not checkpoints

        surviving = sorted(completed | set(results))
        if result_store is not None:
            records: Iterable[ShardRecord] = (
                result_store.load_shard(index) for index in surviving
            )
        else:
            records = (
                ShardRecord.from_result(index, results[index])
                for index in surviving
            )
        merged = _merge_records(
            dataset_name,
            settings,
            "+".join(model_names),
            records,
            shard_size=shard_size,
            workers=workers,
        )
    finally:
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
    _annotate_supervision(merged, shards, completed, report)
    merged.extras["sharding"]["spill_datasets"] = spill_datasets
    merged.extras["sharding"]["remote_workers"] = list(remote_workers)
    return merged


def _annotate_supervision(
    merged: LargeScaleResult,
    shards: list[ShardPlan],
    resumed: set[int],
    report: SupervisionReport,
) -> None:
    """Record the supervision outcome in ``extras["sharding"]``.

    ``extras`` never enter the exported telemetry snapshot, so the
    accounting can mention retries/resumes without breaking the
    byte-identity invariants.  Conservation: ``sum(clients_per_shard) +
    failed_clients`` equals the planned usable-client total even under a
    partial merge.
    """
    by_index = {shard.index: shard for shard in shards}
    info = merged.extras["sharding"]
    info["planned_shards"] = len(shards)
    info["failed_shards"] = list(report.quarantined)
    info["failed_clients"] = sum(
        by_index[index].num_usable for index in report.quarantined
    )
    info["retries"] = report.retries
    info["resumed_shards"] = sorted(resumed)
