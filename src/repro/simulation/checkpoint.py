"""Per-shard checkpoint spill and resume for the sharded simulator.

Each completed shard is written to the checkpoint directory as one
deterministic JSON document (``shard-00042.json``) the moment the
supervisor delivers it, via an atomic temp-file + rename so a crash or
Ctrl-C can never leave a half-written shard behind.  A ``MANIFEST.json``
pins the run's **settings fingerprint** — a digest over the dataset's
actual trajectory bytes, the simulation settings, the decomposition, and
the fast-path toggles — so resuming against a checkpoint produced by any
different run fails fast instead of silently merging incompatible shards.

The spill doubles as the streaming telemetry export ROADMAP item 1(c)
asks for: with a checkpoint directory attached, the merge loads one shard
record at a time from disk and folds it into the permutation-invariant
registry merge, so the per-shard registries of a 100k+-client run never
co-reside in memory.  JSON float round-tripping is exact (``repr``
shortest-form in, ``float`` out), so a merge streamed from checkpoint
files is byte-identical to the in-memory merge — the checkpoint test
suite pins this.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.config import PerDNNConfig
from repro.mobility.trajectory import TrajectoryDataset
from repro.network.traffic import TrafficSummary
from repro.telemetry import Event, MetricsRegistry, event_from_dict

#: Schema tags (bumped together when the on-disk layout changes).
CHECKPOINT_SCHEMA = "perdnn-checkpoint/1"
SHARD_SCHEMA = "perdnn-shard/1"
MODELS_SCHEMA = "perdnn-models/1"

MANIFEST_NAME = "MANIFEST.json"


def run_fingerprint(
    dataset: TrajectoryDataset,
    settings,
    config: PerDNNConfig,
    shard_size: int,
    model_names: list[str],
    record_events: bool,
    fast_simulate: bool,
    fast_predict: bool,
    fast_migrate: bool = True,
) -> str:
    """Digest everything that determines the per-shard results.

    Two invocations agree on the fingerprint iff they would produce
    byte-identical shards: same trajectory data (hashed point-by-point,
    not by name), same settings/config, same decomposition target, same
    model pool, and same fast-path/event-trace toggles.  ``workers`` is
    deliberately absent — shard results never depend on it.
    """
    hasher = hashlib.sha256()
    hasher.update(CHECKPOINT_SCHEMA.encode())
    for trajectory in dataset.trajectories:
        points = np.ascontiguousarray(trajectory.points, dtype=np.float64)
        hasher.update(str(points.shape[0]).encode())
        hasher.update(points.tobytes())
    faults = settings.faults
    payload = {
        "dataset": {
            "name": dataset.name,
            "interval_seconds": dataset.interval_seconds,
            "num_trajectories": len(dataset.trajectories),
        },
        "settings": {
            "policy": settings.policy.value,
            "migration_radius_m": settings.migration_radius_m,
            "replay_fraction": settings.replay_fraction,
            "max_steps": settings.max_steps,
            "seed": settings.seed,
            "crowded_servers": sorted(settings.crowded_servers),
            "crowded_byte_budget": settings.crowded_byte_budget,
            "use_contention_estimator": settings.use_contention_estimator,
            "model_update_every": settings.model_update_every,
            # Sharded runs only accept profiles (schedules are per-shard);
            # the profile name pins the failure regime.
            "faults": None if faults is None else faults.name,
            "overload": (
                None if settings.overload is None
                else asdict(settings.overload)
            ),
        },
        "config": asdict(config),
        "shard_size": shard_size,
        "models": list(model_names),
        "record_events": bool(record_events),
        "fast_simulate": bool(fast_simulate),
        "fast_predict": bool(fast_predict),
        "fast_migrate": bool(fast_migrate),
    }
    hasher.update(
        json.dumps(payload, sort_keys=True, default=str).encode()
    )
    return hasher.hexdigest()


def model_fingerprint(
    dataset: TrajectoryDataset,
    settings,
    config: PerDNNConfig,
    model_names: list[str],
) -> str:
    """Digest everything that determines the *trained models*.

    Strictly coarser than :func:`run_fingerprint`: two runs that agree
    here train bit-identical predictor/estimator pairs even if they
    differ in shard size, fault profile, horizon, or fast-path toggles —
    model training consumes only the train split (dataset +
    ``replay_fraction``), the run seed, the policy (whether a mobility
    predictor is fit at all), the prediction history length, the
    contention-estimator toggle, and the partitioner pool (the estimator
    profiles the first model's layers).
    """
    hasher = hashlib.sha256()
    hasher.update(MODELS_SCHEMA.encode())
    for trajectory in dataset.trajectories:
        points = np.ascontiguousarray(trajectory.points, dtype=np.float64)
        hasher.update(str(points.shape[0]).encode())
        hasher.update(points.tobytes())
    payload = {
        "interval_seconds": dataset.interval_seconds,
        "replay_fraction": settings.replay_fraction,
        "seed": settings.seed,
        "policy": settings.policy.value,
        "use_contention_estimator": settings.use_contention_estimator,
        "prediction_history": config.prediction_history,
        "models": list(model_names),
    }
    hasher.update(json.dumps(payload, sort_keys=True, default=str).encode())
    return hasher.hexdigest()


class ModelCache:
    """On-disk cache of the trained (predictor, estimator) pickle blob.

    Keyed by :func:`model_fingerprint`, so a repeat run over the same
    dataset/seed skips the dominant fixed cost of city-scale setup —
    random-forest contention profiling plus SVR mobility training — and
    broadcasts the cached bytes to shard workers instead.  Pickle
    round-trips every float bit-exactly and the parent consumes no RNG
    after training, so a cache hit leaves the merged telemetry
    byte-identical to a freshly-trained run (pinned by the model-cache
    test suite).  Writes are atomic (temp file + rename); unreadable or
    mismatched entries are treated as misses and overwritten.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = os.fspath(directory)

    def prepare(self) -> None:
        """Create the directory and prove it is writable."""
        probe = os.path.join(self.directory, ".write-probe")
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(probe, "w", encoding="utf-8") as handle:
                handle.write("ok")
            os.remove(probe)
        except OSError as exc:
            raise ValueError(
                f"model cache directory {self.directory!r} is not "
                f"writable: {exc}"
            ) from exc

    def path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"models-{fingerprint}.pkl")

    def load(self, fingerprint: str) -> bytes | None:
        """The cached blob for ``fingerprint``, or None on a miss."""
        try:
            with open(self.path(fingerprint), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def store(self, fingerprint: str, blob: bytes) -> str:
        path = self.path(fingerprint)
        temp = f"{path}.tmp"
        with open(temp, "wb") as handle:
            handle.write(blob)
        os.replace(temp, path)
        return path


class ShardDatasetStore:
    """On-disk spill of per-shard trajectory subsets.

    The sharded driver normally slices the full
    :class:`~repro.mobility.trajectory.TrajectoryDataset` into one
    sub-dataset per shard and keeps every slice alive in the job list
    until its worker finishes — which pins the whole population in the
    parent for the duration of the run.  Spilling writes each shard's
    subset to ``dataset-00042.pkl`` once at plan time (atomic temp file +
    rename, same discipline as :class:`CheckpointStore`) and hands the
    job only the *path*; the worker loads its own file and the parent can
    drop the population entirely.  Pickle round-trips the float64
    trajectory arrays bit-exactly, so a spilled run is byte-identical to
    an in-memory one (pinned by the equivalence suite).

    The files are scratch, not checkpoints: every invocation re-spills
    the shards it is about to run, so :meth:`cleanup` removes them as
    soon as the supervisor returns.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = os.fspath(directory)

    def prepare(self) -> None:
        """Create the directory and prove it is writable."""
        probe = os.path.join(self.directory, ".write-probe")
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(probe, "w", encoding="utf-8") as handle:
                handle.write("ok")
            os.remove(probe)
        except OSError as exc:
            raise ValueError(
                f"dataset spill directory {self.directory!r} is not "
                f"writable: {exc}"
            ) from exc

    def path(self, index: int) -> str:
        return os.path.join(self.directory, f"dataset-{index:05d}.pkl")

    def store(self, index: int, dataset: TrajectoryDataset) -> str:
        """Atomically spill one shard's sub-dataset; returns its path."""
        path = self.path(index)
        temp = f"{path}.tmp"
        with open(temp, "wb") as handle:
            pickle.dump(dataset, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)
        return path

    @staticmethod
    def read(path: str) -> TrajectoryDataset:
        """Load a spilled sub-dataset (worker side)."""
        with open(path, "rb") as handle:
            return pickle.load(handle)

    @staticmethod
    def read_bytes(path: str) -> bytes:
        """The raw pickle bytes of a spilled sub-dataset.

        Used by the remote executor to ship a spilled dataset in-band to
        a shard worker that cannot see the local filesystem.
        """
        with open(path, "rb") as handle:
            return handle.read()

    def cleanup(self) -> None:
        """Best-effort removal of every spilled file and the directory."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.startswith("dataset-"):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:
                    pass
        try:
            os.rmdir(self.directory)
        except OSError:
            pass


def _summary_to_doc(summary: TrafficSummary) -> dict:
    return {
        "peak_mbps": summary.peak_mbps,
        "peak_server": summary.peak_server,
        "peak_interval": summary.peak_interval,
        "total_bytes": summary.total_bytes,
        "server_peaks_mbps": {
            str(server): peak
            for server, peak in sorted(summary.server_peaks_mbps.items())
        },
    }


def _summary_from_doc(doc: dict) -> TrafficSummary:
    return TrafficSummary(
        peak_mbps=doc["peak_mbps"],
        peak_server=doc["peak_server"],
        peak_interval=doc["peak_interval"],
        total_bytes=doc["total_bytes"],
        server_peaks_mbps={
            int(server): peak
            for server, peak in doc["server_peaks_mbps"].items()
        },
    )


def _registry_from_doc(doc: dict) -> MetricsRegistry:
    registry = MetricsRegistry()
    for metric in doc["counters"]:
        registry.counter(metric["name"], metric["labels"]).value = (
            metric["value"]
        )
    for metric in doc["gauges"]:
        registry.gauge(metric["name"], metric["labels"]).set(metric["value"])
    for metric in doc["histograms"]:
        histogram = registry.histogram(
            metric["name"], tuple(metric["buckets"]), metric["labels"]
        )
        histogram.counts = [int(count) for count in metric["counts"]]
        histogram.sum = float(metric["sum"])
        histogram.count = int(metric["count"])
    return registry


@dataclass
class ShardRecord:
    """Exactly what the merge needs from one completed shard."""

    index: int
    num_clients: int
    num_servers: int
    cache_hits: int
    cache_misses: int
    registry: MetricsRegistry
    events: tuple[Event, ...]
    uplink: TrafficSummary
    downlink: TrafficSummary

    @classmethod
    def from_result(cls, index: int, result) -> "ShardRecord":
        cache = result.extras["partition_cache"]
        return cls(
            index=index,
            num_clients=result.num_clients,
            num_servers=result.num_servers,
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            registry=result.telemetry.registry,
            events=tuple(result.telemetry.trace),
            uplink=result.uplink,
            downlink=result.downlink,
        )

    def to_doc(self) -> dict:
        return {
            "schema": SHARD_SCHEMA,
            "shard": {
                "index": self.index,
                "num_clients": self.num_clients,
                "num_servers": self.num_servers,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
            },
            "metrics": self.registry.as_dict(),
            "events": [event.as_dict() for event in self.events],
            "uplink": _summary_to_doc(self.uplink),
            "downlink": _summary_to_doc(self.downlink),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ShardRecord":
        if doc.get("schema") != SHARD_SCHEMA:
            raise ValueError(
                f"not a shard checkpoint (schema={doc.get('schema')!r})"
            )
        header = doc["shard"]
        return cls(
            index=int(header["index"]),
            num_clients=int(header["num_clients"]),
            num_servers=int(header["num_servers"]),
            cache_hits=int(header["cache_hits"]),
            cache_misses=int(header["cache_misses"]),
            registry=_registry_from_doc(doc["metrics"]),
            events=tuple(
                event_from_dict(payload) for payload in doc["events"]
            ),
            uplink=_summary_from_doc(doc["uplink"]),
            downlink=_summary_from_doc(doc["downlink"]),
        )


class CheckpointStore:
    """One checkpoint directory: manifest + per-shard snapshot files."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = os.fspath(directory)

    # ------------------------------------------------------------------
    # Validation / lifecycle
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Create the directory and prove it is writable.

        Called before any expensive work (predictor/estimator training)
        so a bad ``--checkpoint-dir`` fails in milliseconds.
        """
        probe = os.path.join(self.directory, ".write-probe")
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(probe, "w", encoding="utf-8") as handle:
                handle.write("ok")
            os.remove(probe)
        except OSError as exc:
            raise ValueError(
                f"checkpoint directory {self.directory!r} is not "
                f"writable: {exc}"
            ) from exc

    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def has_manifest(self) -> bool:
        return os.path.exists(self.manifest_path())

    def write_manifest(
        self, fingerprint: str, num_shards: int, shard_size: int,
        record_events: bool,
    ) -> None:
        doc = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": fingerprint,
            "num_shards": num_shards,
            "shard_size": shard_size,
            "record_events": bool(record_events),
        }
        self._write_json(self.manifest_path(), doc)

    def read_manifest(self) -> dict:
        path = self.manifest_path()
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            raise ValueError(
                f"no checkpoint manifest at {path!r}; nothing to resume"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"unreadable checkpoint manifest at {path!r}: {exc}"
            ) from exc
        if doc.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"not a checkpoint manifest (schema={doc.get('schema')!r})"
            )
        return doc

    def check_fingerprint(self, fingerprint: str) -> dict:
        """Load the manifest and reject a stale checkpoint."""
        manifest = self.read_manifest()
        if manifest.get("fingerprint") != fingerprint:
            raise ValueError(
                f"stale checkpoint in {self.directory!r}: it was written "
                "by a run with different settings (dataset, seed, "
                "shard_size, faults/overload, or fast-path toggles); "
                "use a fresh --checkpoint-dir or rerun with the original "
                "settings"
            )
        return manifest

    # ------------------------------------------------------------------
    # Per-shard records
    # ------------------------------------------------------------------
    def shard_path(self, index: int) -> str:
        return os.path.join(self.directory, f"shard-{index:05d}.json")

    def write_shard(self, record: ShardRecord) -> str:
        """Atomically spill one shard (temp file + rename)."""
        path = self.shard_path(record.index)
        self._write_json(path, record.to_doc())
        return path

    def load_shard(self, index: int) -> ShardRecord:
        with open(self.shard_path(index), encoding="utf-8") as handle:
            return ShardRecord.from_doc(json.load(handle))

    def completed_shards(self, num_shards: int) -> set[int]:
        """Indices whose shard files exist and parse cleanly.

        A torn or corrupt file (impossible via the atomic writer, but the
        directory is user-controlled) is treated as *not completed* — the
        shard simply re-runs and overwrites it.
        """
        completed: set[int] = set()
        for index in range(num_shards):
            path = self.shard_path(index)
            if not os.path.exists(path):
                continue
            try:
                with open(path, encoding="utf-8") as handle:
                    doc = json.load(handle)
                if (
                    doc.get("schema") == SHARD_SCHEMA
                    and doc.get("shard", {}).get("index") == index
                ):
                    completed.add(index)
            except (OSError, json.JSONDecodeError):
                continue
        return completed

    # ------------------------------------------------------------------
    def _write_json(self, path: str, doc: dict) -> None:
        text = json.dumps(
            doc, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        temp = f"{path}.tmp"
        with open(temp, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(text)
            handle.write("\n")
        os.replace(temp, path)
