"""Multi-server hand-off chains: a commute through k edge servers.

Generalizes the two-server experiment of Figs 1/7 to a sequence of
hand-offs — the situation the paper's introduction worries about ("mobile
users who frequently change their target edge servers would be especially
vulnerable to the fluctuation").  Each visited server may hold a different
premigrated fraction of the client's upload schedule, and the client's
upload progress resets at every hand-off (a new server knows only what was
migrated to it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PerDNNConfig
from repro.partitioning.partitioner import DNNPartitioner


@dataclass(frozen=True)
class HandoffChainResult:
    """Per-query latencies across a chain of server visits."""

    latencies: tuple[float, ...]
    visit_boundaries: tuple[int, ...]  # first query index of each visit
    peak_per_visit: tuple[float, ...]
    queries_per_visit: tuple[int, ...]

    @property
    def num_visits(self) -> int:
        return len(self.visit_boundaries)

    @property
    def total_queries(self) -> int:
        return len(self.latencies)


def simulate_handoff_chain(
    partitioner: DNNPartitioner,
    config: PerDNNConfig,
    queries_per_visit: tuple[int, ...],
    premigrated_fractions: tuple[float, ...],
    server_slowdowns: tuple[float, ...] | None = None,
) -> HandoffChainResult:
    """Run a query sequence across a chain of edge-server visits.

    ``queries_per_visit[i]`` queries execute at server ``i``, which starts
    with ``premigrated_fractions[i]`` of the upload schedule already cached
    (0 = IONN cold start, 1 = perfect proactive migration) and optionally
    its own GPU ``server_slowdowns[i]``.
    """
    if len(queries_per_visit) != len(premigrated_fractions):
        raise ValueError("queries and fractions must align")
    if server_slowdowns is None:
        server_slowdowns = tuple(1.0 for _ in queries_per_visit)
    if len(server_slowdowns) != len(queries_per_visit):
        raise ValueError("slowdowns must align with visits")
    if any(n < 1 for n in queries_per_visit):
        raise ValueError("every visit needs at least one query")
    if any(not 0.0 <= f <= 1.0 for f in premigrated_fractions):
        raise ValueError("fractions must be in [0, 1]")
    latencies: list[float] = []
    boundaries: list[int] = []
    peaks: list[float] = []
    byte_rate = config.network.uplink_bps / 8.0
    for queries, fraction, slowdown in zip(
        queries_per_visit, premigrated_fractions, server_slowdowns
    ):
        result = partitioner.partition(slowdown)
        schedule = result.schedule
        total = schedule.total_bytes
        received = fraction * total
        boundaries.append(len(latencies))
        visit_peak = 0.0
        for _ in range(queries):
            latency = schedule.latency_after_bytes(received)
            latencies.append(latency)
            visit_peak = max(visit_peak, latency)
            elapsed = latency + config.query_gap_seconds
            received = min(total, received + byte_rate * elapsed)
        peaks.append(visit_peak)
    return HandoffChainResult(
        latencies=tuple(latencies),
        visit_boundaries=tuple(boundaries),
        peak_per_visit=tuple(peaks),
        queries_per_visit=tuple(queries_per_visit),
    )
