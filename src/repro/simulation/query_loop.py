"""Continuous query/upload integration.

The paper's workload: a mobile cognitive-assistance client raises a DNN
query 0.5 s after the previous one completed, while (in the background) it
incrementally uploads the not-yet-present server-side layers over the
wireless uplink.  Query latency at any moment is determined by how much of
the upload schedule has arrived; each completed chunk unlocks a faster
plan (IONN's incremental offloading).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overload.admission import QUEUE_WAIT_BUCKETS
from repro.partitioning.uploading import UploadSchedule
from repro.telemetry.registry import MetricsRegistry

#: Fixed bucket bounds (seconds) for the query-latency histogram; spans
#: on-device MobileNet (~tens of ms) through cold-start ResNet (~1 s+).
QUERY_LATENCY_BUCKETS: tuple[float, ...] = (
    0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2,
)


@dataclass(frozen=True)
class QueryRecord:
    """One executed query."""

    start_time: float  # seconds from window start
    latency: float
    received_bytes: float  # upload progress when the query started


@dataclass(frozen=True)
class WindowOutcome:
    """Result of integrating one query window.

    The fast steady-state path skips materializing per-query records and
    reports the tally in ``num_queries`` instead; ``count`` is the one
    true query count either way.
    """

    queries: tuple[QueryRecord, ...]
    end_bytes: float  # upload progress at window end
    num_queries: int | None = None

    @property
    def count(self) -> int:
        return len(self.queries) if self.num_queries is None else self.num_queries


def _steady_query_count(
    first_start: float,
    latency: float,
    query_gap: float,
    duration: float,
    count_memo: dict | None,
) -> int:
    """Queries completed by the scalar loop when latency is constant.

    Replays the exact serial float recurrence ``t += latency + query_gap``
    (closed forms can land on the other side of a float boundary), but
    memoized on the tuple of inputs so each distinct window shape is
    integrated once per run.
    """
    key = (first_start, latency, query_gap, duration)
    if count_memo is not None:
        cached = count_memo.get(key)
        if cached is not None:
            return cached
    count = 0
    t = first_start
    while t + latency <= duration:
        count += 1
        t += latency + query_gap
    if count_memo is not None:
        count_memo[key] = count
    return count


def run_query_window(
    schedule: UploadSchedule,
    start_bytes: float,
    uplink_bps: float,
    duration: float,
    query_gap: float,
    uploading: bool = True,
    first_gap: float = 0.0,
    latency_overhead: float = 0.0,
    queue_wait: float | None = None,
    telemetry: MetricsRegistry | None = None,
    fast: bool = False,
    count_memo: dict | None = None,
) -> WindowOutcome:
    """Integrate the query loop over ``duration`` seconds.

    ``start_bytes`` of the schedule are already at the server; when
    ``uploading`` the client pushes the remainder at ``uplink_bps``.  A
    query counts when it *completes* inside the window.  ``first_gap``
    delays the first query (used to stitch consecutive windows);
    ``latency_overhead`` is added to every query (e.g. backhaul routing
    cost when the serving cell is remote).  ``queue_wait`` — only passed
    by the overload layer — delays the window's first query behind the
    server's admission queue and is observed into the
    ``overload.queue_wait_seconds`` histogram.  With ``telemetry`` the
    window records each completed query and its (simulated) latency.

    ``fast`` skips materializing per-query records: when no bytes move
    during the window (nothing left to upload, or not uploading at all)
    every query has the same latency and the count comes from the
    memoized serial recurrence; windows with upload progress replay the
    exact scalar integration record-free.  Telemetry is bit-identical to
    the scalar loop either way; only ``outcome.queries`` is empty
    (``outcome.count`` still reports the tally).
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if start_bytes < 0:
        raise ValueError("start_bytes must be non-negative")
    if latency_overhead < 0:
        raise ValueError("latency_overhead must be non-negative")
    if queue_wait is not None and queue_wait < 0:
        raise ValueError("queue_wait must be non-negative")
    total = schedule.total_bytes
    start_bytes = min(start_bytes, total)
    byte_rate = uplink_bps / 8.0 if uploading else 0.0
    if fast and (byte_rate == 0.0 or start_bytes >= total):
        # received is constant: min(total, start_bytes + rate*t) equals the
        # clamped start_bytes at every query start time.
        latency = schedule.latency_after_bytes(start_bytes) + latency_overhead
        first_start = first_gap + (queue_wait or 0.0)
        count = _steady_query_count(
            first_start, latency, query_gap, duration, count_memo
        )
        end_bytes = min(total, start_bytes + byte_rate * duration)
        if telemetry is not None:
            telemetry.counter("query.windows").inc()
            if queue_wait is not None:
                telemetry.histogram(
                    "overload.queue_wait_seconds", QUEUE_WAIT_BUCKETS
                ).observe(queue_wait)
            if count:
                telemetry.counter("query.completed").inc(count)
                telemetry.histogram(
                    "query.latency_seconds", QUERY_LATENCY_BUCKETS
                ).observe_repeated(latency, count)
        return WindowOutcome(queries=(), end_bytes=end_bytes, num_queries=count)
    if fast:
        # Upload in progress: the exact serial integration, minus the
        # per-query record objects.  Operation for operation the same float
        # recurrence as the scalar loop below — the latency stage advances
        # incrementally (received bytes are nondecreasing, so the stage
        # index only moves right, landing exactly where bisect would) and
        # consecutive queries at the same latency collapse into one
        # ``observe_repeated`` replay, which is bit-identical to the
        # per-query ``observe`` sequence.
        cumulative = schedule._cumulative_list
        latencies = schedule.latencies
        num_stages = len(cumulative)
        stage = 0
        count = 0
        runs: list[tuple[float, int]] = []  # (latency, consecutive queries)
        run_latency = 0.0
        run_count = 0
        t = first_gap + (queue_wait or 0.0)
        # Cache the next stage threshold so the (frequent) queries that do
        # not cross one skip the stage walk; ``nudged >= next_bound`` is
        # the same float comparison the walk's first iteration would make.
        next_bound = cumulative[0] if num_stages else None
        latency = latencies[0] + latency_overhead
        while True:
            received = min(total, start_bytes + byte_rate * t)
            nudged = received + 1e-9
            if next_bound is not None and nudged >= next_bound:
                while stage < num_stages and cumulative[stage] <= nudged:
                    stage += 1
                next_bound = (
                    cumulative[stage] if stage < num_stages else None
                )
                latency = latencies[stage] + latency_overhead
            if stage == num_stages:
                # Past the last threshold the stage can never advance
                # again: every remaining query repeats at this latency, so
                # the tail is the steady recurrence starting at ``t`` —
                # the memoized replay performs the identical serial
                # ``t += latency + gap`` walk the loop below would.
                tail = _steady_query_count(
                    t, latency, query_gap, duration, count_memo
                )
                if tail:
                    count += tail
                    if run_count and latency == run_latency:
                        run_count += tail
                    else:
                        if run_count:
                            runs.append((run_latency, run_count))
                        run_latency = latency
                        run_count = tail
                break
            if t + latency > duration:
                break
            if run_count and latency == run_latency:
                run_count += 1
            else:
                if run_count:
                    runs.append((run_latency, run_count))
                run_latency = latency
                run_count = 1
            count += 1
            t += latency + query_gap
        if run_count:
            runs.append((run_latency, run_count))
        end_bytes = min(total, start_bytes + byte_rate * duration)
        if telemetry is not None:
            telemetry.counter("query.windows").inc()
            if queue_wait is not None:
                telemetry.histogram(
                    "overload.queue_wait_seconds", QUEUE_WAIT_BUCKETS
                ).observe(queue_wait)
            if count:
                telemetry.counter("query.completed").inc(count)
                histogram = telemetry.histogram(
                    "query.latency_seconds", QUERY_LATENCY_BUCKETS
                )
                for run_latency, run_count in runs:
                    histogram.observe_repeated(run_latency, run_count)
        return WindowOutcome(queries=(), end_bytes=end_bytes, num_queries=count)
    records: list[QueryRecord] = []
    t = first_gap + (queue_wait or 0.0)
    while True:
        received = min(total, start_bytes + byte_rate * t)
        latency = schedule.latency_after_bytes(received) + latency_overhead
        if t + latency > duration:
            break
        records.append(
            QueryRecord(start_time=t, latency=latency, received_bytes=received)
        )
        t += latency + query_gap
    end_bytes = min(total, start_bytes + byte_rate * duration)
    if telemetry is not None:
        telemetry.counter("query.windows").inc()
        if queue_wait is not None:
            telemetry.histogram(
                "overload.queue_wait_seconds", QUEUE_WAIT_BUCKETS
            ).observe(queue_wait)
        if records:
            telemetry.counter("query.completed").inc(len(records))
            latencies = telemetry.histogram(
                "query.latency_seconds", QUERY_LATENCY_BUCKETS
            )
            for record in records:
                latencies.observe(record.latency)
    return WindowOutcome(queries=tuple(records), end_bytes=end_bytes)


def run_local_window(
    local_latency: float,
    duration: float,
    query_gap: float,
    telemetry: MetricsRegistry | None = None,
    record_fallback: bool = True,
    fast: bool = False,
    count_memo: dict | None = None,
) -> WindowOutcome:
    """Integrate one interval of queries executed fully on the client.

    The graceful-degradation path: when no live edge server is reachable
    (crash, blackout), the client answers every query with the
    partitioner's all-local plan at ``local_latency`` per query — slower,
    but no query is ever dropped.  Counting rules match
    :func:`run_query_window`; locally-served queries additionally bump the
    ``query.local_fallback`` counter unless ``record_fallback`` is off
    (overload shedding counts its windows separately — shedding is a
    capacity decision, not lost availability).
    """
    if local_latency <= 0:
        raise ValueError("local_latency must be positive")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if fast:
        # Local windows are always steady state (constant latency, no
        # upload), so the count shortcut applies unconditionally.
        count = _steady_query_count(
            0.0, local_latency, query_gap, duration, count_memo
        )
        if telemetry is not None:
            telemetry.counter("query.windows").inc()
            if count:
                telemetry.counter("query.completed").inc(count)
                if record_fallback:
                    telemetry.counter("query.local_fallback").inc(count)
                telemetry.histogram(
                    "query.latency_seconds", QUERY_LATENCY_BUCKETS
                ).observe_repeated(local_latency, count)
        return WindowOutcome(queries=(), end_bytes=0.0, num_queries=count)
    records: list[QueryRecord] = []
    t = 0.0
    while t + local_latency <= duration:
        records.append(
            QueryRecord(start_time=t, latency=local_latency, received_bytes=0.0)
        )
        t += local_latency + query_gap
    if telemetry is not None:
        telemetry.counter("query.windows").inc()
        if records:
            telemetry.counter("query.completed").inc(len(records))
            if record_fallback:
                telemetry.counter("query.local_fallback").inc(len(records))
            latencies = telemetry.histogram(
                "query.latency_seconds", QUERY_LATENCY_BUCKETS
            )
            for record in records:
                latencies.observe(record.latency)
    return WindowOutcome(queries=tuple(records), end_bytes=0.0)
