"""Performance benchmark harness for the planner hot paths (BENCH trajectory).

Times the code the large-scale simulator leans on hardest — random-forest
fit/predict (single-row and batched), partition planning, and a small
end-to-end :func:`~repro.simulation.large_scale.run_large_scale` run — on
deterministic seeded inputs, reporting wall-clock medians over repeats.
The vectorized paths are timed against the pre-vectorization node-walk
reference (:func:`repro.ml.tree.reference_predict`) on identical inputs,
so every BENCH_perf.json documents the speedup it ships with.

``repro bench [--quick] [--out BENCH_perf.json]`` is the CLI entry point;
``benchmarks/bench_perf_hotpaths.py`` wraps the same functions as pytest
benchmarks.  Each PR's committed ``BENCH_perf.json`` is the perf
trajectory: regenerate it (full mode) when a PR claims a perf win.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Callable

import numpy as np

SCHEMA = "perdnn-bench/1"

#: benchmark name -> metric keys that must exist and be positive.
REQUIRED_RESULTS: dict[str, tuple[str, ...]] = {
    "forest_fit": ("seconds_median",),
    "forest_predict_single": ("seconds_median",),
    "forest_predict_batch": ("seconds_median", "speedup_vs_reference"),
    "forest_predict_reference": ("seconds_median",),
    "partition_planning": ("seconds_median", "cached_seconds_median"),
    "large_scale": (
        "seconds_median",
        "reference_seconds_median",
        "speedup_vs_reference",
    ),
    "large_scale_sharded": (
        "seconds_median",
        "reference_seconds_median",
        "speedup_vs_reference",
        "clients_steps_per_second",
    ),
    "large_scale_sharded_checkpointed": (
        "seconds_median",
        "baseline_seconds_median",
        "clients_steps_per_second",
    ),
    "large_scale_sharded_100k": (
        "seconds_median",
        "clients_steps_per_second",
        "clients_steps_per_second_per_worker",
        "speedup_vs_10k_per_worker",
        "peak_rss_mb",
    ),
    "large_scale_sharded_1m": (
        "seconds_median",
        "clients_steps_per_second",
        "clients_steps_per_second_per_worker",
        "speedup_vs_100k_per_worker",
        "peak_rss_mb",
    ),
}

#: Per-worker throughput (clients x steps / second / worker) of the 10k
#: ``large_scale_sharded`` case as committed before the 100k scaling work
#: (BENCH_perf.json at commit 93e7bec).  The 100k case reports its own
#: per-worker throughput normalized against this fixed trajectory point,
#: so the speedup is comparable across machines of different core counts
#: and across reruns of the harness.
SEED_10K_CLIENT_STEPS_PER_WORKER = 6056.5

#: Per-worker throughput of the ``large_scale_sharded_100k`` case as
#: committed by the 100k scaling PR (BENCH_perf.json at commit d0ab55b).
#: The 1M-shape case normalizes against this fixed point the same way the
#: 100k case normalizes against the 10k seed, giving a machine-portable
#: per-client-step speedup chain: 10k -> 100k -> 1M.
SEED_100K_CLIENT_STEPS_PER_WORKER = 23805.876


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``repeats`` calls (after one warmup)."""
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(statistics.median(times))


def bench_forest(quick: bool, seed: int, repeats: int) -> dict:
    """Forest fit + single/batch/reference predict timings.

    The batch workload is the acceptance workload: a 1000x8 query matrix
    against a 40-tree forest (the planner's per-interval shape at scale).
    """
    from repro.ml.forest import RandomForestRegressor
    from repro.ml.tree import reference_predict

    n_train = 200 if quick else 400
    n_trees = 10 if quick else 40
    n_rows, n_features = 1000, 8
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_train, n_features))
    y = (
        np.sin(3.0 * X[:, 0])
        + X[:, 1] * X[:, 2]
        + 0.1 * rng.normal(size=n_train)
    )
    X_query = rng.uniform(size=(n_rows, n_features))

    def fit() -> RandomForestRegressor:
        return RandomForestRegressor(
            n_estimators=n_trees,
            max_depth=16,
            max_features=None,
            rng=np.random.default_rng(seed + 1),
        ).fit(X, y)

    fit_seconds = _median_seconds(fit, max(1, repeats // 2))
    forest = fit()
    single_calls = 20 if quick else 100

    def predict_single() -> None:
        for i in range(single_calls):
            forest.predict(X_query[i : i + 1])

    batch_seconds = _median_seconds(lambda: forest.predict(X_query), repeats)
    with reference_predict():
        reference_seconds = _median_seconds(
            lambda: forest.predict(X_query), repeats
        )
    return {
        "forest_fit": {
            "seconds_median": fit_seconds,
            "n_train": n_train,
            "trees": n_trees,
        },
        "forest_predict_single": {
            "seconds_median": _median_seconds(predict_single, repeats),
            "calls": single_calls,
        },
        "forest_predict_batch": {
            "seconds_median": batch_seconds,
            "rows": n_rows,
            "features": n_features,
            "trees": n_trees,
            "speedup_vs_reference": reference_seconds / batch_seconds,
        },
        "forest_predict_reference": {
            "seconds_median": reference_seconds,
            "rows": n_rows,
        },
    }


def _build_partitioner(model: str):
    from repro.core.config import PerDNNConfig
    from repro.dnn.models import build_model
    from repro.partitioning.partitioner import DNNPartitioner
    from repro.profiling.hardware import odroid_xu4, titan_xp_server
    from repro.profiling.profiler import ExecutionProfile

    config = PerDNNConfig()
    profile = ExecutionProfile.build(
        build_model(model), odroid_xu4(), titan_xp_server()
    )
    return DNNPartitioner(
        profile, config.network.uplink_bps, config.network.downlink_bps
    )


def bench_partition(quick: bool, seed: int, repeats: int) -> dict:
    """Partition planning: a cold sweep of slowdown levels, then the same
    sweep answered from the quantized plan cache."""
    from repro.partitioning.partitioner import DNNPartitioner

    template = _build_partitioner("mobilenet" if quick else "inception")
    slowdowns = [1.0 + 0.25 * i for i in range(13)]  # 1.0 .. 4.0

    def cold_sweep() -> None:
        fresh = DNNPartitioner(
            template.profile,
            template.uplink_bps,
            template.downlink_bps,
            max_chunk_bytes=template.max_chunk_bytes,
        )
        for slowdown in slowdowns:
            fresh.partition(slowdown)

    def cached_sweep() -> None:
        for slowdown in slowdowns:
            template.partition(slowdown)

    cached_sweep()  # populate the template's cache before timing hits
    return {
        "partition_planning": {
            "seconds_median": _median_seconds(cold_sweep, repeats),
            "cached_seconds_median": _median_seconds(cached_sweep, repeats),
            "plans": len(slowdowns),
        }
    }


def bench_large_scale(quick: bool, seed: int, repeats: int) -> dict:
    """Small end-to-end run, vectorized vs. node-walk reference.

    The predictor and contention estimator are trained once and shared, so
    the timed region is the simulation loop itself — association, batched
    interval planning, query windows, proactive migration.  Both paths see
    identical inputs and produce byte-identical telemetry (the equivalence
    tests pin this); only the wall clock differs.
    """
    from repro.core.config import PerDNNConfig
    from repro.core.master import MigrationPolicy
    from repro.ml.tree import reference_predict
    from repro.simulation.large_scale import (
        SimulationSettings,
        run_large_scale,
        train_default_estimator,
        train_default_predictor,
    )
    from repro.trajectories.synthetic import kaist_like

    # Full mode uses the paper's KAIST user count so each interval plans
    # across enough servers for the batched path to matter end to end.
    users, dataset_steps, max_steps = (
        (4, 40, 4) if quick else (31, 120, 20)
    )
    rng = np.random.default_rng(seed)
    dataset = kaist_like(rng, num_users=users, duration_steps=dataset_steps)
    config = PerDNNConfig(migration_radius_m=100.0)
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=max_steps, seed=seed
    )
    partitioner = _build_partitioner("mobilenet")
    train, _ = dataset.split_time(settings.replay_fraction)
    aux_rng = np.random.default_rng(seed)
    predictor = train_default_predictor(
        train, config.prediction_history, aux_rng
    )
    estimator = train_default_estimator(partitioner, aux_rng)

    def run() -> None:
        run_large_scale(
            dataset,
            _build_partitioner("mobilenet"),
            settings,
            config=config,
            predictor=predictor,
            contention_estimator=estimator,
        )

    seconds = _median_seconds(run, repeats)
    with reference_predict():
        reference_seconds = _median_seconds(run, repeats)
    return {
        "large_scale": {
            "seconds_median": seconds,
            "reference_seconds_median": reference_seconds,
            "speedup_vs_reference": reference_seconds / seconds,
            "clients": users,
            "steps": max_steps,
        }
    }


def _sharded_workload(quick: bool, seed: int) -> dict:
    """The shared city-scale workload of the sharded benchmarks.

    Built once per `repro bench` invocation: dataset generation and
    predictor/estimator training at the 10k-client shape dominate setup
    time, and sharing them keeps the in-memory and checkpointed benches
    timing the identical simulation.
    """
    from repro.core.config import PerDNNConfig
    from repro.core.master import MigrationPolicy
    from repro.simulation.large_scale import (
        SimulationSettings,
        train_default_estimator,
        train_default_predictor,
    )
    from repro.trajectories.synthetic import kaist_like

    users, dataset_steps, max_steps, shard_size = (
        (1000, 12, 3, 128) if quick else (10000, 25, 8, 512)
    )
    workers = max(1, min(os.cpu_count() or 1, 8))
    rng = np.random.default_rng(seed)
    dataset = kaist_like(rng, num_users=users, duration_steps=dataset_steps)
    config = PerDNNConfig(migration_radius_m=100.0)
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=max_steps, seed=seed
    )
    partitioner = _build_partitioner("mobilenet")
    train, _ = dataset.split_time(settings.replay_fraction)
    aux_rng = np.random.default_rng(seed)
    predictor = train_default_predictor(
        train, config.prediction_history, aux_rng
    )
    estimator = train_default_estimator(partitioner, aux_rng)
    return {
        "dataset": dataset,
        "config": config,
        "settings": settings,
        "predictor": predictor,
        "estimator": estimator,
        "max_steps": max_steps,
        "shard_size": shard_size,
        "workers": workers,
    }


def _run_sharded_workload(workload: dict, checkpoint_dir=None):
    from repro.simulation.sharding import run_large_scale_sharded

    return run_large_scale_sharded(
        workload["dataset"],
        _build_partitioner("mobilenet"),
        workload["settings"],
        config=workload["config"],
        shard_size=workload["shard_size"],
        workers=workload["workers"],
        predictor=workload["predictor"],
        contention_estimator=workload["estimator"],
        record_events=False,
        checkpoint_dir=checkpoint_dir,
    )


def bench_large_scale_sharded(
    quick: bool, seed: int, repeats: int, workload: dict | None = None
) -> dict:
    """City-scale run through the sharded multiprocessing driver.

    The headline number is throughput — client-intervals simulated per
    wall-clock second — at a population the single-process loop cannot
    sustain interactively (10k+ clients in full mode; a 1k smoke in
    quick/CI mode).  The reference is the same workload through the
    unsharded scalar loop (:func:`~repro.simulation.large_scale.
    reference_simulate`), timed once: at this scale it is far too slow
    for repeated medians, which is the point of the sharded driver.

    Predictor and contention estimator are trained once and shared, so
    both paths time the simulation itself; the sharded run drops the
    event trace (``record_events=False``) — counters are unaffected and
    at city scale the trace dominates inter-process transfer.
    """
    from repro.simulation.large_scale import (
        reference_simulate,
        run_large_scale,
    )

    workload = workload or _sharded_workload(quick, seed)
    max_steps = workload["max_steps"]

    seconds = _median_seconds(lambda: _run_sharded_workload(workload), repeats)
    result = _run_sharded_workload(workload)
    num_clients = result.num_clients
    with reference_simulate():
        start = time.perf_counter()
        run_large_scale(
            workload["dataset"],
            _build_partitioner("mobilenet"),
            workload["settings"],
            config=workload["config"],
            predictor=workload["predictor"],
            contention_estimator=workload["estimator"],
        )
        reference_seconds = time.perf_counter() - start
    return {
        "large_scale_sharded": {
            "seconds_median": seconds,
            "reference_seconds_median": reference_seconds,
            "speedup_vs_reference": reference_seconds / seconds,
            "clients_steps_per_second": num_clients * max_steps / seconds,
            "clients": num_clients,
            "steps": max_steps,
            "shards": result.extras["sharding"]["shards"],
            "shard_size": workload["shard_size"],
            "workers": workload["workers"],
        }
    }


def bench_large_scale_sharded_checkpointed(
    quick: bool,
    seed: int,
    repeats: int,
    workload: dict | None = None,
) -> dict:
    """The sharded workload again, with per-shard checkpoint spill.

    Every timed run writes each completed shard to a fresh temporary
    checkpoint directory and streams the merge back from those files —
    the full fault-tolerant path (supervisor + spill + streaming fold).
    ``overhead_fraction`` tracks its cost against the in-memory merge on
    the identical workload; the acceptance target is < 5% wall-clock at
    the 10k-client shape.

    Both sides are measured *inside this case*, after one shared warmup
    run, so they see identical process state (import caches, allocator
    high-water marks, trained models).  Importing the earlier
    ``large_scale_sharded`` median as the baseline — measured minutes
    earlier in a colder process — used to report a *negative* overhead,
    i.e. the delta was warmup noise, not spill cost.  The sides are
    also *interleaved* pair by pair, and ``overhead_fraction`` is the
    *median of the pairwise ratios*: a block of baseline runs followed
    by a block of spill runs puts each side in a different multi-minute
    host scheduling window, which swamps a ratio this small (observed
    ±20% on identical work), whereas the two halves of an adjacent pair
    almost always share a window — the ratio cancels it — and the
    median rejects the occasional pair a window shift lands inside.
    ``seconds_median``/``baseline_seconds_median`` stay the per-side
    minima (the noise-floor throughput figures).
    """
    import shutil
    import tempfile

    workload = workload or _sharded_workload(quick, seed)
    max_steps = workload["max_steps"]

    def run():
        scratch = tempfile.mkdtemp(prefix="bench-ckpt-")
        try:
            return _run_sharded_workload(workload, checkpoint_dir=scratch)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    # Shared warmup: one spill run touches every code path both sides
    # use (the plain run's paths are a strict subset), so the baseline
    # and checkpointed medians below start from the same warm state.
    result = run()
    baseline_times: list[float] = []
    spill_times: list[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        _run_sharded_workload(workload)
        baseline_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        run()
        spill_times.append(time.perf_counter() - start)
    baseline_seconds = min(baseline_times)
    seconds = min(spill_times)
    ratios = sorted(
        spill / base for spill, base in zip(spill_times, baseline_times)
    )
    mid = len(ratios) // 2
    median_ratio = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    entry = {
        "seconds_median": seconds,
        "clients_steps_per_second": result.num_clients * max_steps / seconds,
        "clients": result.num_clients,
        "steps": max_steps,
        "shards": result.extras["sharding"]["shards"],
        "shard_size": workload["shard_size"],
        "workers": workload["workers"],
        "baseline_seconds_median": baseline_seconds,
        "baseline_seconds_all": baseline_times,
        "seconds_all": spill_times,
        "overhead_fraction": median_ratio - 1.0,
    }
    return {"large_scale_sharded_checkpointed": entry}


def _child_entry(conn, fn: Callable[[], dict]) -> None:
    import resource

    start = time.perf_counter()
    payload = fn()
    seconds = time.perf_counter() - start
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    conn.send(
        {
            "seconds": seconds,
            "peak_rss_mb": max(self_kb, child_kb) / 1024.0,
            "payload": payload,
        }
    )
    conn.close()


def _child_entry_repeats(conn, setup, run, repeats: int) -> None:
    import resource

    state = setup()
    runs = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        payload = run(state)
        runs.append({"seconds": time.perf_counter() - start, "payload": payload})
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    conn.send({"runs": runs, "peak_rss_mb": max(self_kb, child_kb) / 1024.0})
    conn.close()


def _measure_repeats_in_child(setup, run, repeats: int) -> dict:
    """Fork first, then build ``state = setup()`` and time ``run(state)``
    ``repeats`` times in that one child.

    Forking *before* setup matters beyond the fresh ``ru_maxrss`` mark:
    when the parent builds population-scale state and the child only
    inherits it, CPython's refcount updates write to every inherited page
    that holds a dataset object, so the child spends the whole run
    copy-on-write-faulting gigabytes and the measured time tracks the
    parent's heap size (observed 10-25% inflation at the 1M shape,
    growing with how many earlier cases the bench process had run).  A
    child that builds the state itself owns those pages outright.
    Repeats share the one setup; the reported ``peak_rss_mb`` covers
    setup plus the largest shard worker, as before.  Falls back to an
    in-process loop where fork is unavailable.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        import resource

        state = setup()
        runs = []
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            payload = run(state)
            runs.append(
                {"seconds": time.perf_counter() - start, "payload": payload}
            )
        self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        return {"runs": runs, "peak_rss_mb": max(self_kb, child_kb) / 1024.0}
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_child_entry_repeats, args=(child_conn, setup, run, repeats)
    )
    process.start()
    child_conn.close()
    try:
        measured = parent_conn.recv()
    finally:
        process.join()
        parent_conn.close()
    return measured


def _measure_in_child(fn: Callable[[], dict]) -> dict:
    """Time ``fn`` in a forked child and report its peak RSS.

    ``ru_maxrss`` is a process-lifetime high-water mark, so measuring in
    the bench process itself would report whatever earlier cases peaked
    at; a fresh fork gives the case its own zeroed mark.  The reported
    figure is the max of the child's own peak (the parent side of the
    sharded run: setup, supervisor, streaming merge) and its waited-for
    children's peak (the shard workers) — i.e. the largest single process
    the run ever needed, which is what a memory ceiling bounds.  Falls
    back to an in-process run (RSS of this process, high-water caveat and
    all) where fork is unavailable.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        import resource

        start = time.perf_counter()
        payload = fn()
        seconds = time.perf_counter() - start
        self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        return {
            "seconds": seconds,
            "peak_rss_mb": max(self_kb, child_kb) / 1024.0,
            "payload": payload,
        }
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(target=_child_entry, args=(child_conn, fn))
    process.start()
    child_conn.close()
    try:
        measured = parent_conn.recv()
    finally:
        process.join()
        parent_conn.close()
    return measured


def bench_large_scale_sharded_100k(quick: bool, seed: int, repeats: int) -> dict:
    """The 100k-client shape through the sharded driver.

    The scaling headline of ROADMAP item 1: a population an order of
    magnitude past the 10k case, run with ``record_events=False`` through
    the batched query-window/migration paths and the streaming merge.
    Reported per-worker throughput is normalized against the committed
    pre-scaling 10k baseline (:data:`SEED_10K_CLIENT_STEPS_PER_WORKER`).
    Measured with :func:`_measure_repeats_in_child`: one forked child
    builds the dataset and models itself (no copy-on-write refcount
    penalty on inherited state, and a fresh ``ru_maxrss`` mark), then
    times ``repeats`` full runs; the *minimum* wall-clock is reported —
    for CPU-bound work slowdowns are additive and speedups are not, so
    the minimum is the noise-robust estimator against multi-minute host
    scheduling windows.

    Setup is untimed and deliberately amortized: the mobility predictor
    trains on a 10k-user subsample of the train split (SVR training is
    superlinear in users and contributes nothing to the timed region —
    the broadcast blob the shards receive is identical in size either
    way).  Quick mode scales the population down for CI smoke runs.
    """
    from repro.core.config import PerDNNConfig
    from repro.core.master import MigrationPolicy
    from repro.mobility.trajectory import TrajectoryDataset
    from repro.simulation.large_scale import (
        SimulationSettings,
        train_default_estimator,
        train_default_predictor,
    )
    from repro.simulation.sharding import run_large_scale_sharded
    from repro.trajectories.synthetic import kaist_like

    users, dataset_steps, max_steps, shard_size = (
        (2000, 12, 3, 128) if quick else (100_000, 25, 8, 512)
    )
    workers = max(1, min(os.cpu_count() or 1, 8))
    config = PerDNNConfig(migration_radius_m=100.0)
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=max_steps, seed=seed
    )

    def setup():
        rng = np.random.default_rng(seed)
        dataset = kaist_like(
            rng, num_users=users, duration_steps=dataset_steps
        )
        partitioner = _build_partitioner("mobilenet")
        train, _ = dataset.split_time(settings.replay_fraction)
        train_sub = TrajectoryDataset(
            name=train.name,
            interval_seconds=train.interval_seconds,
            bbox=train.bbox,
            trajectories=train.trajectories[: min(users, 10_000)],
        )
        aux_rng = np.random.default_rng(seed)
        predictor = train_default_predictor(
            train_sub, config.prediction_history, aux_rng
        )
        estimator = train_default_estimator(partitioner, aux_rng)
        return dataset, predictor, estimator

    def run(state) -> dict:
        dataset, predictor, estimator = state
        result = run_large_scale_sharded(
            dataset,
            _build_partitioner("mobilenet"),
            settings,
            config=config,
            shard_size=shard_size,
            workers=workers,
            predictor=predictor,
            contention_estimator=estimator,
            record_events=False,
        )
        info = result.extras["sharding"]
        return {"clients": result.num_clients, "shards": info["shards"]}

    measured = _measure_repeats_in_child(setup, run, repeats)
    best = min(measured["runs"], key=lambda m: m["seconds"])
    seconds = best["seconds"]
    num_clients = best["payload"]["clients"]
    per_second = num_clients * max_steps / seconds
    per_worker = per_second / workers
    return {
        "large_scale_sharded_100k": {
            "seconds_median": seconds,
            "clients_steps_per_second": per_second,
            "clients_steps_per_second_per_worker": per_worker,
            "speedup_vs_10k_per_worker": (
                per_worker / SEED_10K_CLIENT_STEPS_PER_WORKER
            ),
            "seconds_all": [m["seconds"] for m in measured["runs"]],
            "peak_rss_mb": measured["peak_rss_mb"],
            "clients": num_clients,
            "steps": max_steps,
            "shards": best["payload"]["shards"],
            "shard_size": shard_size,
            "workers": workers,
        }
    }


def bench_large_scale_sharded_1m(quick: bool, seed: int, repeats: int) -> dict:
    """The 1M-client shape: spill-backed sharding at metropolitan scale.

    The next order of magnitude past the 100k case, run with
    ``spill_datasets=True`` so the driver never holds per-shard
    trajectory slices (the dataset is spilled to per-shard files at plan
    time and released before any shard runs).  Full mode uses a
    reduced-step shape — 12 trace steps, a 4-step horizon, 32768-client
    shards (at metropolitan density the hex cells are big enough that
    smaller shard sizes just multiply per-shard setup: registry build,
    spill load, client construction) — because at one million clients
    the per-client-step cost,
    not the horizon, is what the case exists to measure; throughput is
    normalized per client-step and per worker, and
    ``speedup_vs_100k_per_worker`` tracks it against the committed 100k
    figure (:data:`SEED_100K_CLIENT_STEPS_PER_WORKER`).  The reported
    step count is the number of steps the replay actually simulated
    (the throughput figures use it, never the requested horizon).

    Measured with :func:`_measure_repeats_in_child`: one forked child
    builds the million-user dataset and the models itself — forking
    *after* parent-side setup made the child pay copy-on-write refcount
    faults across the whole inherited population for the entire run,
    inflating this case 10-25% depending on the bench parent's heap —
    then times ``repeats`` full runs and the *minimum* wall-clock is
    reported.  At a couple of minutes per run the measurement is exposed
    to multi-minute host scheduling windows (observed spread on the same
    workload exceeds 1.5x), and for CPU-bound work the minimum is the
    standard noise-robust estimator — slowdowns are additive, speedups
    are not.  Setup (trace synthesis, predictor training on a 10k-user
    subsample) stays untimed and is shared across the repeats.
    """
    from repro.core.config import PerDNNConfig
    from repro.core.master import MigrationPolicy
    from repro.mobility.trajectory import TrajectoryDataset
    from repro.simulation.large_scale import (
        SimulationSettings,
        train_default_estimator,
        train_default_predictor,
    )
    from repro.simulation.sharding import run_large_scale_sharded
    from repro.trajectories.synthetic import kaist_like

    users, dataset_steps, max_steps, shard_size = (
        (4000, 12, 4, 1024) if quick else (1_000_000, 12, 4, 32768)
    )
    workers = max(1, min(os.cpu_count() or 1, 8))
    config = PerDNNConfig(migration_radius_m=100.0)
    settings = SimulationSettings(
        policy=MigrationPolicy.PERDNN, max_steps=max_steps, seed=seed
    )

    def setup():
        rng = np.random.default_rng(seed)
        dataset = kaist_like(
            rng, num_users=users, duration_steps=dataset_steps
        )
        partitioner = _build_partitioner("mobilenet")
        train, _ = dataset.split_time(settings.replay_fraction)
        train_sub = TrajectoryDataset(
            name=train.name,
            interval_seconds=train.interval_seconds,
            bbox=train.bbox,
            trajectories=train.trajectories[: min(users, 10_000)],
        )
        aux_rng = np.random.default_rng(seed)
        predictor = train_default_predictor(
            train_sub, config.prediction_history, aux_rng
        )
        estimator = train_default_estimator(partitioner, aux_rng)
        return dataset, predictor, estimator

    def run(state) -> dict:
        dataset, predictor, estimator = state
        result = run_large_scale_sharded(
            dataset,
            _build_partitioner("mobilenet"),
            settings,
            config=config,
            shard_size=shard_size,
            workers=workers,
            predictor=predictor,
            contention_estimator=estimator,
            record_events=False,
            spill_datasets=True,
        )
        info = result.extras["sharding"]
        return {
            "clients": result.num_clients,
            "steps": result.steps,
            "shards": info["shards"],
        }

    measured = _measure_repeats_in_child(setup, run, repeats)
    best = min(measured["runs"], key=lambda m: m["seconds"])
    seconds = best["seconds"]
    peak_rss_mb = measured["peak_rss_mb"]
    num_clients = best["payload"]["clients"]
    steps_simulated = best["payload"]["steps"]
    per_second = num_clients * steps_simulated / seconds
    per_worker = per_second / workers
    return {
        "large_scale_sharded_1m": {
            "seconds_median": seconds,
            "clients_steps_per_second": per_second,
            "clients_steps_per_second_per_worker": per_worker,
            "speedup_vs_100k_per_worker": (
                per_worker / SEED_100K_CLIENT_STEPS_PER_WORKER
            ),
            "seconds_all": [m["seconds"] for m in measured["runs"]],
            "peak_rss_mb": peak_rss_mb,
            "clients": num_clients,
            "steps": steps_simulated,
            "shards": best["payload"]["shards"],
            "shard_size": shard_size,
            "workers": workers,
        }
    }


#: ``--only`` case name -> standalone runner (each builds its own
#: workload; the all-cases path below shares setup between the sharded
#: cases instead).  A case may emit several result entries (``forest``
#: produces the four forest_* timings).
BENCH_CASES: dict[str, Callable[[bool, int, int], dict]] = {
    "forest": bench_forest,
    "partition": bench_partition,
    "large_scale": bench_large_scale,
    "large_scale_sharded": bench_large_scale_sharded,
    "large_scale_sharded_checkpointed": bench_large_scale_sharded_checkpointed,
    "large_scale_sharded_100k": bench_large_scale_sharded_100k,
    "large_scale_sharded_1m": bench_large_scale_sharded_1m,
}


def run_benchmarks(
    quick: bool = False,
    seed: int = 0,
    repeats: int | None = None,
    only: str | None = None,
) -> dict:
    """Run the hot-path benchmarks; returns the BENCH_perf document.

    ``only`` selects a single :data:`BENCH_CASES` entry — the document
    then carries just that case's results and is marked ``"only"`` so
    schema validation does not demand the absent entries (a partial
    document is for iterating on one case, not for committing as
    ``BENCH_perf.json``).
    """
    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if only is not None and only not in BENCH_CASES:
        raise ValueError(
            f"unknown benchmark case {only!r}; available: "
            + ", ".join(sorted(BENCH_CASES))
        )
    results: dict[str, dict] = {}
    if only is not None:
        results.update(BENCH_CASES[only](quick, seed, repeats))
    else:
        results.update(bench_forest(quick, seed, repeats))
        results.update(bench_partition(quick, seed, repeats))
        results.update(bench_large_scale(quick, seed, repeats))
        workload = _sharded_workload(quick, seed)
        results.update(
            bench_large_scale_sharded(quick, seed, repeats, workload=workload)
        )
        results.update(
            bench_large_scale_sharded_checkpointed(
                quick, seed, repeats, workload=workload,
            )
        )
        results.update(bench_large_scale_sharded_100k(quick, seed, repeats))
        results.update(bench_large_scale_sharded_1m(quick, seed, repeats))
    doc = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "seed": seed,
        "repeats": repeats,
        "results": results,
    }
    if only is not None:
        doc["only"] = only
    assert_schema(doc)
    return doc


def assert_schema(doc: dict) -> None:
    """Validate a BENCH_perf document: schema tag, required benchmark
    entries, and strictly positive timings.  Raises ``ValueError`` so the
    CI smoke step (and tests) fail loudly if the harness rots.  A
    document marked ``"only"`` (from ``repro bench --only CASE``) is
    validated over the entries it carries; full documents must carry
    every required entry."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unexpected schema tag: {doc.get('schema')!r}")
    results = doc.get("results")
    if not isinstance(results, dict):
        raise ValueError("missing results mapping")
    partial = doc.get("only") is not None
    if partial and not results:
        raise ValueError("partial document carries no results")
    for name, keys in REQUIRED_RESULTS.items():
        entry = results.get(name)
        if not isinstance(entry, dict):
            if partial:
                continue
            raise ValueError(f"missing benchmark entry: {name}")
        for key in keys:
            value = entry.get(key)
            if not isinstance(value, (int, float)) or not value > 0:
                raise ValueError(
                    f"benchmark {name}.{key} must be a positive number, "
                    f"got {value!r}"
                )


def write_results(doc: dict, path: str | os.PathLike) -> str:
    """Write a BENCH_perf document as deterministic-layout JSON."""
    target = os.fspath(path)
    parent = os.path.dirname(target)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def summary_lines(doc: dict) -> list[str]:
    """Human-readable one-liners for the CLI.

    Covers whatever entries the document carries, so partial ``--only``
    documents summarize cleanly.
    """
    results = doc["results"]
    lines = [
        f"mode: {doc['mode']} (repeats: {doc['repeats']}, seed: {doc['seed']})",
    ]
    fit = results.get("forest_fit")
    if fit is not None:
        lines.append(
            f"forest fit ({fit['trees']} trees, {fit['n_train']} rows):"
            f" {fit['seconds_median'] * 1e3:9.1f} ms"
        )
    single = results.get("forest_predict_single")
    if single is not None:
        lines.append(
            f"forest predict, {single['calls']} single rows:"
            f" {single['seconds_median'] * 1e3:9.1f} ms"
        )
    batch = results.get("forest_predict_batch")
    if batch is not None:
        lines.append(
            f"forest predict, batch {batch['rows']}x{batch['features']}:"
            f" {batch['seconds_median'] * 1e3:9.1f} ms"
            f" ({batch['speedup_vs_reference']:.1f}x vs node walk)"
        )
    plan = results.get("partition_planning")
    if plan is not None:
        lines.append(
            f"partition sweep ({plan['plans']} plans):"
            f" {plan['seconds_median'] * 1e3:9.1f} ms cold,"
            f" {plan['cached_seconds_median'] * 1e3:.2f} ms cached"
        )
    sim = results.get("large_scale")
    if sim is not None:
        lines.append(
            f"large scale ({sim['clients']} clients, {sim['steps']} steps):"
            f" {sim['seconds_median'] * 1e3:9.1f} ms"
            f" ({sim['speedup_vs_reference']:.2f}x vs node walk)"
        )
    sharded = results.get("large_scale_sharded")
    if sharded is not None:
        lines.append(
            f"sharded ({sharded['clients']} clients, {sharded['steps']} steps,"
            f" {sharded['shards']} shards x {sharded['workers']} workers):"
            f" {sharded['seconds_median']:9.2f} s"
            f" ({sharded['clients_steps_per_second']:,.0f} client-steps/s,"
            f" {sharded['speedup_vs_reference']:.2f}x vs scalar)"
        )
    checkpointed = results.get("large_scale_sharded_checkpointed")
    if checkpointed is not None:
        lines.append(
            f"sharded + checkpoint spill:"
            f" {checkpointed['seconds_median']:9.2f} s"
            f" ({checkpointed.get('overhead_fraction', checkpointed['seconds_median'] / checkpointed['baseline_seconds_median'] - 1.0):+.1%}"
            f" vs in-memory merge)"
        )
    hundred_k = results.get("large_scale_sharded_100k")
    if hundred_k is not None:
        lines.append(
            f"sharded 100k shape ({hundred_k['clients']} clients,"
            f" {hundred_k['steps']} steps, {hundred_k['shards']} shards x"
            f" {hundred_k['workers']} workers):"
            f" {hundred_k['seconds_median']:9.2f} s"
            f" ({hundred_k['clients_steps_per_second_per_worker']:,.0f}"
            f" client-steps/s/worker,"
            f" {hundred_k['speedup_vs_10k_per_worker']:.2f}x vs committed 10k,"
            f" peak RSS {hundred_k['peak_rss_mb']:,.0f} MB)"
        )
    one_m = results.get("large_scale_sharded_1m")
    if one_m is not None:
        lines.append(
            f"sharded 1M shape ({one_m['clients']} clients,"
            f" {one_m['steps']} steps, {one_m['shards']} shards x"
            f" {one_m['workers']} workers, dataset spill):"
            f" {one_m['seconds_median']:9.2f} s"
            f" ({one_m['clients_steps_per_second_per_worker']:,.0f}"
            f" client-steps/s/worker,"
            f" {one_m['speedup_vs_100k_per_worker']:.2f}x vs committed 100k,"
            f" peak RSS {one_m['peak_rss_mb']:,.0f} MB)"
        )
    return lines
