"""Feature standardization (zero mean, unit variance).

The paper normalizes trajectory coordinates to standard scores before
feeding them to the SVR and LSTM predictors (§3.D).
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Column-wise standardization with safe handling of constant columns."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError(f"expected non-empty 2D array, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def _require_fitted(self) -> None:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler has not been fitted")

    def transform(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_
