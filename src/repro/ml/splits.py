"""Dataset splitting utilities."""

from __future__ import annotations

import numpy as np


def train_test_split(
    n_samples: int,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled (train_indices, test_indices) split of ``range(n_samples)``."""
    if n_samples < 2:
        raise ValueError("need at least 2 samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    indices = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_fraction)))
    n_test = min(n_test, n_samples - 1)
    return indices[n_test:], indices[:n_test]


def kfold_indices(
    n_samples: int, n_folds: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train, test) index pairs."""
    if n_folds < 2 or n_folds > n_samples:
        raise ValueError("n_folds must be in [2, n_samples]")
    indices = rng.permutation(n_samples)
    folds = np.array_split(indices, n_folds)
    pairs = []
    for i, test in enumerate(folds):
        train = np.concatenate([fold for j, fold in enumerate(folds) if j != i])
        pairs.append((train, test))
    return pairs
