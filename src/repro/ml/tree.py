"""CART regression tree with variance-reduction splits.

Implements the regression-tree half of the random forest the paper uses for
GPU-aware execution-time estimation (§3.C.1).  Splits minimize the weighted
sum of squared errors of the children; feature importances accumulate the
impurity decrease of each split, normalized at the end — the same
"importance" definition the paper plots on the right of Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, sse_decrease) over the candidate features.

    Uses the classic sorted-prefix-sum sweep so each feature costs
    O(n log n).  Returns ``None`` when no valid split exists.
    """
    n = y.shape[0]
    parent_sse = float(np.sum((y - y.mean()) ** 2))
    best: tuple[int, float, float] | None = None
    best_decrease = 1e-12  # require strictly positive improvement
    total_sum = float(y.sum())
    total_sq = float(np.sum(y * y))
    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="stable")
        xs = X[order, feature]
        ys = y[order]
        prefix_sum = np.cumsum(ys)
        prefix_sq = np.cumsum(ys * ys)
        # Candidate split after position i (1-based left size i+1).
        left_sizes = np.arange(1, n)
        # Only split between distinct feature values.
        distinct = xs[:-1] < xs[1:]
        valid = (
            distinct
            & (left_sizes >= min_samples_leaf)
            & ((n - left_sizes) >= min_samples_leaf)
        )
        if not np.any(valid):
            continue
        left_sum = prefix_sum[:-1]
        left_sq = prefix_sq[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        left_n = left_sizes.astype(float)
        right_n = float(n) - left_n
        sse = (left_sq - left_sum**2 / left_n) + (right_sq - right_sum**2 / right_n)
        sse = np.where(valid, sse, np.inf)
        idx = int(np.argmin(sse))
        decrease = parent_sse - float(sse[idx])
        if decrease > best_decrease:
            best_decrease = decrease
            threshold = 0.5 * (xs[idx] + xs[idx + 1])
            best = (int(feature), float(threshold), decrease)
    return best


class RegressionTree:
    """A single CART regression tree.

    Parameters mirror scikit-learn: ``max_depth``, ``min_samples_split``,
    ``min_samples_leaf``, and ``max_features`` (``None`` = all, ``"sqrt"``,
    or an int) with an optional ``rng`` for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid min sample constraints")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        self._root: _Node | None = None
        self._n_features = 0
        self.feature_importances_: np.ndarray | None = None

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        count = int(self.max_features)
        if not 1 <= count <= n_features:
            raise ValueError(f"max_features out of range: {self.max_features}")
        return count

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2D and y 1D with matching lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty dataset")
        self._n_features = X.shape[1]
        importances = np.zeros(self._n_features)
        self._root = self._grow(X, y, depth=0, importances=importances)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, importances: np.ndarray
    ) -> _Node:
        node = _Node(value=float(y.mean()))
        n = y.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        k = self._resolve_max_features(self._n_features)
        if k < self._n_features:
            features = self._rng.choice(self._n_features, size=k, replace=False)
        else:
            features = np.arange(self._n_features)
        split = _best_split(X, y, features, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, decrease = split
        mask = X[:, feature] <= threshold
        importances[feature] += decrease
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, importances)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, importances)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError(f"expected shape (n, {self._n_features})")
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (leaf-only tree has depth 0)."""
        if self._root is None:
            raise RuntimeError("tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
