"""CART regression tree with variance-reduction splits.

Implements the regression-tree half of the random forest the paper uses for
GPU-aware execution-time estimation (§3.C.1).  Splits minimize the weighted
sum of squared errors of the children; feature importances accumulate the
impurity decrease of each split, normalized at the end — the same
"importance" definition the paper plots on the right of Fig 4.

Prediction is array-vectorized: ``fit`` flattens the grown node structure
into parallel numpy arrays (feature / threshold / value / left / right in
preorder), and ``predict`` advances every query row one tree level per
iteration (level-synchronous traversal) instead of walking Python nodes one
row at a time.  The original node walk survives as
``RegressionTree._predict_reference`` and can be forced globally with the
:func:`reference_predict` context manager — equivalence tests and the perf
harness pin the two paths bit-for-bit against each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

#: Global fast-path switch.  True routes ``predict`` through the flattened
#: arrays; False falls back to the per-row node walk everywhere (trees and
#: forests).  Toggle via :func:`set_fast_predict` / :func:`reference_predict`.
_FAST_PREDICT = True


def fast_predict_enabled() -> bool:
    """Is the vectorized flat-array prediction path active?"""
    return _FAST_PREDICT


def set_fast_predict(enabled: bool) -> bool:
    """Enable/disable the vectorized path; returns the previous setting."""
    global _FAST_PREDICT
    previous = _FAST_PREDICT
    _FAST_PREDICT = bool(enabled)
    return previous


@contextmanager
def reference_predict():
    """Force the original node-walking prediction path within the block.

    Used by the equivalence tests and by ``repro bench`` to time the
    pre-vectorization reference on identical inputs.
    """
    previous = set_fast_predict(False)
    try:
        yield
    finally:
        set_fast_predict(previous)


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass(frozen=True)
class FlatTree:
    """A fitted tree as parallel preorder arrays (leaves: feature == -1).

    ``left``/``right`` hold child node indices for internal nodes and -1
    sentinels for leaves (never dereferenced: traversal only advances rows
    whose current node is internal).  The layout is shared with the
    forest's stacked all-trees representation, which concatenates these
    arrays and offsets the child indices.
    """

    feature: np.ndarray  # int64, (n_nodes,)
    threshold: np.ndarray  # float64, (n_nodes,)
    value: np.ndarray  # float64, (n_nodes,)
    left: np.ndarray  # int64, (n_nodes,)
    right: np.ndarray  # int64, (n_nodes,)

    @classmethod
    def from_root(cls, root: _Node) -> "FlatTree":
        features: list[int] = []
        thresholds: list[float] = []
        values: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []

        def emit(node: _Node) -> int:
            index = len(features)
            features.append(node.feature)
            thresholds.append(node.threshold)
            values.append(node.value)
            lefts.append(-1)
            rights.append(-1)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                lefts[index] = emit(node.left)
                rights[index] = emit(node.right)
            return index

        emit(root)
        return cls(
            feature=np.asarray(features, dtype=np.int64),
            threshold=np.asarray(thresholds, dtype=np.float64),
            value=np.asarray(values, dtype=np.float64),
            left=np.asarray(lefts, dtype=np.int64),
            right=np.asarray(rights, dtype=np.int64),
        )

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Level-synchronous vectorized traversal of every row at once.

        Rows sitting on a leaf are frozen; the rest take one left/right
        step per iteration, so the loop runs at most ``depth`` times
        regardless of the batch size.
        """
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        active = np.nonzero(self.feature[node] >= 0)[0]
        while active.size:
            current = node[active]
            go_left = (
                X[active, self.feature[current]] <= self.threshold[current]
            )
            node[active] = np.where(
                go_left, self.left[current], self.right[current]
            )
            active = active[self.feature[node[active]] >= 0]
        return self.value[node]


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, sse_decrease) over the candidate features.

    Uses the classic sorted-prefix-sum sweep so each feature costs
    O(n log n).  Returns ``None`` when no valid split exists.
    """
    n = y.shape[0]
    parent_sse = float(np.sum((y - y.mean()) ** 2))
    best: tuple[int, float, float] | None = None
    best_decrease = 1e-12  # require strictly positive improvement
    total_sum = float(y.sum())
    total_sq = float(np.sum(y * y))
    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="stable")
        xs = X[order, feature]
        ys = y[order]
        prefix_sum = np.cumsum(ys)
        prefix_sq = np.cumsum(ys * ys)
        # Candidate split after position i (1-based left size i+1).
        left_sizes = np.arange(1, n)
        # Only split between distinct feature values.
        distinct = xs[:-1] < xs[1:]
        valid = (
            distinct
            & (left_sizes >= min_samples_leaf)
            & ((n - left_sizes) >= min_samples_leaf)
        )
        if not np.any(valid):
            continue
        left_sum = prefix_sum[:-1]
        left_sq = prefix_sq[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        left_n = left_sizes.astype(float)
        right_n = float(n) - left_n
        sse = (left_sq - left_sum**2 / left_n) + (right_sq - right_sum**2 / right_n)
        sse = np.where(valid, sse, np.inf)
        idx = int(np.argmin(sse))
        decrease = parent_sse - float(sse[idx])
        if decrease > best_decrease:
            best_decrease = decrease
            threshold = 0.5 * (xs[idx] + xs[idx + 1])
            best = (int(feature), float(threshold), decrease)
    return best


class RegressionTree:
    """A single CART regression tree.

    Parameters mirror scikit-learn: ``max_depth``, ``min_samples_split``,
    ``min_samples_leaf``, and ``max_features`` (``None`` = all, ``"sqrt"``,
    or an int) with an optional ``rng`` for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid min sample constraints")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        self._root: _Node | None = None
        self._flat: FlatTree | None = None
        self._n_features = 0
        self.feature_importances_: np.ndarray | None = None

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        count = int(self.max_features)
        if not 1 <= count <= n_features:
            raise ValueError(f"max_features out of range: {self.max_features}")
        return count

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2D and y 1D with matching lengths")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty dataset")
        self._n_features = X.shape[1]
        importances = np.zeros(self._n_features)
        self._root = self._grow(X, y, depth=0, importances=importances)
        self._flat = FlatTree.from_root(self._root)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, importances: np.ndarray
    ) -> _Node:
        node = _Node(value=float(y.mean()))
        n = y.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        k = self._resolve_max_features(self._n_features)
        if k < self._n_features:
            features = self._rng.choice(self._n_features, size=k, replace=False)
        else:
            features = np.arange(self._n_features)
        split = _best_split(X, y, features, self.min_samples_leaf)
        if split is None:
            return node
        feature, threshold, decrease = split
        mask = X[:, feature] <= threshold
        importances[feature] += decrease
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, importances)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, importances)
        return node

    @property
    def flat(self) -> FlatTree:
        """The fitted tree's parallel-array form (for forest stacking)."""
        if self._flat is None:
            raise RuntimeError("tree has not been fitted")
        return self._flat

    def _validate_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError(f"expected shape (n, {self._n_features})")
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        X = self._validate_X(X)
        if _FAST_PREDICT and self._flat is not None:
            return self._flat.predict(X)
        return self._walk_nodes(X)

    def _predict_reference(self, X: np.ndarray) -> np.ndarray:
        """Original per-row Python node walk, kept as the equivalence
        reference for the vectorized path (bit-for-bit identical)."""
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        return self._walk_nodes(self._validate_X(X))

    def _walk_nodes(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree (leaf-only tree has depth 0)."""
        if self._root is None:
            raise RuntimeError("tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
