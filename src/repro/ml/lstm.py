"""Single-cell LSTM regressor with full BPTT (numpy only).

Matches the RNN mobility predictor the paper describes in §3.D: one LSTM
cell reads the standardized coordinate sequence and produces a latent vector
(hidden size 16-32 depending on dataset); a fully-connected head with no
activation outputs the predicted (x, y).  Training uses MAE loss and the
Adam optimizer with learning rate 1e-3, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.ml.optim import Adam


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class LSTMRegressor:
    """Sequence-to-vector LSTM with a linear regression head.

    ``fit`` expects ``X`` of shape (n_samples, seq_len, n_inputs) and ``Y``
    of shape (n_samples, n_outputs).
    """

    def __init__(
        self,
        hidden_size: int = 16,
        learning_rate: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 64,
        loss: str = "mae",
        clip_norm: float = 5.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        if loss not in ("mae", "mse"):
            raise ValueError("loss must be 'mae' or 'mse'")
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.loss = loss
        self.clip_norm = clip_norm
        self._rng = rng or np.random.default_rng()
        self._params: dict[str, np.ndarray] | None = None
        self._n_inputs = 0
        self._n_outputs = 0
        self.training_losses_: list[float] = []

    # ------------------------------------------------------------------
    # Parameter setup
    # ------------------------------------------------------------------
    def _init_params(self, n_inputs: int, n_outputs: int) -> dict[str, np.ndarray]:
        h = self.hidden_size
        scale_x = 1.0 / np.sqrt(n_inputs)
        scale_h = 1.0 / np.sqrt(h)
        params = {
            "Wx": self._rng.normal(0.0, scale_x, size=(n_inputs, 4 * h)),
            "Wh": self._rng.normal(0.0, scale_h, size=(h, 4 * h)),
            "b": np.zeros(4 * h),
            "Wy": self._rng.normal(0.0, scale_h, size=(h, n_outputs)),
            "by": np.zeros(n_outputs),
        }
        # Positive forget-gate bias: standard trick for stable training.
        params["b"][h : 2 * h] = 1.0
        return params

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def _forward(
        self, X: np.ndarray, params: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, dict]:
        n, seq_len, _ = X.shape
        h_size = self.hidden_size
        h = np.zeros((n, h_size))
        c = np.zeros((n, h_size))
        cache = {"X": X, "h": [h], "c": [c], "gates": [], "c_tanh": []}
        for t in range(seq_len):
            z = X[:, t, :] @ params["Wx"] + h @ params["Wh"] + params["b"]
            i = _sigmoid(z[:, :h_size])
            f = _sigmoid(z[:, h_size : 2 * h_size])
            g = np.tanh(z[:, 2 * h_size : 3 * h_size])
            o = _sigmoid(z[:, 3 * h_size :])
            c = f * c + i * g
            c_tanh = np.tanh(c)
            h = o * c_tanh
            cache["gates"].append((i, f, g, o))
            cache["c_tanh"].append(c_tanh)
            cache["h"].append(h)
            cache["c"].append(c)
        prediction = h @ params["Wy"] + params["by"]
        return prediction, cache

    def _backward(
        self,
        d_pred: np.ndarray,
        cache: dict,
        params: dict[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        X = cache["X"]
        n, seq_len, _ = X.shape
        h_size = self.hidden_size
        grads = {name: np.zeros_like(value) for name, value in params.items()}
        h_final = cache["h"][-1]
        grads["Wy"] = h_final.T @ d_pred
        grads["by"] = d_pred.sum(axis=0)
        dh = d_pred @ params["Wy"].T
        dc = np.zeros((n, h_size))
        for t in range(seq_len - 1, -1, -1):
            i, f, g, o = cache["gates"][t]
            c_tanh = cache["c_tanh"][t]
            c_prev = cache["c"][t]
            h_prev = cache["h"][t]
            do = dh * c_tanh
            dc = dc + dh * o * (1.0 - c_tanh**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.hstack(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ]
            )
            grads["Wx"] += X[:, t, :].T @ dz
            grads["Wh"] += h_prev.T @ dz
            grads["b"] += dz.sum(axis=0)
            dh = dz @ params["Wh"].T
            dc = dc * f
        return grads

    def _clip(self, grads: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        total = np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
        if total > self.clip_norm:
            factor = self.clip_norm / total
            return {name: g * factor for name, g in grads.items()}
        return grads

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, Y: np.ndarray) -> "LSTMRegressor":
        X = np.asarray(X, dtype=float)
        Y = np.asarray(Y, dtype=float)
        if X.ndim != 3 or Y.ndim != 2 or X.shape[0] != Y.shape[0]:
            raise ValueError(
                "X must be (n, seq_len, n_inputs) and Y (n, n_outputs)"
            )
        n = X.shape[0]
        self._n_inputs = X.shape[2]
        self._n_outputs = Y.shape[1]
        self._params = self._init_params(self._n_inputs, self._n_outputs)
        optimizer = Adam(self._params, learning_rate=self.learning_rate)
        batch = min(self.batch_size, n)
        self.training_losses_ = []
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                Xb, Yb = X[idx], Y[idx]
                prediction, cache = self._forward(Xb, self._params)
                error = prediction - Yb
                if self.loss == "mae":
                    epoch_loss += float(np.abs(error).sum())
                    d_pred = np.sign(error) / error.size
                else:
                    epoch_loss += float((error**2).sum())
                    d_pred = 2.0 * error / error.size
                grads = self._clip(self._backward(d_pred, cache, self._params))
                optimizer.step(grads)
            self.training_losses_.append(epoch_loss / (n * self._n_outputs))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("model has not been fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 3 or X.shape[2] != self._n_inputs:
            raise ValueError(f"expected shape (n, seq_len, {self._n_inputs})")
        prediction, _ = self._forward(X, self._params)
        return prediction
