"""Linear and logarithmic regression — the NeuroSurgeon "LL" baselines.

NeuroSurgeon (Kang et al., ASPLOS 2017) estimates layer latency with linear
or logarithmic regression models over layer hyperparameters; the paper calls
this family "LL" in Fig 4.  :class:`BestOfLinearLog` mirrors NeuroSurgeon's
practice of fitting both forms per layer type and keeping the better one.
"""

from __future__ import annotations

import numpy as np


def _design_matrix(X: np.ndarray) -> np.ndarray:
    """Append a bias column."""
    return np.hstack([X, np.ones((X.shape[0], 1))])


def _check_Xy(X: np.ndarray, y: np.ndarray | None) -> tuple[np.ndarray, np.ndarray | None]:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2D, got shape {X.shape}")
    if y is None:
        return X, None
    y = np.asarray(y, dtype=float)
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError("y must be 1D with the same length as X")
    return X, y


class LinearRegression:
    """Ordinary least squares via ``numpy.linalg.lstsq``."""

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = _check_Xy(X, y)
        assert y is not None
        design = _design_matrix(X)
        self.coef_, *_ = np.linalg.lstsq(design, y, rcond=None)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model has not been fitted")
        X, _ = _check_Xy(X, None)
        return _design_matrix(X) @ self.coef_


class LogarithmicRegression:
    """Least squares on log-transformed features: ``y = w . log1p(x) + b``.

    Requires non-negative features (latency predictors here are counts,
    sizes, utilizations — all non-negative).
    """

    def __init__(self) -> None:
        self._model = LinearRegression()

    @staticmethod
    def _transform(X: np.ndarray) -> np.ndarray:
        if np.any(X < 0):
            raise ValueError("logarithmic regression requires non-negative features")
        return np.log1p(X)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogarithmicRegression":
        X, y = _check_Xy(X, y)
        assert y is not None
        self._model.fit(self._transform(X), y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X, _ = _check_Xy(X, None)
        return self._model.predict(self._transform(X))


class BestOfLinearLog:
    """Fit both linear and logarithmic models; keep the lower-SSE one."""

    def __init__(self) -> None:
        self._chosen: LinearRegression | LogarithmicRegression | None = None
        self.chosen_form: str | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BestOfLinearLog":
        X, y = _check_Xy(X, y)
        assert y is not None
        linear = LinearRegression().fit(X, y)
        candidates: list[tuple[str, LinearRegression | LogarithmicRegression]] = [
            ("linear", linear)
        ]
        if np.all(X >= 0):
            candidates.append(("log", LogarithmicRegression().fit(X, y)))
        best_sse = np.inf
        for form, model in candidates:
            sse = float(np.sum((model.predict(X) - y) ** 2))
            if sse < best_sse:
                best_sse = sse
                self._chosen = model
                self.chosen_form = form
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._chosen is None:
            raise RuntimeError("model has not been fitted")
        return self._chosen.predict(X)
