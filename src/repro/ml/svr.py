"""Linear support-vector regression (epsilon-insensitive loss).

The paper's mobility predictor of choice is a *linear SVR* (§3.D, Table III):
it takes the client's n most recent standardized (x, y) coordinates and
regresses the next coordinate pair.  This implementation minimizes

    0.5 * ||w||^2 / C + mean(max(0, |y - (w.x + b)| - epsilon))

by Adam-accelerated subgradient descent on mini-batches — the primal form of
the problem scikit-learn's ``LinearSVR`` solves.
"""

from __future__ import annotations

import numpy as np

from repro.ml.optim import Adam


class LinearSVR:
    """Single-output linear SVR trained in the primal with Adam."""

    def __init__(
        self,
        epsilon: float = 0.01,
        C: float = 10.0,
        learning_rate: float = 0.01,
        epochs: int = 120,
        batch_size: int = 64,
        tolerance: float = 1e-7,
        rng: np.random.Generator | None = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if C <= 0:
            raise ValueError("C must be positive")
        self.epsilon = epsilon
        self.C = C
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.tolerance = tolerance
        self._rng = rng or np.random.default_rng()
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.n_iterations_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVR":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2D and y 1D with matching lengths")
        n, d = X.shape
        params = {"w": np.zeros(d), "b": np.zeros(1)}
        optimizer = Adam(params, learning_rate=self.learning_rate)
        previous_loss = np.inf
        batch = min(self.batch_size, n)
        for epoch in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                Xb, yb = X[idx], y[idx]
                residual = yb - (Xb @ params["w"] + params["b"][0])
                violation = np.abs(residual) - self.epsilon
                active = violation > 0
                # Subgradient of the epsilon-insensitive loss.
                sign = np.where(active, -np.sign(residual), 0.0)
                grad_w = Xb.T @ sign / len(idx) + params["w"] / (self.C * n)
                grad_b = np.array([sign.mean()])
                optimizer.step({"w": grad_w, "b": grad_b})
                epoch_loss += float(np.maximum(violation, 0.0).sum())
            self.n_iterations_ = epoch + 1
            epoch_loss /= n
            if abs(previous_loss - epoch_loss) < self.tolerance:
                break
            previous_loss = epoch_loss
        self.weights_ = params["w"]
        self.bias_ = float(params["b"][0])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("model has not been fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.weights_.shape[0]:
            raise ValueError(f"expected shape (n, {self.weights_.shape[0]})")
        # Column-sweep accumulation instead of BLAS `X @ w`: each row's
        # result is the same fixed left-to-right sum regardless of how many
        # rows are in the batch, so predicting m windows at once is
        # bit-identical to m single-row calls.  (BLAS gemv re-blocks by
        # batch shape and breaks that row independence.)
        out = np.full(X.shape[0], self.bias_, dtype=float)
        for j, weight in enumerate(self.weights_.tolist()):
            out += X[:, j] * weight
        return out


class MultiOutputLinearSVR:
    """Independent :class:`LinearSVR` per output column (x and y coords)."""

    def __init__(self, **svr_kwargs) -> None:
        self._svr_kwargs = svr_kwargs
        self._models: list[LinearSVR] = []

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "MultiOutputLinearSVR":
        Y = np.asarray(Y, dtype=float)
        if Y.ndim != 2:
            raise ValueError("Y must be 2D (n_samples, n_outputs)")
        self._models = []
        for column in range(Y.shape[1]):
            model = LinearSVR(**self._svr_kwargs)
            model.fit(X, Y[:, column])
            self._models.append(model)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._models:
            raise RuntimeError("model has not been fitted")
        return np.stack([model.predict(X) for model in self._models], axis=1)
