"""From-scratch machine-learning substrate (replaces scikit-learn).

The paper trains its models with scikit-learn (random forest and SVR) and a
small LSTM.  scikit-learn and deep-learning frameworks are not available in
this environment, so this package implements the identical algorithms on
numpy:

* :class:`RegressionTree` / :class:`RandomForestRegressor` — CART trees with
  impurity-based feature importances (paper §3.C.1, Fig 4).
* :class:`LinearRegression` / :class:`LogarithmicRegression` /
  :class:`BestOfLinearLog` — the NeuroSurgeon-style "LL" baselines.
* :class:`LinearSVR` / :class:`MultiOutputLinearSVR` — epsilon-insensitive
  linear support-vector regression trained by Adam-accelerated subgradient
  descent (paper §3.D).
* :class:`LSTMRegressor` — a single-cell LSTM with a linear head, trained by
  full BPTT with Adam on MAE loss (paper §3.D).
* Utilities: :class:`StandardScaler`, metrics, train/test splitting.
"""

from repro.ml.metrics import mean_absolute_error, mean_squared_error, r2_score, rmse
from repro.ml.scaler import StandardScaler
from repro.ml.splits import kfold_indices, train_test_split
from repro.ml.tree import RegressionTree
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import BestOfLinearLog, LinearRegression, LogarithmicRegression
from repro.ml.svr import LinearSVR, MultiOutputLinearSVR
from repro.ml.lstm import LSTMRegressor

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "rmse",
    "StandardScaler",
    "train_test_split",
    "kfold_indices",
    "RegressionTree",
    "RandomForestRegressor",
    "LinearRegression",
    "LogarithmicRegression",
    "BestOfLinearLog",
    "LinearSVR",
    "MultiOutputLinearSVR",
    "LSTMRegressor",
]
