"""Gradient-descent optimizers for the from-scratch SVR and LSTM."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam optimizer (Kingma & Ba 2014) over a dict of named parameters."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.params = params
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = {name: np.zeros_like(value) for name, value in params.items()}
        self._v = {name: np.zeros_like(value) for name, value in params.items()}
        self._t = 0

    def step(self, grads: dict[str, np.ndarray]) -> None:
        """Apply one update; ``grads`` must cover every parameter."""
        missing = set(self.params) - set(grads)
        if missing:
            raise ValueError(f"missing gradients for: {sorted(missing)}")
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, param in self.params.items():
            grad = grads[name]
            if grad.shape != param.shape:
                raise ValueError(f"gradient shape mismatch for {name!r}")
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param -= (
                self.learning_rate * (m / bias1) / (np.sqrt(v / bias2) + self.epsilon)
            )


class SGD:
    """Plain (optionally decaying) stochastic gradient descent."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        learning_rate: float = 1e-2,
        decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.params = params
        self.learning_rate = learning_rate
        self.decay = decay
        self._t = 0

    def step(self, grads: dict[str, np.ndarray]) -> None:
        self._t += 1
        rate = self.learning_rate / (1.0 + self.decay * self._t)
        for name, param in self.params.items():
            param -= rate * grads[name]
