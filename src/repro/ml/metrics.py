"""Regression metrics."""

from __future__ import annotations

import numpy as np


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if total == 0.0:
        return 0.0 if residual > 0 else 1.0
    return 1.0 - residual / total
