"""Random forest regressor (bagged CART trees).

The paper's edge servers train one random forest per layer type to predict
layer execution time from layer hyperparameters plus GPU workload features
(§3.C.1).  Feature importances are averaged over trees, matching the
right-hand plot of Fig 4.

``fit`` additionally stacks every tree's flat arrays (see
:class:`~repro.ml.tree.FlatTree`) into one concatenated node table, so
``predict`` traverses *all trees for all rows* in a single
level-synchronous loop — the planner-side hot path of the large-scale
simulator.  The per-tree node walk remains available as
``_predict_reference`` and via :func:`repro.ml.tree.reference_predict`;
both paths are bit-for-bit identical (same comparisons, same leaf values,
same ``mean(axis=0)`` reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.tree import RegressionTree, fast_predict_enabled


@dataclass(frozen=True)
class _StackedTrees:
    """All trees of a forest concatenated into one flat node table.

    ``roots[t]`` is the index of tree ``t``'s root in the concatenated
    arrays; ``left``/``right`` are already offset into the global index
    space (leaves keep -1 sentinels, never dereferenced).
    """

    feature: np.ndarray  # int64, (total_nodes,)
    threshold: np.ndarray  # float64, (total_nodes,)
    value: np.ndarray  # float64, (total_nodes,)
    left: np.ndarray  # int64, (total_nodes,)
    right: np.ndarray  # int64, (total_nodes,)
    roots: np.ndarray  # int64, (n_trees,)

    @classmethod
    def from_trees(cls, trees: list[RegressionTree]) -> "_StackedTrees":
        flats = [tree.flat for tree in trees]
        sizes = np.array([flat.n_nodes for flat in flats], dtype=np.int64)
        roots = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
        left_parts, right_parts = [], []
        for flat, offset in zip(flats, roots):
            left_parts.append(np.where(flat.left >= 0, flat.left + offset, -1))
            right_parts.append(
                np.where(flat.right >= 0, flat.right + offset, -1)
            )
        return cls(
            feature=np.concatenate([flat.feature for flat in flats]),
            threshold=np.concatenate([flat.threshold for flat in flats]),
            value=np.concatenate([flat.value for flat in flats]),
            left=np.concatenate(left_parts),
            right=np.concatenate(right_parts),
            roots=roots,
        )

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_trees, n_rows)``.

        One level-synchronous step moves every still-descending
        (tree, row) pair one level down; pairs that reached a leaf drop
        out of the active set, so each iteration only touches the pairs
        that are actually mid-descent and the loop runs at most
        ``max(tree depth)`` times for the whole forest.
        """
        n = X.shape[0]
        n_trees = self.roots.shape[0]
        # Flat (tree-major) state over all (tree, row) pairs.
        node = np.repeat(self.roots, n)
        rows = np.tile(np.arange(n), n_trees)
        active = np.nonzero(self.feature[node] >= 0)[0]
        while active.size:
            current = node[active]
            go_left = (
                X[rows[active], self.feature[current]]
                <= self.threshold[current]
            )
            node[active] = np.where(
                go_left, self.left[current], self.right[current]
            )
            active = active[self.feature[node[active]] >= 0]
        return self.value[node].reshape(n_trees, n)


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._rng = rng or np.random.default_rng()
        self._trees: list[RegressionTree] = []
        self._stacked: _StackedTrees | None = None
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2D and y 1D with matching lengths")
        n = X.shape[0]
        self._trees = []
        self._stacked = None
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            if self.bootstrap:
                sample = self._rng.integers(0, n, size=n)
                tree.fit(X[sample], y[sample])
            else:
                tree.fit(X, y)
            self._trees.append(tree)
            assert tree.feature_importances_ is not None
            importances += tree.feature_importances_
        self._stacked = _StackedTrees.from_trees(self._trees)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        X = self._trees[0]._validate_X(X)
        if fast_predict_enabled() and self._stacked is not None:
            return self._stacked.predict_all(X).mean(axis=0)
        predictions = np.stack([tree.predict(X) for tree in self._trees])
        return predictions.mean(axis=0)

    def predict_per_tree(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_trees, n_rows)``.

        Building block for batch consumers that need each row's ensemble
        mean to be bit-identical to a single-row ``predict`` call: reduce
        the *transposed* result row-wise (``ascontiguousarray(out.T)
        .mean(axis=1)``) so every row gets the same contiguous pairwise
        summation a ``(n_trees, 1)`` scalar call gets, instead of the
        column-sequential reduction of a 2D ``mean(axis=0)``.
        """
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        X = self._trees[0]._validate_X(X)
        if fast_predict_enabled() and self._stacked is not None:
            return self._stacked.predict_all(X)
        return np.stack([tree.predict(X) for tree in self._trees])

    def _predict_reference(self, X: np.ndarray) -> np.ndarray:
        """Per-tree node-walk ensemble mean (the pre-vectorization path)."""
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack(
            [tree._predict_reference(X) for tree in self._trees]
        )
        return predictions.mean(axis=0)
