"""Random forest regressor (bagged CART trees).

The paper's edge servers train one random forest per layer type to predict
layer execution time from layer hyperparameters plus GPU workload features
(§3.C.1).  Feature importances are averaged over trees, matching the
right-hand plot of Fig 4.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import RegressionTree


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._rng = rng or np.random.default_rng()
        self._trees: list[RegressionTree] = []
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2D and y 1D with matching lengths")
        n = X.shape[0]
        self._trees = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            if self.bootstrap:
                sample = self._rng.integers(0, n, size=n)
                tree.fit(X[sample], y[sample])
            else:
                tree.fit(X, y)
            self._trees.append(tree)
            assert tree.feature_importances_ is not None
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        X = np.asarray(X, dtype=float)
        predictions = np.stack([tree.predict(X) for tree in self._trees])
        return predictions.mean(axis=0)
