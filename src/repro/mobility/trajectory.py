"""Trajectory containers.

A :class:`Trajectory` is one user's position sequence sampled at a fixed
interval; a :class:`TrajectoryDataset` bundles a region's trajectories with
its bounding box and interval — the shape of the Geolife and KAIST datasets
after the paper's preprocessing (fixed-rate resampling inside a rectangle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geometry import BoundingBox


@dataclass(frozen=True)
class Trajectory:
    """One user's (x, y) positions, in metres, at a fixed sampling interval."""

    user_id: int
    interval_seconds: float
    points: np.ndarray  # shape (n, 2)

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"points must be (n, 2), got {points.shape}")
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        object.__setattr__(self, "points", points)

    def __len__(self) -> int:
        return self.points.shape[0]

    def speeds(self) -> np.ndarray:
        """Per-step speeds in m/s (length n-1)."""
        deltas = np.diff(self.points, axis=0)
        return np.hypot(deltas[:, 0], deltas[:, 1]) / self.interval_seconds

    def average_speed(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(self.speeds().mean())

    def subsample(self, factor: int) -> "Trajectory":
        """Keep every ``factor``-th point (interval grows by ``factor``)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return Trajectory(
            user_id=self.user_id,
            interval_seconds=self.interval_seconds * factor,
            points=self.points[::factor].copy(),
        )

    def windows(self, history: int) -> tuple[np.ndarray, np.ndarray]:
        """Sliding windows: (X of shape (m, history, 2), next points (m, 2))."""
        if history < 1:
            raise ValueError("history must be >= 1")
        n = len(self)
        m = n - history
        if m <= 0:
            return np.empty((0, history, 2)), np.empty((0, 2))
        X = np.stack([self.points[i : i + history] for i in range(m)])
        y = self.points[history:]
        return X, y


@dataclass(frozen=True)
class TrajectoryDataset:
    """A named set of trajectories over one evaluation region."""

    name: str
    interval_seconds: float
    bbox: BoundingBox
    trajectories: tuple[Trajectory, ...]

    def __post_init__(self) -> None:
        for trajectory in self.trajectories:
            if trajectory.interval_seconds != self.interval_seconds:
                raise ValueError(
                    f"trajectory interval {trajectory.interval_seconds} != "
                    f"dataset interval {self.interval_seconds}"
                )

    @property
    def num_users(self) -> int:
        return len(self.trajectories)

    def all_points(self) -> np.ndarray:
        """Every point of every trajectory, stacked (for server allocation)."""
        return np.concatenate([t.points for t in self.trajectories])

    def average_speed(self) -> float:
        speeds = [t.average_speed() for t in self.trajectories if len(t) > 1]
        return float(np.mean(speeds)) if speeds else 0.0

    def split_users(
        self, test_fraction: float, rng: np.random.Generator
    ) -> tuple["TrajectoryDataset", "TrajectoryDataset"]:
        """Split by *user* so test users were never seen in training."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        order = rng.permutation(self.num_users)
        n_test = max(1, int(round(self.num_users * test_fraction)))
        n_test = min(n_test, self.num_users - 1)
        test_idx = set(order[:n_test].tolist())
        train = tuple(
            t for i, t in enumerate(self.trajectories) if i not in test_idx
        )
        test = tuple(t for i, t in enumerate(self.trajectories) if i in test_idx)
        make = lambda subset, suffix: TrajectoryDataset(
            name=f"{self.name}-{suffix}",
            interval_seconds=self.interval_seconds,
            bbox=self.bbox,
            trajectories=subset,
        )
        return make(train, "train"), make(test, "test")

    def split_time(
        self, test_fraction: float
    ) -> tuple["TrajectoryDataset", "TrajectoryDataset"]:
        """Split every trajectory in time: early part trains the predictor,
        the late part is replayed in the simulation (keeps all users, like
        the paper's replay of held-out trace segments)."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        train_parts = []
        test_parts = []
        for trajectory in self.trajectories:
            n = len(trajectory)
            cut = max(1, min(n - 1, int(round(n * (1.0 - test_fraction)))))
            train_parts.append(
                Trajectory(
                    trajectory.user_id,
                    self.interval_seconds,
                    trajectory.points[:cut].copy(),
                )
            )
            test_parts.append(
                Trajectory(
                    trajectory.user_id,
                    self.interval_seconds,
                    trajectory.points[cut:].copy(),
                )
            )
        make = lambda subset, suffix: TrajectoryDataset(
            name=f"{self.name}-{suffix}",
            interval_seconds=self.interval_seconds,
            bbox=self.bbox,
            trajectories=tuple(subset),
        )
        return make(train_parts, "train"), make(test_parts, "test")

    def replay_split(self, test_fraction: float) -> "TrajectoryDataset":
        """Just the replay (late) half of :meth:`split_time`.

        Identical content to ``split_time(f)[1]`` — same per-trajectory
        cut points, same dataset name — without materializing the
        training half.  The sharded runner hands every shard pre-trained
        predictors, so per-shard training slices are pure waste there.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        test_parts = []
        for trajectory in self.trajectories:
            n = len(trajectory)
            cut = max(1, min(n - 1, int(round(n * (1.0 - test_fraction)))))
            test_parts.append(
                Trajectory(
                    trajectory.user_id,
                    self.interval_seconds,
                    trajectory.points[cut:].copy(),
                )
            )
        return TrajectoryDataset(
            name=f"{self.name}-test",
            interval_seconds=self.interval_seconds,
            bbox=self.bbox,
            trajectories=tuple(test_parts),
        )

    def subsample(self, factor: int) -> "TrajectoryDataset":
        """Dataset resampled at ``factor`` times the interval."""
        return TrajectoryDataset(
            name=f"{self.name}-x{factor}",
            interval_seconds=self.interval_seconds * factor,
            bbox=self.bbox,
            trajectories=tuple(t.subsample(factor) for t in self.trajectories),
        )
