"""Mobility prediction (paper §3.D, Table III, Fig 6).

The master server predicts each client's next location from its recent
trajectory (the ``n`` most recent positions sampled every ``t`` seconds) and
maps the prediction to nearby edge servers.  Three predictor families are
implemented, mirroring the paper's comparison:

* :class:`MarkovPredictor` — variable-order Markov model over edge-server
  identifiers (a prediction suffix tree with subsequence-ratio sampling),
* :class:`SVRPredictor` — linear SVR over standardized coordinates (the
  paper's choice),
* :class:`LSTMPredictor` — a single-LSTM-cell RNN.

:mod:`repro.mobility.evaluation` reproduces the accuracy/futile-prediction
analyses that select ``n = 5`` and ``t = 20 s``.
"""

from repro.mobility.trajectory import Trajectory, TrajectoryDataset
from repro.mobility.predictor import (
    CellDistributionPredictor,
    MobilityPredictor,
    PointPredictor,
)
from repro.mobility.markov import MarkovPredictor
from repro.mobility.svr import SVRPredictor
from repro.mobility.lstm import LSTMPredictor
from repro.mobility.modes import ModeAwareSVRPredictor, ModeThresholds
from repro.mobility.evaluation import (
    IntervalChoice,
    PredictorAccuracy,
    benefit_cost_ratio,
    evaluate_predictor,
    futile_prediction_ratio,
    select_prediction_interval,
    sliding_windows,
)

__all__ = [
    "Trajectory",
    "TrajectoryDataset",
    "MobilityPredictor",
    "PointPredictor",
    "CellDistributionPredictor",
    "MarkovPredictor",
    "SVRPredictor",
    "LSTMPredictor",
    "ModeAwareSVRPredictor",
    "ModeThresholds",
    "PredictorAccuracy",
    "IntervalChoice",
    "evaluate_predictor",
    "futile_prediction_ratio",
    "benefit_cost_ratio",
    "select_prediction_interval",
    "sliding_windows",
]
