"""Variable-order Markov mobility predictor (prediction suffix tree).

Implements the paper's Markov baseline (§3.D): client locations are
discretized to the identifier of the closest edge-server cell; a
variable-order Markov model (a prediction suffix tree built from sequence
frequencies, after Ron et al.) predicts the next cell.  At query time the
longest context matching the suffix tree is found, its length is multiplied
by the subsequence ratio ``a`` (0.7 in the paper, after Jacquet et al.),
and the sampled shorter context supplies the prediction counts.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.geo.hexgrid import HexCell, HexGrid
from repro.mobility.predictor import CellDistributionPredictor
from repro.mobility.trajectory import TrajectoryDataset


class MarkovPredictor(CellDistributionPredictor):
    """Prediction-suffix-tree Markov model over hex-cell sequences."""

    name = "Markov"

    def __init__(
        self,
        grid: HexGrid,
        max_order: int = 5,
        subsequence_ratio: float = 0.7,
    ) -> None:
        if max_order < 1:
            raise ValueError("max_order must be >= 1")
        if not 0.0 < subsequence_ratio <= 1.0:
            raise ValueError("subsequence_ratio must be in (0, 1]")
        self.grid = grid
        self.max_order = max_order
        self.subsequence_ratio = subsequence_ratio
        # context tuple (length 1..max_order) -> Counter of next cells.
        self._counts: dict[tuple[HexCell, ...], Counter] = defaultdict(Counter)
        self._unconditional: Counter = Counter()

    def cells_of_points(self, points) -> list[HexCell]:
        return [self.grid.cell_of((float(x), float(y))) for x, y in points]

    def fit(self, dataset: TrajectoryDataset) -> "MarkovPredictor":
        for trajectory in dataset.trajectories:
            cells = self.cells_of_points(trajectory.points)
            for i, next_cell in enumerate(cells[1:], start=1):
                self._unconditional[next_cell] += 1
                for order in range(1, self.max_order + 1):
                    if i - order < 0:
                        break
                    context = tuple(cells[i - order : i])
                    self._counts[context][next_cell] += 1
        return self

    def _longest_match_length(self, context: tuple[HexCell, ...]) -> int:
        for order in range(min(len(context), self.max_order), 0, -1):
            if tuple(context[-order:]) in self._counts:
                return order
        return 0

    def predict_cells(
        self, recent_cells: list[HexCell], top_k: int
    ) -> list[tuple[HexCell, float]]:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        context = tuple(recent_cells)
        longest = self._longest_match_length(context)
        if longest == 0:
            counter = self._unconditional
        else:
            # Sample a shorter subsequence of the longest match (ratio a).
            order = max(1, round(self.subsequence_ratio * longest))
            counter = self._counts.get(tuple(context[-order:]))
            if not counter:
                counter = self._unconditional
        total = sum(counter.values())
        if total == 0:
            return []
        ranked = counter.most_common(top_k)
        return [(cell, count / total) for cell, count in ranked]
