"""LSTM mobility predictor — the paper's RNN comparison point (§3.D).

A single LSTM cell (hidden size 16-32 depending on dataset) reads the
standardized coordinate sequence; an fc layer with no activation outputs
the next (x, y).  MAE loss, Adam with learning rate 1e-3 — exactly the
configuration the paper grid-searched to.
"""

from __future__ import annotations

import numpy as np

from repro.ml.lstm import LSTMRegressor
from repro.ml.scaler import StandardScaler
from repro.mobility.predictor import PointPredictor
from repro.mobility.trajectory import TrajectoryDataset


class LSTMPredictor(PointPredictor):
    """Single-cell LSTM + linear head over standardized windows."""

    name = "RNN"

    def __init__(
        self,
        history: int = 5,
        hidden_size: int = 16,
        epochs: int = 40,
        learning_rate: float = 1e-3,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.history = history
        self._rng = rng or np.random.default_rng()
        self._lstm = LSTMRegressor(
            hidden_size=hidden_size,
            learning_rate=learning_rate,
            epochs=epochs,
            loss="mae",
            rng=self._rng,
        )
        self._scaler = StandardScaler()
        self._fitted = False

    def fit(self, dataset: TrajectoryDataset) -> "LSTMPredictor":
        windows = []
        targets = []
        for trajectory in dataset.trajectories:
            X, y = trajectory.windows(self.history)
            if len(X):
                windows.append(X)
                targets.append(y)
        if not windows:
            raise ValueError("dataset has no windows of the requested history")
        X = np.concatenate(windows)
        y = np.concatenate(targets)
        self._scaler.fit(X.reshape(-1, 2))
        X_std = self._scaler.transform(X.reshape(-1, 2)).reshape(X.shape)
        y_std = self._scaler.transform(y)
        self._lstm.fit(X_std, y_std)
        self._fitted = True
        return self

    def predict_points(self, windows: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predictor has not been fitted")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3 or windows.shape[1:] != (self.history, 2):
            raise ValueError(f"expected (m, {self.history}, 2) windows")
        std = self._scaler.transform(windows.reshape(-1, 2)).reshape(windows.shape)
        return self._scaler.inverse_transform(self._lstm.predict(std))
