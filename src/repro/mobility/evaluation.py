"""Mobility-prediction evaluation (Table III, Fig 6).

Implements the paper's evaluation conventions:

* Only *non-futile* predictions count — windows whose actual next position
  falls in a different edge-server cell than the current one ("predictions
  made just before when a client moves to another server").
* For coordinate predictors (SVR, RNN), a top-k prediction is correct when
  the actually-visited server is among the k allocated servers closest to
  the predicted location; MAE is the mean distance in metres between the
  predicted and the actual next position.
* For the Markov predictor, top-k uses the k most probable cells.
* ``futile_prediction_ratio`` and ``benefit_cost_ratio`` reproduce the
  Fig 6 analysis that selects the prediction interval t.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.geo.hexgrid import HexGrid
from repro.geo.wifi import EdgeServerRegistry
from repro.mobility.markov import MarkovPredictor
from repro.mobility.predictor import (
    CellDistributionPredictor,
    MobilityPredictor,
    PointPredictor,
)
from repro.mobility.trajectory import TrajectoryDataset


@dataclass(frozen=True)
class PredictorAccuracy:
    """Table III row: top-k accuracies (%) and MAE (metres)."""

    predictor: str
    dataset: str
    top_k_accuracy: dict[int, float]  # k -> percent
    mae_meters: float | None  # None for cell-only predictors (Markov)
    evaluated_windows: int


def sliding_windows(
    dataset: TrajectoryDataset, history: int
) -> tuple[np.ndarray, np.ndarray]:
    """All users' windows: (X of (m, history, 2), next points (m, 2))."""
    xs, ys = [], []
    for trajectory in dataset.trajectories:
        X, y = trajectory.windows(history)
        if len(X):
            xs.append(X)
            ys.append(y)
    if not xs:
        return np.empty((0, history, 2)), np.empty((0, 2))
    return np.concatenate(xs), np.concatenate(ys)


def _non_futile_mask(
    windows: np.ndarray, targets: np.ndarray, grid: HexGrid
) -> np.ndarray:
    """True where the actual next position is in a different cell."""
    mask = np.zeros(len(windows), dtype=bool)
    for i in range(len(windows)):
        current = grid.cell_of(tuple(windows[i, -1]))
        actual = grid.cell_of(tuple(targets[i]))
        mask[i] = current != actual
    return mask


def _server_tree(registry: EdgeServerRegistry) -> tuple[cKDTree, list[int]]:
    ids = registry.server_ids
    locations = np.array([registry.server_location(s) for s in ids])
    return cKDTree(locations), ids


def evaluate_predictor(
    predictor: MobilityPredictor,
    test: TrajectoryDataset,
    registry: EdgeServerRegistry,
    history: int = 5,
    top_ks: tuple[int, ...] = (1, 2),
) -> PredictorAccuracy:
    """Top-k edge-server prediction accuracy on non-futile test windows."""
    grid = registry.grid
    windows, targets = sliding_windows(test, history)
    if len(windows) == 0:
        raise ValueError("test dataset yields no windows")
    mask = _non_futile_mask(windows, targets, grid)
    windows, targets = windows[mask], targets[mask]
    if len(windows) == 0:
        raise ValueError("no non-futile windows in the test dataset")
    actual_cells = [grid.cell_of(tuple(p)) for p in targets]
    max_k = max(top_ks)
    hits = {k: 0 for k in top_ks}
    mae: float | None = None
    if isinstance(predictor, PointPredictor):
        predictions = predictor.predict_points(windows)
        mae = float(
            np.mean(np.hypot(*(predictions - targets).T))
        )
        tree, ids = _server_tree(registry)
        k_query = min(max_k, len(ids))
        _, neighbor_idx = tree.query(predictions, k=k_query)
        neighbor_idx = np.atleast_2d(neighbor_idx)
        if neighbor_idx.shape[0] != len(predictions):
            neighbor_idx = neighbor_idx.T
        for i, actual in enumerate(actual_cells):
            ranked_cells = [
                registry.cell_of_server(ids[j]) for j in neighbor_idx[i][:max_k]
            ]
            for k in top_ks:
                if actual in ranked_cells[:k]:
                    hits[k] += 1
    elif isinstance(predictor, CellDistributionPredictor):
        for i in range(len(windows)):
            recent = [grid.cell_of(tuple(p)) for p in windows[i]]
            ranked = [cell for cell, _ in predictor.predict_cells(recent, max_k)]
            for k in top_ks:
                if actual_cells[i] in ranked[:k]:
                    hits[k] += 1
    else:
        raise TypeError(f"unsupported predictor type: {type(predictor)!r}")
    n = len(windows)
    return PredictorAccuracy(
        predictor=predictor.name,
        dataset=test.name,
        top_k_accuracy={k: 100.0 * hits[k] / n for k in top_ks},
        mae_meters=mae,
        evaluated_windows=n,
    )


def point_prediction_mae(
    predictor: PointPredictor, test: TrajectoryDataset, history: int
) -> float:
    """Plain next-point MAE in metres over all windows (Fig 6 left)."""
    windows, targets = sliding_windows(test, history)
    if len(windows) == 0:
        raise ValueError("test dataset yields no windows")
    predictions = predictor.predict_points(windows)
    return float(np.mean(np.hypot(*(predictions - targets).T)))


def futile_prediction_ratio(
    dataset: TrajectoryDataset, grid: HexGrid, history: int = 5
) -> float:
    """Share of windows whose next position stays in the current cell."""
    windows, targets = sliding_windows(dataset, history)
    if len(windows) == 0:
        raise ValueError("dataset yields no windows")
    mask = _non_futile_mask(windows, targets, grid)
    return 1.0 - float(mask.mean())


def benefit_cost_ratio(accuracy_fraction: float, futile_ratio: float) -> float:
    """The paper's t-selection criterion: benefit/cost = a * (p - f) / p."""
    if not 0.0 <= accuracy_fraction <= 1.0:
        raise ValueError("accuracy_fraction must be in [0, 1]")
    if not 0.0 <= futile_ratio <= 1.0:
        raise ValueError("futile_ratio must be in [0, 1]")
    return accuracy_fraction * (1.0 - futile_ratio)


@dataclass(frozen=True)
class IntervalChoice:
    """One candidate prediction interval with its §3.D benefit/cost score."""

    interval_seconds: float
    subsample_factor: int
    futile_ratio: float
    top1_accuracy: float  # fraction in [0, 1]
    ratio: float


def select_prediction_interval(
    base_dataset: TrajectoryDataset,
    registry: EdgeServerRegistry,
    factors: tuple[int, ...],
    rng: np.random.Generator,
    history: int = 5,
    predictor_epochs: int = 60,
) -> tuple[IntervalChoice, list[IntervalChoice]]:
    """Pick the prediction interval t by maximum benefit/cost (§3.D).

    For each subsample factor, a linear SVR is trained and evaluated on a
    user split of the resampled dataset; the benefit/cost score
    ``a * (p - f) / p`` uses its non-futile top-1 accuracy ``a`` and the
    futile-prediction ratio ``f/p``.  Returns the best choice plus every
    candidate (the right panel of Fig 6).
    """
    from repro.mobility.svr import SVRPredictor

    if not factors:
        raise ValueError("at least one subsample factor required")
    candidates: list[IntervalChoice] = []
    for factor in factors:
        dataset = base_dataset.subsample(factor) if factor > 1 else base_dataset
        train, test = dataset.split_users(0.3, rng)
        futile = futile_prediction_ratio(test, registry.grid, history)
        predictor = SVRPredictor(
            history=history, epochs=predictor_epochs, rng=rng
        ).fit(train)
        accuracy = evaluate_predictor(predictor, test, registry, history)
        top1 = accuracy.top_k_accuracy[1] / 100.0
        candidates.append(
            IntervalChoice(
                interval_seconds=dataset.interval_seconds,
                subsample_factor=factor,
                futile_ratio=futile,
                top1_accuracy=top1,
                ratio=benefit_cost_ratio(top1, futile),
            )
        )
    best = max(candidates, key=lambda c: c.ratio)
    return best, candidates
