"""Transportation-mode-aware mobility prediction (paper §4.B.3, future work).

The paper attributes Geolife's lower hit ratio to its mix of transportation
modes and anticipates that "the hit ratio of Geolife can be improved with
advanced prediction techniques such as transportation mode inference".
This module implements that extension: windows are classified by their
average speed into walk / bike / vehicle regimes and a separate linear SVR
is trained per mode, with a global fallback for sparse modes.  The ablation
benchmark (``bench_ablation_mode_prediction.py``) quantifies the gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.scaler import StandardScaler
from repro.ml.svr import MultiOutputLinearSVR
from repro.mobility.predictor import PointPredictor
from repro.mobility.trajectory import TrajectoryDataset


@dataclass(frozen=True)
class ModeThresholds:
    """Average-speed boundaries (m/s) between transportation modes."""

    walk_max: float = 2.0
    bike_max: float = 6.0

    def classify(self, speed: float) -> str:
        if speed < self.walk_max:
            return "walk"
        if speed < self.bike_max:
            return "bike"
        return "vehicle"


def window_speeds(windows: np.ndarray, interval_seconds: float) -> np.ndarray:
    """Average speed (m/s) of each (history, 2) window."""
    deltas = np.diff(windows, axis=1)
    distances = np.hypot(deltas[..., 0], deltas[..., 1])
    return distances.mean(axis=1) / interval_seconds


class ModeAwareSVRPredictor(PointPredictor):
    """Per-transportation-mode linear SVRs with a global fallback.

    A mode needs at least ``min_mode_samples`` training windows to get its
    own model; everything else (and unclassified test windows' sparse
    modes) falls back to the single global SVR.
    """

    name = "SVR-mode"

    def __init__(
        self,
        history: int = 5,
        thresholds: ModeThresholds | None = None,
        min_mode_samples: int = 200,
        epochs: int = 250,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.history = history
        self.thresholds = thresholds or ModeThresholds()
        self.min_mode_samples = min_mode_samples
        self._epochs = epochs
        self._rng = rng or np.random.default_rng()
        self._scaler = StandardScaler()
        self._global: MultiOutputLinearSVR | None = None
        self._per_mode: dict[str, MultiOutputLinearSVR] = {}
        self._interval_seconds = 0.0
        self.mode_counts_: dict[str, int] = {}

    def fit(self, dataset: TrajectoryDataset) -> "ModeAwareSVRPredictor":
        windows = []
        targets = []
        for trajectory in dataset.trajectories:
            X, y = trajectory.windows(self.history)
            if len(X):
                windows.append(X)
                targets.append(y)
        if not windows:
            raise ValueError("dataset has no windows of the requested history")
        X = np.concatenate(windows)
        y = np.concatenate(targets)
        self._interval_seconds = dataset.interval_seconds
        self._scaler.fit(X.reshape(-1, 2))
        X_std = self._scaler.transform(X.reshape(-1, 2)).reshape(len(X), -1)
        y_std = self._scaler.transform(y)
        self._global = MultiOutputLinearSVR(
            epochs=self._epochs, rng=self._rng
        ).fit(X_std, y_std)
        speeds = window_speeds(X, self._interval_seconds)
        modes = np.array([self.thresholds.classify(s) for s in speeds])
        self.mode_counts_ = {}
        self._per_mode = {}
        for mode in ("walk", "bike", "vehicle"):
            mask = modes == mode
            count = int(mask.sum())
            self.mode_counts_[mode] = count
            if count >= self.min_mode_samples:
                model = MultiOutputLinearSVR(
                    epochs=self._epochs, rng=self._rng
                )
                self._per_mode[mode] = model.fit(X_std[mask], y_std[mask])
        return self

    def predict_points(self, windows: np.ndarray) -> np.ndarray:
        if self._global is None:
            raise RuntimeError("predictor has not been fitted")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3 or windows.shape[1:] != (self.history, 2):
            raise ValueError(f"expected (m, {self.history}, 2) windows")
        flat = self._scaler.transform(windows.reshape(-1, 2)).reshape(
            len(windows), -1
        )
        predictions = self._global.predict(flat)
        if self._per_mode:
            speeds = window_speeds(windows, self._interval_seconds)
            modes = np.array([self.thresholds.classify(s) for s in speeds])
            for mode, model in self._per_mode.items():
                mask = modes == mode
                if mask.any():
                    predictions[mask] = model.predict(flat[mask])
        return self._scaler.inverse_transform(predictions)
