"""Linear-SVR mobility predictor — the paper's deployed choice (§3.D).

The recent ``n`` standardized (x, y) positions are flattened into a feature
vector; two independent linear SVRs regress the next x and y.  The paper
compared linear / polynomial / rbf kernels with scikit-learn and chose
linear for its accuracy and speed; near-constant-velocity motion makes the
problem essentially linear (next ~ 2*p_t - p_{t-1}).
"""

from __future__ import annotations

import numpy as np

from repro.ml.scaler import StandardScaler
from repro.ml.svr import MultiOutputLinearSVR
from repro.mobility.predictor import PointPredictor
from repro.mobility.trajectory import TrajectoryDataset


class SVRPredictor(PointPredictor):
    """Multi-output linear SVR over standardized coordinate windows."""

    name = "SVR"

    def __init__(
        self,
        history: int = 5,
        epsilon: float = 0.01,
        C: float = 100.0,
        epochs: int = 250,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.history = history
        self._rng = rng or np.random.default_rng()
        self._svr = MultiOutputLinearSVR(
            epsilon=epsilon, C=C, epochs=epochs, rng=self._rng
        )
        self._scaler = StandardScaler()
        self._fitted = False

    def fit(self, dataset: TrajectoryDataset) -> "SVRPredictor":
        windows = []
        targets = []
        for trajectory in dataset.trajectories:
            X, y = trajectory.windows(self.history)
            if len(X):
                windows.append(X)
                targets.append(y)
        if not windows:
            raise ValueError("dataset has no windows of the requested history")
        X = np.concatenate(windows)  # (m, history, 2)
        y = np.concatenate(targets)  # (m, 2)
        self._scaler.fit(X.reshape(-1, 2))
        X_std = self._scaler.transform(X.reshape(-1, 2)).reshape(len(X), -1)
        y_std = self._scaler.transform(y)
        self._svr.fit(X_std, y_std)
        self._fitted = True
        return self

    def predict_points(self, windows: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predictor has not been fitted")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3 or windows.shape[1:] != (self.history, 2):
            raise ValueError(f"expected (m, {self.history}, 2) windows")
        flat = self._scaler.transform(windows.reshape(-1, 2)).reshape(
            len(windows), -1
        )
        return self._scaler.inverse_transform(self._svr.predict(flat))
