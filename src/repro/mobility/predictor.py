"""Predictor interfaces.

Two prediction styles exist in the paper: coordinate regressors (SVR, RNN)
that output the next (x, y), and the Markov model that outputs a ranked
distribution over edge-server cells.  Both reduce to "top-k candidate edge
servers" for proactive migration, which is what
:mod:`repro.mobility.evaluation` and the simulator consume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geo.hexgrid import HexCell
from repro.mobility.trajectory import TrajectoryDataset


class MobilityPredictor(ABC):
    """Common base: every predictor is fit on a trajectory dataset."""

    name: str = "base"

    @abstractmethod
    def fit(self, dataset: TrajectoryDataset) -> "MobilityPredictor":
        """Train on the dataset's trajectories."""


class PointPredictor(MobilityPredictor):
    """Predicts the next (x, y) coordinate from the recent window."""

    history: int = 5

    @abstractmethod
    def predict_points(self, windows: np.ndarray) -> np.ndarray:
        """``windows``: (m, history, 2) -> predicted next points (m, 2)."""

    def predict_point(self, window: np.ndarray) -> tuple[float, float]:
        """Single-window convenience wrapper."""
        window = np.asarray(window, dtype=float)
        if window.shape != (self.history, 2):
            raise ValueError(f"expected window of shape ({self.history}, 2)")
        prediction = self.predict_points(window[None, :, :])[0]
        return (float(prediction[0]), float(prediction[1]))


class CellDistributionPredictor(MobilityPredictor):
    """Predicts a ranked distribution over hex cells (edge servers)."""

    @abstractmethod
    def predict_cells(
        self, recent_cells: list[HexCell], top_k: int
    ) -> list[tuple[HexCell, float]]:
        """Most probable next cells with their probabilities, descending."""
