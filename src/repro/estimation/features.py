"""Feature extraction for execution-time estimation.

Layer hyperparameter features are derived quantities (FLOPs, tensor and
weight byte counts) that fully determine a layer's uncontended cost; GPU
workload features are the nvml-style statistics of
:class:`~repro.profiling.gpu_stats.GpuStats`.
"""

from __future__ import annotations

import numpy as np

from repro.dnn.graph import LayerInfo
from repro.profiling.gpu_stats import GPU_STAT_FEATURE_NAMES, GpuStats
from repro.profiling.profiler import ContentionSample

LAYER_FEATURE_NAMES = ("flops", "input_bytes", "output_bytes", "weight_bytes")
FEATURE_NAMES = LAYER_FEATURE_NAMES + GPU_STAT_FEATURE_NAMES


def layer_features(info: LayerInfo) -> np.ndarray:
    """Hyperparameter-derived feature vector of one layer."""
    return np.array(
        [
            float(info.flops),
            float(info.input_bytes),
            float(info.output_bytes),
            float(info.weight_bytes),
        ]
    )


def sample_features(sample: ContentionSample, with_load: bool = True) -> np.ndarray:
    """Full feature vector of a profiled sample.

    With ``with_load`` false, only the layer hyperparameter features are
    used (the NeuroSurgeon baseline configuration).
    """
    layer = layer_features(sample.info)
    if not with_load:
        return layer
    return np.concatenate([layer, np.array(sample.stats.as_features())])


def stats_features(stats: GpuStats) -> np.ndarray:
    """GPU workload feature vector alone."""
    return np.array(stats.as_features())


def layer_matrix(infos: list[LayerInfo]) -> np.ndarray:
    """Layer hyperparameter features of many layers as one ``(n, 4)``
    matrix — a single array construction instead of per-layer
    ``np.array`` + ``np.concatenate`` calls."""
    return np.array(
        [
            (
                float(info.flops),
                float(info.input_bytes),
                float(info.output_bytes),
                float(info.weight_bytes),
            )
            for info in infos
        ],
        dtype=float,
    ).reshape(len(infos), len(LAYER_FEATURE_NAMES))


def stats_matrix(stats_list: list[GpuStats]) -> np.ndarray:
    """GPU workload features of many samples as one ``(n, 4)`` matrix."""
    return np.array(
        [stats.as_features() for stats in stats_list], dtype=float
    ).reshape(len(stats_list), len(GPU_STAT_FEATURE_NAMES))


def sample_matrix(
    samples: list[ContentionSample], with_load: bool = True
) -> np.ndarray:
    """Feature matrix of many profiled samples (rows match
    :func:`sample_features` bit-for-bit, built without per-sample
    concatenation)."""
    layer = layer_matrix([s.info for s in samples])
    if not with_load:
        return layer
    stats = stats_matrix([s.stats for s in samples])
    return np.hstack([layer, stats])


def build_matrix(
    samples: list[ContentionSample], with_load: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) design matrix for a list of profiled samples."""
    if not samples:
        raise ValueError("no samples")
    X = sample_matrix(samples, with_load)
    y = np.array([s.measured_time for s in samples])
    return X, y
