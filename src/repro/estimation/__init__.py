"""GPU-aware execution-time estimation (paper §3.C.1, Fig 4).

Each edge server trains, offline, a model that predicts layer execution
time from layer hyperparameters *plus* GPU workload statistics.  Three
estimator families reproduce the Fig 4 comparison:

* :class:`LLPerLoadEstimator` — NeuroSurgeon baseline: linear/logarithmic
  regression over layer hyperparameters only, one model per server load.
* :class:`LLWithLoadEstimator` — the same LL family but with GPU statistics
  added as features (the paper's first ablation).
* :class:`RFWithLoadEstimator` — PerDNN's random forest over layer
  hyperparameters + GPU statistics.

For the online simulator, :class:`ContentionEstimator` distills the same
training data into a GPU-stats -> slowdown-factor regressor applied to the
server's uncontended per-layer profile.
"""

from repro.estimation.features import (
    FEATURE_NAMES,
    LAYER_FEATURE_NAMES,
    layer_features,
    sample_features,
)
from repro.estimation.estimator import (
    ContentionEstimator,
    ExecutionTimeEstimator,
    LLPerLoadEstimator,
    LLWithLoadEstimator,
    RFWithLoadEstimator,
)
from repro.estimation.evaluation import EstimatorComparison, compare_estimators

__all__ = [
    "FEATURE_NAMES",
    "LAYER_FEATURE_NAMES",
    "layer_features",
    "sample_features",
    "ExecutionTimeEstimator",
    "LLPerLoadEstimator",
    "LLWithLoadEstimator",
    "RFWithLoadEstimator",
    "ContentionEstimator",
    "EstimatorComparison",
    "compare_estimators",
]
