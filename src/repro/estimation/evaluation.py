"""Estimator evaluation harness for Fig 4.

Trains each estimator family on a profiled training set and reports test
MAE broken down by the number of concurrent clients, plus the random
forest's feature importances — the two panels of Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dnn.layer import LayerKind
from repro.ml.metrics import mean_absolute_error
from repro.estimation.estimator import (
    ExecutionTimeEstimator,
    LLPerLoadEstimator,
    LLWithLoadEstimator,
    RFWithLoadEstimator,
)
from repro.estimation.features import FEATURE_NAMES
from repro.profiling.profiler import ContentionSample


@dataclass
class EstimatorComparison:
    """MAE per estimator per client count, plus RF feature importances."""

    client_counts: list[int]
    mae_by_estimator: dict[str, dict[int, float]] = field(default_factory=dict)
    feature_importances: dict[str, float] = field(default_factory=dict)

    def to_rows(self) -> list[tuple]:
        """Rows of (clients, mae...) for tabular printing."""
        names = sorted(self.mae_by_estimator)
        rows = [("clients", *names)]
        for count in self.client_counts:
            rows.append(
                (count, *(self.mae_by_estimator[name][count] for name in names))
            )
        return rows


def compare_estimators(
    train: list[ContentionSample],
    test: list[ContentionSample],
    rng: np.random.Generator,
    kind: LayerKind = LayerKind.CONV,
    estimators: list[ExecutionTimeEstimator] | None = None,
) -> EstimatorComparison:
    """Fit each estimator on ``train`` and measure per-load MAE on ``test``.

    Only samples of ``kind`` are evaluated (the paper's Fig 4 reports conv
    layers), though estimators are trained on everything they receive.
    """
    if estimators is None:
        estimators = [
            LLPerLoadEstimator(),
            LLWithLoadEstimator(),
            RFWithLoadEstimator(rng=rng),
        ]
    test_of_kind = [s for s in test if s.info.kind is kind]
    if not test_of_kind:
        raise ValueError(f"test set has no samples of kind {kind}")
    counts = sorted({s.stats.num_clients for s in test_of_kind})
    comparison = EstimatorComparison(client_counts=counts)
    truth_all = np.array([s.measured_time for s in test_of_kind])
    count_indices = {
        count: np.array(
            [
                i
                for i, s in enumerate(test_of_kind)
                if s.stats.num_clients == count
            ]
        )
        for count in counts
    }
    rf: RFWithLoadEstimator | None = None
    for estimator in estimators:
        estimator.fit(train)
        # One vectorized pass over the whole test set; per-load MAE is a
        # slice of it (predictions are row-independent).
        predicted_all = estimator.predict_batch(test_of_kind)
        per_count: dict[int, float] = {}
        for count in counts:
            indices = count_indices[count]
            per_count[count] = mean_absolute_error(
                truth_all[indices], predicted_all[indices]
            )
        comparison.mae_by_estimator[estimator.name] = per_count
        if isinstance(estimator, RFWithLoadEstimator):
            rf = estimator
    if rf is not None:
        importances = rf.feature_importances(kind)
        comparison.feature_importances = dict(
            zip(FEATURE_NAMES, importances.tolist())
        )
    return comparison
